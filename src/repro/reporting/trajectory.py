"""The trajectory report: perf history rendered from accumulated bundles.

Every bundle a run emits is one point of the project's performance history.
This module scans a directory tree for bundles (any directory holding a
``manifest.json``), validates and loads each one, and renders a flat
history table — one row per bundle, carrying the headline perf metrics
(events/s, fleet machines/s, fig8 wall time) wherever the bundle's bench
record provides them.  The repository-root ``BENCH_*.json`` records can be
folded in as pseudo-bundles so the committed baselines and fresh bundles
appear in one table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ReportingError
from .bundle import MANIFEST_NAME, RunBundle, load_bundle

__all__ = ["HEADLINE_METRICS", "collect_bundles", "trajectory_rows"]

#: Bench-record keys surfaced as trajectory columns, in column order.
HEADLINE_METRICS = (
    "events_per_s",
    "fig8_serial_uncached_s",
    "machines_per_s_parallel",
    "fleet_machines_per_s",
    "hyperscale_machines_per_s",
)


def collect_bundles(root) -> List[RunBundle]:
    """Load every bundle under ``root`` (recursively), in sorted path order.

    A directory containing a ``manifest.json`` is a bundle and must
    validate; a tree with no bundles yields an empty list.  ``root`` itself
    may be a single bundle directory.
    """
    root = Path(root)
    if not root.is_dir():
        raise ReportingError(f"{root}: no such directory")
    manifests = sorted(root.rglob(MANIFEST_NAME))
    return [load_bundle(path.parent) for path in manifests]


def trajectory_rows(
    bundles: Sequence[RunBundle],
    bench_files: Sequence = (),
    root: Optional[Path] = None,
) -> List[dict]:
    """One history row per bundle (and per folded-in BENCH file).

    Columns: the bundle's identity (path, kind, name, package version, row
    and seed counts) plus every :data:`HEADLINE_METRICS` key its bench
    record carries.  Rows follow the order of ``bundles`` (sorted path
    order from :func:`collect_bundles`), BENCH files first — the committed
    baselines lead the history they anchor.
    """
    rows: List[dict] = []
    for bench_path in bench_files:
        bench_path = Path(bench_path)
        try:
            record = json.loads(bench_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ReportingError(f"{bench_path}: cannot read ({exc})") from None
        except json.JSONDecodeError as exc:
            raise ReportingError(f"{bench_path}: not valid JSON ({exc})") from None
        row: Dict[str, object] = {
            "bundle": bench_path.name,
            "kind": "bench",
            "name": record.get("benchmark", bench_path.stem),
            "repro_version": "-",
            "rows": "-",
            "seeds": "-",
        }
        _fold_metrics(row, record)
        rows.append(row)
    for bundle in bundles:
        directory = bundle.directory
        if root is not None:
            try:
                directory = directory.relative_to(root)
            except ValueError:
                pass
        row = {
            "bundle": str(directory),
            "kind": bundle.kind,
            "name": bundle.name,
            "repro_version": str(bundle.manifest.get("repro_version", "")),
            "rows": len(bundle.rows),
            "seeds": len(bundle.manifest.get("seeds", [])),
        }
        _fold_metrics(row, bundle.bench)
        rows.append(row)
    return rows


def _fold_metrics(row: Dict[str, object], record: Dict) -> None:
    if not isinstance(record, dict):
        return
    for metric in HEADLINE_METRICS:
        value = record.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            row[metric] = value
