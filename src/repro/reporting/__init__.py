"""Campaigns, run-artifact bundles and the perf-trajectory report.

This package is the reporting layer every scale and speed claim flows
through:

* :mod:`repro.reporting.rows` — canonical row rendering (json/jsonl/csv)
  shared by every CLI and the bundle writer;
* :mod:`repro.reporting.bundle` — versioned, schema-validated run-artifact
  bundles (manifest + rows + digests) emitted by the matrix, fleet,
  showdown and workloads CLIs;
* :mod:`repro.reporting.campaign` — multi-seed replicate sweeps through the
  content-addressed runner, reporting per-metric mean/stddev/95% CI instead
  of single-seed point estimates;
* :mod:`repro.reporting.trajectory` — the perf history across accumulated
  bundles and the committed ``BENCH_*.json`` baselines;
* :mod:`repro.reporting.bench` — merge-update tooling for those BENCH
  records (no more hand edits).

The ``python -m repro.reporting`` CLI fronts all of it::

    # run a 5-seed replicate sweep, emit a bundle, print the CI table
    python -m repro.reporting --scenario policy-showdown --seeds 5

    # validate any bundle (schema version, digests, row counts)
    python -m repro.reporting --validate bundles/policy-showdown

    # render the perf history from accumulated bundles + committed BENCH
    python -m repro.reporting --trajectory bundles --bench BENCH_simcore.json

    # merge a fresh benchmark result into a BENCH record (schema-checked)
    python -m repro.reporting --merge-bench BENCH_fleet.json --from run.json
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from ..errors import ConfigError, ReportingError
from .bundle import (
    BUNDLE_KINDS,
    BUNDLE_SCHEMA_VERSION,
    RunBundle,
    load_bundle,
    validate_bundle,
    write_bundle,
)
from .rows import ROW_FORMATS, render_rows, rows_to_csv, rows_to_json, rows_to_jsonl
from .stats import aggregate_rows, summarize, t_critical_95

__all__ = [
    "BUNDLE_KINDS",
    "BUNDLE_SCHEMA_VERSION",
    "RunBundle",
    "load_bundle",
    "validate_bundle",
    "write_bundle",
    "ROW_FORMATS",
    "render_rows",
    "rows_to_csv",
    "rows_to_json",
    "rows_to_jsonl",
    "aggregate_rows",
    "summarize",
    "t_critical_95",
    "main",
]

#: Column order of the printed campaign summary table.
SUMMARY_COLUMNS = (
    "scenario",
    "label",
    "metric",
    "n",
    "mean",
    "stddev",
    "ci95",
    "ci95_lo",
    "ci95_hi",
)


def _build_parser() -> argparse.ArgumentParser:
    from ..cli import (
        add_bundle_option,
        add_output_options,
        add_seed_option,
        add_workers_option,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting",
        description="Replicate campaigns, run-artifact bundles and the perf trajectory.",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--scenario",
        metavar="NAME",
        help="run a multi-seed replicate campaign of one registered scenario",
    )
    action.add_argument(
        "--validate",
        metavar="DIR",
        help="validate a run-artifact bundle (schema version, digests, counts)",
    )
    action.add_argument(
        "--trajectory",
        metavar="DIR",
        help="render the perf history from every bundle under DIR",
    )
    action.add_argument(
        "--merge-bench",
        metavar="TARGET",
        help="merge updates into a BENCH_*.json record (schema-checked)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="N",
        help="replicate count for --scenario (default 5)",
    )
    add_seed_option(
        parser, default=1, help="base seed; replicate 0 runs it verbatim (default 1)"
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="AXIS=V1,V2",
        help="override one scenario axis grid (repeatable)",
    )
    parser.add_argument("--qps", type=float, default=None, help="override workload QPS")
    parser.add_argument("--duration", type=float, default=None, help="override duration (s)")
    parser.add_argument("--warmup", type=float, default=None, help="override warmup (s)")
    add_workers_option(parser)
    add_output_options(parser)
    add_bundle_option(parser)
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="PATH",
        help="with --trajectory: fold a committed BENCH_*.json into the history "
        "(repeatable)",
    )
    parser.add_argument(
        "--from",
        dest="from_source",
        metavar="SRC",
        default=None,
        help="with --merge-bench: take updates from a bundle directory's "
        "bench.json or a flat JSON file",
    )
    parser.add_argument(
        "--set",
        dest="set_values",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="with --merge-bench: set one key (repeatable; numbers are parsed)",
    )
    return parser


def _run_campaign_action(args) -> int:
    from ..cli import (
        EXIT_FAILURES,
        EXIT_OK,
        parse_grid,
        render_output,
        resolve_output,
        write_output,
    )
    from ..experiments.reporting import format_table
    from .campaign import make_campaign, run_campaign, write_campaign_bundle

    fmt, path = resolve_output(args.out, args.format)
    spec = make_campaign(
        args.scenario,
        replicates=args.seeds,
        base_seed=args.seed,
        grid=parse_grid(args.grid),
        qps=args.qps,
        duration=args.duration,
        warmup=args.warmup,
    )
    runner = None
    if args.workers is not None:
        from ..runtime import ExperimentRunner

        runner = ExperimentRunner(max_workers=args.workers)
    result = run_campaign(spec, runner=runner)

    bundle_dir = args.bundle or f"bundles/{args.scenario}"
    bundle_fmt = fmt if fmt in ROW_FORMATS else "json"
    write_campaign_bundle(result, bundle_dir, fmt=bundle_fmt)

    write_output(render_output(result.summary_rows(), fmt, columns=SUMMARY_COLUMNS), path)
    print(
        f"{len(result.replicates)} of {len(result.seeds)} replicates x "
        f"{result.variant_count} variants, {result.cache_hits} runs served "
        f"from cache; bundle: {bundle_dir}"
    )
    if result.failures:
        print(f"\n== {len(result.failures)} replicates failed ==")
        print(format_table(result.failures, columns=["replicate", "seed", "error"]))
        return EXIT_FAILURES
    return EXIT_OK


def _validate_action(args) -> int:
    from ..cli import EXIT_OK

    manifest = validate_bundle(args.validate)
    rows_entry = manifest["rows"]
    print(
        f"ok: {args.validate}: kind={manifest['kind']} name={manifest['name']} "
        f"schema={manifest['schema']} rows={rows_entry['count']} "
        f"files={len(manifest['files'])}"
    )
    return EXIT_OK


def _trajectory_action(args) -> int:
    from pathlib import Path

    from ..cli import EXIT_OK, render_output, resolve_output, write_output
    from .trajectory import collect_bundles, trajectory_rows

    fmt, path = resolve_output(args.out, args.format)
    bundles = collect_bundles(args.trajectory)
    rows = trajectory_rows(bundles, bench_files=args.bench, root=Path(args.trajectory))
    if not rows:
        print(f"(no bundles under {args.trajectory})")
        return EXIT_OK
    write_output(render_output(rows, fmt), path)
    return EXIT_OK


def _merge_bench_action(args) -> int:
    from ..cli import EXIT_OK
    from .bench import bench_updates_from_source, merge_bench_record

    updates = {}
    if args.from_source:
        updates.update(bench_updates_from_source(args.from_source))
    for entry in args.set_values:
        key, sep, value = entry.partition("=")
        if not sep or not key:
            raise ConfigError(f"--set expects KEY=VALUE, got {entry!r}")
        updates[key] = _parse_scalar(value)
    if not updates:
        raise ConfigError("--merge-bench needs --from and/or --set updates")
    merge_bench_record(args.merge_bench, updates)
    print(f"merged {len(updates)} keys into {args.merge_bench}")
    return EXIT_OK


def _parse_scalar(text: str):
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ..cli import EXIT_USAGE
    from ..telemetry.log import get_logger
    from ..telemetry.registry import TelemetryError

    args = _build_parser().parse_args(argv)
    log = get_logger("repro.reporting")
    try:
        if args.scenario:
            return _run_campaign_action(args)
        if args.validate:
            return _validate_action(args)
        if args.trajectory:
            return _trajectory_action(args)
        return _merge_bench_action(args)
    except (ConfigError, ReportingError, TelemetryError) as error:
        log.error("command failed", error=str(error))
        return EXIT_USAGE
