"""Versioned run-artifact bundles: one directory per run, schema-checked.

Every matrix, fleet, showdown and campaign run can emit a *bundle* — a
directory holding a ``manifest.json`` plus the run's rows (json/jsonl/csv),
an optional aggregated ``summary.json`` (the campaign CI table), an optional
``bench.json`` (BENCH-record metrics) and any extra artifacts (e.g. a
synthesized trace file).  The manifest names the bundle schema version, the
producing kind, the package version, the seeds and spec hashes behind the
rows, the environment, and a SHA-256 digest of every payload file — so a
bundle is self-validating and a stale or hand-edited one is refused instead
of silently misread, mirroring the telemetry stream's ``SCHEMA_VERSION``
discipline.

Bundles contain no wall-clock timestamps: a bundle is a pure function of the
specs and seeds that produced it, so re-running the same configuration at any
worker count rewrites byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from ..errors import ReportingError
from .rows import ROW_FORMATS, parse_rows, render_rows

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "BUNDLE_KINDS",
    "MANIFEST_NAME",
    "RunBundle",
    "write_bundle",
    "load_bundle",
    "validate_bundle",
]

#: Version of the bundle manifest schema.  Bump on any incompatible change.
BUNDLE_SCHEMA_VERSION = 1

#: Producers a manifest may name.
BUNDLE_KINDS = ("matrix", "fleet", "showdown", "workloads", "campaign")

MANIFEST_NAME = "manifest.json"

#: Manifest keys that must always be present.
_REQUIRED_KEYS = (
    "schema",
    "kind",
    "name",
    "repro_version",
    "environment",
    "seeds",
    "spec_hashes",
    "rows",
    "files",
)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _environment() -> Dict[str, str]:
    """Toolchain identity recorded in every manifest.

    Deliberately excludes anything that varies between identical runs on the
    same machine (wall clock, pid, cwd): two runs of the same configuration
    must produce byte-identical manifests.
    """
    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


@dataclass
class RunBundle:
    """A loaded (and digest-verified) run-artifact bundle."""

    directory: Path
    manifest: Dict[str, object]
    rows: List[dict]
    summary: List[dict] = field(default_factory=list)
    bench: Dict[str, object] = field(default_factory=dict)

    @property
    def kind(self) -> str:
        return str(self.manifest["kind"])

    @property
    def name(self) -> str:
        return str(self.manifest["name"])

    def rerender_rows(self) -> str:
        """Re-render the loaded rows in the manifest's row format.

        Byte-identical to the on-disk row file (pinned by the bundle
        round-trip tests) — the property that makes bundles diffable.
        """
        fmt = str(self.manifest["rows"]["format"])  # type: ignore[index]
        return render_rows(self.rows, fmt)


def write_bundle(
    directory,
    *,
    kind: str,
    name: str,
    rows: Sequence[Mapping[str, object]],
    fmt: str = "json",
    summary: Optional[Sequence[Mapping[str, object]]] = None,
    bench: Optional[Mapping[str, object]] = None,
    seeds: Sequence[int] = (),
    spec_hashes: Sequence[str] = (),
    meta: Optional[Mapping[str, object]] = None,
    extra_files: Optional[Mapping[str, bytes]] = None,
) -> Path:
    """Write a bundle under ``directory`` (created if missing); returns it.

    ``rows`` is the run's row table, rendered as ``rows.<fmt>``; ``summary``
    (always JSON) is the aggregated campaign table; ``bench`` is a flat
    BENCH-record dictionary; ``extra_files`` maps file names to raw payloads
    (e.g. a synthesized trace).  The manifest is written last, so a crashed
    writer leaves a directory that fails validation rather than one that
    lies.
    """
    if kind not in BUNDLE_KINDS:
        raise ReportingError(f"unknown bundle kind {kind!r} (expected one of {BUNDLE_KINDS})")
    if fmt not in ROW_FORMATS:
        raise ReportingError(f"unknown row format {fmt!r} (expected one of {ROW_FORMATS})")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    files: Dict[str, bytes] = {}
    rows = [dict(row) for row in rows]
    rows_name = f"rows.{fmt}"
    files[rows_name] = render_rows(rows, fmt).encode("utf-8")

    manifest: Dict[str, object] = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "kind": kind,
        "name": name,
        "repro_version": _repro_version(),
        "environment": _environment(),
        "seeds": [int(seed) for seed in seeds],
        "spec_hashes": sorted(set(str(h) for h in spec_hashes)),
        "rows": {"file": rows_name, "format": fmt, "count": len(rows)},
    }
    if summary is not None:
        summary = [dict(row) for row in summary]
        files["summary.json"] = render_rows(summary, "json").encode("utf-8")
        manifest["summary"] = {"file": "summary.json", "format": "json",
                               "count": len(summary)}
    if bench is not None:
        payload = json.dumps(dict(bench), indent=2, sort_keys=True) + "\n"
        files["bench.json"] = payload.encode("utf-8")
        manifest["bench"] = "bench.json"
    for extra_name, payload in (extra_files or {}).items():
        if extra_name == MANIFEST_NAME or extra_name in files:
            raise ReportingError(f"duplicate bundle file name {extra_name!r}")
        files[extra_name] = bytes(payload)
    if meta:
        manifest["meta"] = dict(meta)

    for file_name, payload in files.items():
        (directory / file_name).write_bytes(payload)
    manifest["files"] = {
        file_name: {"sha256": _sha256(payload), "bytes": len(payload)}
        for file_name, payload in sorted(files.items())
    }
    manifest_text = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    (directory / MANIFEST_NAME).write_text(manifest_text, encoding="utf-8")
    return directory


def _repro_version() -> str:
    from .. import __version__

    return __version__


def validate_bundle(directory) -> Dict[str, object]:
    """Validate a bundle directory; returns its manifest or raises.

    Checks the manifest parses, carries the supported schema version and
    every required key, and that every listed payload file exists with the
    recorded size and SHA-256 digest — so truncation, hand edits and version
    skew are all refused with a precise reason.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ReportingError(f"{directory}: not a bundle (no {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReportingError(f"{manifest_path}: manifest is not valid JSON ({exc})") from None
    if not isinstance(manifest, dict):
        raise ReportingError(f"{manifest_path}: manifest must be a JSON object")
    for key in _REQUIRED_KEYS:
        if key not in manifest:
            raise ReportingError(f"{manifest_path}: manifest is missing {key!r}")
    schema = manifest["schema"]
    if schema != BUNDLE_SCHEMA_VERSION:
        raise ReportingError(
            f"{manifest_path}: unsupported bundle schema {schema!r} "
            f"(expected {BUNDLE_SCHEMA_VERSION})"
        )
    if manifest["kind"] not in BUNDLE_KINDS:
        raise ReportingError(
            f"{manifest_path}: unknown bundle kind {manifest['kind']!r}"
        )
    if not isinstance(manifest["seeds"], list) or not all(
        isinstance(seed, int) and not isinstance(seed, bool) for seed in manifest["seeds"]
    ):
        raise ReportingError(f"{manifest_path}: seeds must be a list of integers")
    if not isinstance(manifest["spec_hashes"], list) or not all(
        isinstance(item, str) for item in manifest["spec_hashes"]
    ):
        raise ReportingError(f"{manifest_path}: spec_hashes must be a list of strings")

    files = manifest["files"]
    if not isinstance(files, dict):
        raise ReportingError(f"{manifest_path}: files must be an object")
    for file_name, entry in files.items():
        path = directory / file_name
        if not path.is_file():
            raise ReportingError(f"{directory}: bundle file {file_name!r} is missing")
        payload = path.read_bytes()
        if len(payload) != entry.get("bytes"):
            raise ReportingError(
                f"{path}: size mismatch ({len(payload)} bytes on disk, "
                f"{entry.get('bytes')} in manifest)"
            )
        digest = _sha256(payload)
        if digest != entry.get("sha256"):
            raise ReportingError(
                f"{path}: digest mismatch (corrupted or hand-edited; "
                f"{digest[:12]}... on disk, {str(entry.get('sha256'))[:12]}... in manifest)"
            )

    rows_entry = manifest["rows"]
    if (
        not isinstance(rows_entry, dict)
        or rows_entry.get("file") not in files
        or rows_entry.get("format") not in ROW_FORMATS
    ):
        raise ReportingError(f"{manifest_path}: malformed rows entry {rows_entry!r}")
    rows = _read_rows(directory, rows_entry)
    if len(rows) != rows_entry.get("count"):
        raise ReportingError(
            f"{manifest_path}: row count mismatch ({len(rows)} rows on disk, "
            f"{rows_entry.get('count')} in manifest)"
        )
    summary_entry = manifest.get("summary")
    if summary_entry is not None:
        if not isinstance(summary_entry, dict) or summary_entry.get("file") not in files:
            raise ReportingError(
                f"{manifest_path}: malformed summary entry {summary_entry!r}"
            )
        summary = _read_rows(directory, summary_entry)
        if len(summary) != summary_entry.get("count"):
            raise ReportingError(f"{manifest_path}: summary count mismatch")
    bench_name = manifest.get("bench")
    if bench_name is not None and bench_name not in files:
        raise ReportingError(f"{manifest_path}: bench file {bench_name!r} not in files")
    return manifest


def _read_rows(directory: Path, entry: Mapping[str, object]) -> List[dict]:
    path = directory / str(entry["file"])
    return parse_rows(path.read_text(encoding="utf-8"), str(entry["format"]))


def load_bundle(directory) -> RunBundle:
    """Validate and load a bundle's manifest, rows, summary and bench record."""
    directory = Path(directory)
    manifest = validate_bundle(directory)
    rows = _read_rows(directory, manifest["rows"])  # type: ignore[arg-type]
    summary: List[dict] = []
    if manifest.get("summary") is not None:
        summary = _read_rows(directory, manifest["summary"])  # type: ignore[arg-type]
    bench: Dict[str, object] = {}
    if manifest.get("bench"):
        bench_path = directory / str(manifest["bench"])
        bench = json.loads(bench_path.read_text(encoding="utf-8"))
    return RunBundle(
        directory=directory, manifest=manifest, rows=rows, summary=summary, bench=bench
    )
