"""Multi-seed replicate sweeps over the registered scenario catalog.

A campaign runs one scenario ``n`` times under deterministically derived
seeds (:mod:`repro.runtime.seeds`) through the shared content-addressed
runner, then aggregates every numeric metric across replicates into
mean/stddev/95% CI rows (:mod:`repro.reporting.stats`).  Because replicate
seeds are a pure function of the base seed and execution goes through the
cached :class:`~repro.runtime.runner.ExperimentRunner`, re-running a campaign
is served entirely from the result cache, and the emitted rows — raw and
aggregated — are byte-identical at any worker count.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config.schema import CampaignSpec
from ..errors import ConfigError
from .bundle import write_bundle
from .stats import aggregate_rows

__all__ = ["CampaignResult", "run_campaign", "write_campaign_bundle"]


@dataclass
class CampaignResult:
    """Everything one campaign ran and measured."""

    spec: CampaignSpec
    #: Replicate seeds, in execution order (index 0 is the base seed).
    seeds: Tuple[int, ...] = ()
    #: One row list per *completed* replicate, aligned with ``seeds`` minus
    #: any failed entries.
    replicates: List[List[dict]] = field(default_factory=list)
    #: Original replicate index of every entry in ``replicates``.
    replicate_indices: List[int] = field(default_factory=list)
    #: ``{"replicate", "seed", "error"}`` per replicate that raised.
    failures: List[Dict[str, object]] = field(default_factory=list)
    #: Axis names of the scenario (excluded from metric aggregation).
    axis_names: Tuple[str, ...] = ()
    #: Sorted unique spec hashes of every variant run.
    spec_hashes: Tuple[str, ...] = ()
    #: Runner cache hits observed across the whole campaign.
    cache_hits: int = 0

    @property
    def variant_count(self) -> int:
        return len(self.replicates[0]) if self.replicates else 0

    def raw_rows(self) -> List[dict]:
        """Every replicate's rows, each tagged with its replicate and seed."""
        rows: List[dict] = []
        for index, replicate in zip(self.replicate_indices, self.replicates):
            for row in replicate:
                rows.append({"replicate": index, "seed": self.seeds[index], **row})
        return rows

    def summary_rows(self) -> List[dict]:
        """Per-(label, metric) mean/stddev/95% CI across replicates."""
        return aggregate_rows(self.replicates, exclude=self.axis_names)


def run_campaign(spec: CampaignSpec, runner=None) -> CampaignResult:
    """Run every replicate of ``spec`` and aggregate the results.

    Unknown scenarios, bad grids and non-seedable scenarios are caller errors
    raised before anything runs; a replicate failing *mid-campaign* is
    isolated (recorded in ``failures``, the remaining replicates still run).
    """
    from ..experiments import matrix
    from ..runtime import default_runner, replicate_seeds, spec_hash

    scenario_obj = matrix.get_scenario(spec.scenario)
    builder_params = inspect.signature(scenario_obj.builder).parameters
    if "seed" not in builder_params:
        raise ConfigError(
            f"scenario {spec.scenario!r} does not accept a seed; its replicates "
            "would be identical — campaigns need a seedable scenario"
        )
    grid = dict(spec.grid) or None
    # Validate the grid against the scenario before running anything.
    scenario_obj.variant_count(grid)

    seeds = replicate_seeds(spec.base_seed, spec.replicates)
    active = runner if runner is not None else default_runner()
    result = CampaignResult(spec=spec, seeds=seeds, axis_names=scenario_obj.axis_names)

    hashes = set()
    hits_before = active.cache.hits
    for index, seed in enumerate(seeds):
        try:
            matrix_result = matrix.run_scenario(
                spec.scenario,
                runner=active,
                grid=grid,
                seed=seed,
                qps=spec.qps,
                duration=spec.duration,
                warmup=spec.warmup,
            )
        except Exception as error:  # isolated per replicate
            result.failures.append(
                {
                    "replicate": index,
                    "seed": seed,
                    "error": f"{type(error).__name__}: {error}",
                }
            )
            continue
        result.replicates.append(matrix_result.rows())
        result.replicate_indices.append(index)
        hashes.update(spec_hash(variant.spec) for variant in matrix_result.variants)
    result.cache_hits = active.cache.hits - hits_before
    result.spec_hashes = tuple(sorted(hashes))
    return result


def write_campaign_bundle(result: CampaignResult, directory, fmt: str = "json"):
    """Emit a campaign's run-artifact bundle; returns the bundle directory.

    Rows are the seed-tagged raw replicate rows; ``summary.json`` holds the
    aggregated CI table.  Failed replicates are recorded in the manifest
    meta, never silently dropped.
    """
    spec = result.spec
    meta: Dict[str, object] = {
        "scenario": spec.scenario,
        "replicates": spec.replicates,
        "base_seed": spec.base_seed,
    }
    if spec.grid:
        meta["grid"] = {axis: list(values) for axis, values in spec.grid}
    overrides = {
        key: getattr(spec, key)
        for key in ("qps", "duration", "warmup")
        if getattr(spec, key) is not None
    }
    if overrides:
        meta["overrides"] = overrides
    if result.failures:
        meta["failed_replicates"] = [dict(f) for f in result.failures]
    return write_bundle(
        directory,
        kind="campaign",
        name=spec.scenario,
        rows=result.raw_rows(),
        fmt=fmt,
        summary=result.summary_rows(),
        seeds=result.seeds,
        spec_hashes=result.spec_hashes,
        meta=meta,
    )


def make_campaign(
    scenario: str,
    replicates: int = 5,
    base_seed: int = 1,
    grid: Optional[Dict[str, tuple]] = None,
    qps: Optional[float] = None,
    duration: Optional[float] = None,
    warmup: Optional[float] = None,
) -> CampaignSpec:
    """Build a :class:`CampaignSpec` from loosely-typed CLI inputs."""
    return CampaignSpec(
        scenario=scenario,
        replicates=replicates,
        base_seed=base_seed,
        grid=tuple((axis, tuple(values)) for axis, values in (grid or {}).items()),
        qps=qps,
        duration=duration,
        warmup=warmup,
    )
