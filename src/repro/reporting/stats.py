"""Replicate statistics: mean, sample stddev and 95% confidence intervals.

The campaign layer replaces single-seed point estimates with multi-seed
replicate sweeps; this module owns the aggregation.  Intervals use the
two-sided Student-t critical value at 95% (the replicate count is small —
typically 3..10 — where the normal approximation is badly anti-conservative),
from an embedded table so no SciPy dependency is needed.  For degrees of
freedom between table entries the value at the largest tabled ``df`` below is
used, which errs on the wide (conservative) side.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigError

__all__ = ["t_critical_95", "summarize", "aggregate_rows"]

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T_95: Dict[int, float] = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

#: Large-sample (normal) limit used above the table's last entry.
_T_95_INF = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ConfigError(f"degrees of freedom must be >= 1, got {df}")
    if df in _T_95:
        return _T_95[df]
    below = max(entry for entry in _T_95 if entry <= df) if df <= 120 else None
    return _T_95[below] if below is not None else _T_95_INF


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / sample stddev / 95% CI of one metric across replicates.

    Returns ``{"n", "mean", "stddev", "ci95", "ci95_lo", "ci95_hi"}`` where
    ``ci95`` is the interval half-width.  A single replicate has no sample
    variance; its stddev and half-width are reported as 0.0 (the point
    estimate is the interval), keeping the row shape uniform.
    """
    values = [float(value) for value in values]
    if not values:
        raise ConfigError("cannot summarize an empty replicate set")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        stddev = half = 0.0
    else:
        variance = sum((value - mean) ** 2 for value in values) / (n - 1)
        stddev = math.sqrt(variance)
        half = t_critical_95(n - 1) * stddev / math.sqrt(n)
    return {
        "n": n,
        "mean": mean,
        "stddev": stddev,
        "ci95": half,
        "ci95_lo": mean - half,
        "ci95_hi": mean + half,
    }


def _is_numeric(value: object) -> bool:
    # Booleans aggregate as 0/1 rates (e.g. a showdown's slo_met column).
    return isinstance(value, (int, float, bool)) and (
        not isinstance(value, float) or math.isfinite(value)
    )


def aggregate_rows(
    replicates: Sequence[Sequence[dict]],
    exclude: Iterable[str] = (),
    identity: Sequence[str] = ("scenario", "label"),
) -> List[dict]:
    """Aggregate per-replicate row lists into long-format CI rows.

    ``replicates`` holds one row list per seed; rows are matched across
    replicates by their ``label`` (every replicate of a scenario expands to
    the same labelled variants, in the same order).  For every numeric column
    that is not an identity column and not in ``exclude`` one output row is
    emitted::

        {"scenario", "label", "metric", "n", "mean", "stddev",
         "ci95", "ci95_lo", "ci95_hi"}

    Output order follows the first replicate's label order, then its column
    order — a pure function of the rows, independent of worker count.
    """
    if not replicates:
        return []
    first = list(replicates[0])
    skip = set(exclude) | set(identity)
    grouped: Dict[object, List[dict]] = {}
    for rows in replicates:
        rows = list(rows)
        if len(rows) != len(first):
            raise ConfigError(
                f"replicates disagree on variant count ({len(rows)} vs {len(first)}); "
                "every replicate must expand to the same labelled variants"
            )
        for row, reference in zip(rows, first):
            if row.get("label") != reference.get("label"):
                raise ConfigError(
                    f"replicate rows are misaligned: {row.get('label')!r} vs "
                    f"{reference.get('label')!r}"
                )
            grouped.setdefault(reference.get("label"), []).append(row)

    out: List[dict] = []
    for reference in first:
        label = reference.get("label")
        rows = grouped[label]
        for column, value in reference.items():
            if column in skip or not _is_numeric(value):
                continue
            values = [float(row[column]) for row in rows if _is_numeric(row.get(column))]
            if not values:
                continue
            entry: Dict[str, object] = {
                key: reference.get(key, "") for key in identity
            }
            entry["metric"] = column
            entry.update(summarize(values))
            out.append(entry)
    return out


def aggregate_metric(
    replicates: Sequence[Sequence[dict]], label: object, metric: str
) -> Optional[Dict[str, float]]:
    """Summary of one (label, metric) cell, or ``None`` when absent."""
    values = [
        float(row[metric])
        for rows in replicates
        for row in rows
        if row.get("label") == label and _is_numeric(row.get(metric))
    ]
    return summarize(values) if values else None
