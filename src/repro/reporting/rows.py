"""Canonical row rendering shared by every CLI and the bundle writer.

A *row* is a flat mapping of column name to string/number — the shape every
harness in this repository already produces (``MatrixResult.rows()``, the
fleet accounting rows, the showdown detail table).  This module owns the
byte-level renderings of row sequences so the CLIs, the artifact-bundle
writer and the legacy :mod:`repro.experiments.reporting` helpers all emit
identical bytes for identical rows:

* ``json`` — a deterministic (sorted-key, indent-2) JSON array;
* ``jsonl`` — one compact sorted-key JSON object per line;
* ``csv`` — RFC-4180 with a header line.

Rendering is a pure function of the rows, so output files are byte-identical
across worker counts, cache states and repeat invocations.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Mapping, Optional, Sequence, Union

from ..errors import ConfigError

__all__ = [
    "ROW_FORMATS",
    "all_columns",
    "parse_rows",
    "render_rows",
    "rows_to_csv",
    "rows_to_json",
    "rows_to_jsonl",
]

Number = Union[int, float]
Row = Mapping[str, Union[str, Number]]

#: Machine-readable row formats (the table rendering is presentation, not a
#: row format, and lives in :mod:`repro.experiments.reporting`).
ROW_FORMATS = ("json", "jsonl", "csv")


def all_columns(rows: Sequence[Row]) -> List[str]:
    """Union of row keys, in first-appearance order (rows may be ragged)."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_to_json(rows: Sequence[Row], indent: int = 2) -> str:
    """Render rows as a deterministic (sorted-key) JSON array."""
    return json.dumps([dict(row) for row in rows], indent=indent, sort_keys=True)


def rows_to_jsonl(rows: Sequence[Row]) -> str:
    """Render rows as JSON Lines: one compact sorted-key object per line."""
    return "".join(
        json.dumps(dict(row), sort_keys=True, separators=(",", ":")) + "\n"
        for row in rows
    )


def rows_to_csv(rows: Sequence[Row], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as RFC-4180 CSV with a header line."""
    rows = list(rows)
    if columns is None:
        columns = all_columns(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore",
                            lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def render_rows(
    rows: Sequence[Row], fmt: str, columns: Optional[Sequence[str]] = None
) -> str:
    """Render rows in one of :data:`ROW_FORMATS`.

    Every rendering ends with exactly one trailing newline, so the returned
    text can be written to a file (or a terminal) verbatim.
    """
    if fmt == "json":
        return rows_to_json(rows) + "\n"
    if fmt == "jsonl":
        return rows_to_jsonl(rows)
    if fmt == "csv":
        return rows_to_csv(rows, columns=columns)
    raise ConfigError(f"unknown row format {fmt!r} (expected one of {ROW_FORMATS})")


def parse_rows(text: str, fmt: str) -> List[dict]:
    """Parse text produced by :func:`render_rows` back into rows.

    JSON and JSONL round-trip values exactly; CSV — which is untyped — yields
    every cell as a string, and re-rendering those string rows as CSV is
    byte-identical to the original file.
    """
    if fmt == "json":
        rows = json.loads(text)
        if not isinstance(rows, list):
            raise ConfigError("a JSON row file must contain a top-level array")
        return rows
    if fmt == "jsonl":
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    if fmt == "csv":
        reader = csv.DictReader(io.StringIO(text))
        return [dict(row) for row in reader]
    raise ConfigError(f"unknown row format {fmt!r} (expected one of {ROW_FORMATS})")
