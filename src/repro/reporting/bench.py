"""Merge-update tooling for the ``BENCH_*.json`` records.

The three benchmark records at the repository root are the canonical perf
history every speed claim cites.  They used to be rewritten wholesale by the
nightly benchmarks and hand-edited in between; this module makes every write
a *merge*: existing keys keep their position, updated keys change in place,
new keys append, and the merged record is schema-validated
(:data:`repro.telemetry.schema.BENCH_SCHEMAS`) before a byte is written — so
a partial benchmark run can no longer silently drop fields, and hand edits
are replaced by ``python -m repro.reporting --merge-bench``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Mapping

from ..errors import ReportingError

__all__ = ["merge_bench_record", "bench_updates_from_source"]


def merge_bench_record(path, updates: Mapping[str, object], validate: bool = True) -> Dict:
    """Merge ``updates`` into the BENCH record at ``path`` and write it back.

    Returns the merged record.  When ``path``'s basename has a declared
    schema and ``validate`` is true, the *merged* record must satisfy it —
    an update that would leave a required key missing or non-numeric is
    rejected before the file is touched.  The on-disk rendering (indent 2,
    insertion order, trailing newline) matches what the benchmarks have
    always written, so a merge that changes nothing is byte-identical.
    """
    path = Path(path)
    record: Dict = {}
    if path.is_file():
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReportingError(f"{path}: existing record is not valid JSON ({exc})") from None
        if not isinstance(record, dict):
            raise ReportingError(f"{path}: existing record must be a JSON object")
    record.update(updates)
    if validate:
        from ..telemetry.schema import BENCH_SCHEMAS, validate_bench_record

        if path.name in BENCH_SCHEMAS:
            validate_bench_record(path.name, record)
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return record


def bench_updates_from_source(source) -> Dict[str, object]:
    """Extract a flat BENCH-update dictionary from ``source``.

    ``source`` is either a run-artifact bundle directory (its ``bench.json``
    payload is used) or a plain JSON file holding one flat object.
    """
    source = Path(source)
    if source.is_dir():
        from .bundle import load_bundle

        bundle = load_bundle(source)
        if not bundle.bench:
            raise ReportingError(f"{source}: bundle carries no bench record")
        return dict(bundle.bench)
    if source.is_file():
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ReportingError(f"{source}: not valid JSON ({exc})") from None
        if not isinstance(payload, dict):
            raise ReportingError(f"{source}: bench updates must be a JSON object")
        return payload
    raise ReportingError(f"{os.fspath(source)!r}: no such bundle directory or JSON file")
