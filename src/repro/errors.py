"""Exception hierarchy for the PerfIso reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class SchedulerError(SimulationError):
    """The simulated OS scheduler detected an invariant violation."""


class ResourceError(SimulationError):
    """A simulated hardware resource was used incorrectly (e.g. double free)."""


class TenantError(ReproError):
    """A tenant (primary or secondary workload) was misconfigured or misused."""


class IsolationError(ReproError):
    """The PerfIso controller or one of its policies was misused."""


class ClusterError(ReproError):
    """A cluster-level component (routing, aggregation, deployment) failed."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""
