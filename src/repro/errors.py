"""Exception hierarchy for the PerfIso reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class SchedulerError(SimulationError):
    """The simulated OS scheduler detected an invariant violation."""


class ResourceError(SimulationError):
    """A simulated hardware resource was used incorrectly (e.g. double free)."""


class TenantError(ReproError):
    """A tenant (primary or secondary workload) was misconfigured or misused."""


class IsolationError(ReproError):
    """The PerfIso controller or one of its policies was misused."""


class ClusterError(ReproError):
    """A cluster-level component (routing, aggregation, deployment) failed."""


class UnknownVersionError(ClusterError):
    """A configuration version was requested that the store has never held.

    Carries the configuration ``name``, the requested ``version`` and the
    ``available`` versions so recovery code (staged rollouts rolling back
    through churn) can decide whether the miss is fatal or survivable.
    """

    def __init__(self, name: str, version: object, available: tuple) -> None:
        self.name = name
        self.version = version
        self.available = tuple(available)
        listing = ", ".join(str(v) for v in self.available) if self.available else "none"
        super().__init__(
            f"configuration {name!r} has no version {version}; "
            f"available versions: {listing}"
        )


class ConfigPushError(ClusterError):
    """A configuration push failed transiently (lost ack, partitioned store).

    Raised by fault-injecting config stores; staged rollouts treat it as
    retryable, unlike other :class:`ClusterError`\\ s which indicate a
    genuinely misconfigured deployment.
    """


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class ReportingError(ReproError):
    """A run-artifact bundle is malformed, corrupted or version-skewed."""

