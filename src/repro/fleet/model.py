"""The fleet model: machine groups, diurnal load and per-group calibration.

A fleet of thousands of machines cannot be event-simulated directly, so the
model follows the ``largescale`` recipe one level up: every *distinct group
configuration* is calibrated once with the detailed single-machine simulator
(through the shared experiment runner, so repeated calibrations are cache
hits), and per-machine behaviour is then drawn from the calibrated latency
distributions by inverse-CDF sampling.

Calibration is captured in compact, hashable form — quantile curves and CPU
fractions per load point — because shard tasks carry it into worker
processes and into the content-addressed result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    DiskBullySpec,
    DiurnalSpec,
    ExperimentSpec,
    FleetSpec,
    HdfsSpec,
    MachineGroupSpec,
    MlTrainingSpec,
    PerfIsoSpec,
    WorkloadSpec,
)
from ..errors import ExperimentError
from ..workloads.arrival_models import DiurnalArrival

__all__ = [
    "QUANTILE_POINTS",
    "QUANTILE_GRID_MAX",
    "quantile_grid",
    "ModeCalibration",
    "GroupCalibration",
    "FleetModel",
    "stable_seed",
    "interpolate_mode",
    "mode_curve_matrix",
    "blend_curve",
    "mode_scalars",
    "closed_form_histogram",
]

#: ``np.trapz`` was renamed in NumPy 2.0; support both (deps pin >= 1.24).
_trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))

#: Resolution of the calibrated inverse-CDF curves.
QUANTILE_POINTS = 129

#: The curves stop at q=0.999 rather than the raw maximum: a short
#: calibration run's single largest sample is an outlier, and stretching the
#: last grid cell out to it would give every machine a fat synthetic tail
#: that small canary groups then mistake for a latency regression.
QUANTILE_GRID_MAX = 0.999


def quantile_grid() -> np.ndarray:
    """The fixed quantile grid shared by calibration and shard sampling."""
    grid = np.linspace(0.0, 1.0, QUANTILE_POINTS)
    grid[-1] = QUANTILE_GRID_MAX
    return grid

#: The calibrated operating modes of a fleet machine.
BASELINE, COLOCATED = "baseline", "colocated"


def stable_seed(*parts: object) -> int:
    """A process-independent integer seed derived from ``parts``.

    ``hash()`` is salted per process (PYTHONHASHSEED), so shard RNG seeds are
    derived from a cryptographic digest of the parts' reprs instead — the
    same fleet spec must draw the same samples in every process and on every
    run.
    """
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ModeCalibration:
    """One operating mode's calibrated behaviour across the load points."""

    qps: Tuple[float, ...]
    #: Latency quantile curve per load point (inverse CDF on a fixed grid).
    quantiles: Tuple[Tuple[float, ...], ...]
    busy_cpu: Tuple[float, ...]
    secondary_cpu: Tuple[float, ...]
    #: Secondary progress units per simulated second.
    progress_per_s: Tuple[float, ...]


@dataclass(frozen=True)
class GroupCalibration:
    """Both modes of one machine group, plus its capacity estimate inputs."""

    group: str
    logical_cores: int
    baseline: ModeCalibration
    colocated: ModeCalibration

    def reclaimable_cores(self, buffer_cores: int) -> int:
        """Whole cores the placement scheduler may hand to batch jobs.

        Estimated from the baseline calibration: cores idle at the mean
        calibrated load, minus the inviolable buffer.
        """
        busy = float(np.mean(self.baseline.busy_cpu))
        idle_cores = (1.0 - busy) * self.logical_cores - buffer_cores
        return max(0, int(math.floor(idle_cores)))


def _bracket(points: Tuple[float, ...], qps: float) -> Tuple[int, int, float]:
    """The (lower, upper, weight) load-point bracket around ``qps``.

    ``lower == upper`` (weight 0) at and beyond the calibrated range — the
    same clamping the historical :func:`interpolate_mode` applied.
    """
    if qps <= points[0]:
        return 0, 0, 0.0
    if qps >= points[-1]:
        last = len(points) - 1
        return last, last, 0.0
    upper = next(i for i, point in enumerate(points) if point >= qps)
    lower = upper - 1
    weight = (qps - points[lower]) / (points[upper] - points[lower])
    return lower, upper, weight


def mode_curve_matrix(mode: ModeCalibration) -> np.ndarray:
    """Every load point's quantile curve as one ``(points, QUANTILE_POINTS)``
    array — hoist this conversion out of per-bucket loops."""
    return np.asarray(mode.quantiles, dtype=np.float64)


def blend_curve(matrix: np.ndarray, mode: ModeCalibration, qps: float) -> np.ndarray:
    """The quantile curve at ``qps``: bitwise the curve
    :func:`interpolate_mode` returns, computed from a prebuilt matrix."""
    lower, upper, weight = _bracket(mode.qps, qps)
    if lower == upper:
        return matrix[lower]
    return (1.0 - weight) * matrix[lower] + weight * matrix[upper]


def mode_scalars(mode: ModeCalibration, qps: float) -> Tuple[float, float, float]:
    """The (busy, secondary_cpu, progress_per_s) blend at ``qps`` without
    converting the quantile curves — the accounting loop only needs these."""
    lower, upper, weight = _bracket(mode.qps, qps)
    if lower == upper:
        return mode.busy_cpu[lower], mode.secondary_cpu[lower], mode.progress_per_s[lower]

    def mix(values: Tuple[float, ...]) -> float:
        return (1.0 - weight) * values[lower] + weight * values[upper]

    return mix(mode.busy_cpu), mix(mode.secondary_cpu), mix(mode.progress_per_s)


def interpolate_mode(mode: ModeCalibration, qps: float) -> Tuple[np.ndarray, float, float, float]:
    """Blend the two nearest load points: (quantile curve, busy, sec_cpu, rate)."""
    curve = blend_curve(mode_curve_matrix(mode), mode, qps)
    busy, secondary, progress = mode_scalars(mode, qps)
    return curve, busy, secondary, progress


def _largest_remainder(expected: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative ``expected`` (summing to ~``total``) to integers
    that sum to exactly ``total``, deterministically (largest remainders win,
    stable over index on ties)."""
    floors = np.floor(expected).astype(np.int64)
    deficit = total - int(floors.sum())
    if deficit > 0:
        order = np.argsort(-(expected - floors), kind="stable")
        floors[order[:deficit]] += 1
    elif deficit < 0:  # floating-point spill: trim the largest cells
        order = np.argsort(-floors, kind="stable")
        for index in order[: -deficit]:
            floors[index] -= 1
    return floors


def closed_form_histogram(
    curve: np.ndarray, edges: np.ndarray, total: int
) -> Tuple[np.ndarray, float, float]:
    """The closed-form row model: the *expected* digest contribution of
    ``total`` inverse-CDF draws from ``curve``, without drawing them.

    Unsampled machines in hyperscale mode contribute this instead of
    per-machine randomness: the calibrated quantile curve is a piecewise-
    linear inverse CDF, so the CDF at each digest bin edge is the curve's
    inverse (one ``np.interp`` against the swapped axes), bin masses are its
    differences, and counts are rounded largest-remainder so every machine-
    bucket still contributes exactly its sample quota.  Machine skew is
    ignored here (its mean is ~1.0005 at the fleet's sigma); sampled
    machines carry the heterogeneity signal.

    Returns ``(counts, sum, maximum)`` ready for
    :meth:`~repro.metrics.latency.LatencyDigest.add_counts` — ``counts`` has
    ``len(edges) + 1`` cells (underflow, bins, overflow).
    """
    grid = quantile_grid()
    cdf = np.interp(edges, curve, grid)
    # Uniform draws in (QUANTILE_GRID_MAX, 1) clamp to the last curve value,
    # so the CDF saturates at 1.0 there (np.interp stops at the grid's 0.999).
    cdf = np.where(edges >= curve[-1], 1.0, cdf)
    probs = np.empty(edges.size + 1, dtype=np.float64)
    probs[0] = cdf[0]
    probs[1:-1] = np.diff(cdf)
    probs[-1] = 1.0 - cdf[-1]
    np.clip(probs, 0.0, None, out=probs)
    probs /= probs.sum()
    counts = _largest_remainder(probs * total, total)
    mean = float(_trapezoid(curve, grid) + (1.0 - grid[-1]) * curve[-1])
    return counts, mean * total, float(curve[-1])


def _secondary_fields(group: MachineGroupSpec) -> Dict[str, object]:
    """The ExperimentSpec tenant field for the group's harvested secondary."""
    threads = group.secondary_threads
    if group.secondary == "cpu_bully":
        spec = CpuBullySpec(threads=threads) if threads else CpuBullySpec()
    elif group.secondary == "disk_bully":
        spec = DiskBullySpec(threads=threads) if threads else DiskBullySpec()
    elif group.secondary == "hdfs":
        spec = HdfsSpec()
    else:
        spec = MlTrainingSpec(threads=threads) if threads else MlTrainingSpec()
    return {group.secondary: spec}


class FleetModel:
    """Machine naming, sharding, load curves and calibration for one fleet."""

    def __init__(self, spec: FleetSpec) -> None:
        self._spec = spec
        self._machine_names: Dict[str, Tuple[str, ...]] = {
            group.name: tuple(
                f"{group.name}-{index:05d}" for index in range(group.machines)
            )
            for group in spec.groups
        }

    @property
    def spec(self) -> FleetSpec:
        return self._spec

    @property
    def total_machines(self) -> int:
        return self._spec.total_machines

    def machine_names(self, group: MachineGroupSpec) -> Tuple[str, ...]:
        return self._machine_names[group.name]

    def enabled_count(self, group: MachineGroupSpec, fraction: float) -> int:
        """Machines of ``group`` covered by a cumulative rollout fraction."""
        return min(group.machines, int(math.ceil(fraction * group.machines)))

    def load_at(self, group: MachineGroupSpec, t: float) -> float:
        """Per-machine QPS of ``group`` at simulation time ``t``."""
        return self.arrival_model(group).rate_at(t)

    def arrival_model(self, group: MachineGroupSpec) -> DiurnalArrival:
        """The shared diurnal arrival model behind ``load_at`` for ``group``.

        Per-row diurnal curves come from the workload layer's arrival-model
        hierarchy (same arithmetic as the historical private implementation,
        so fleet results are bit-identical) — the single-machine and fleet
        implementations cannot drift apart.  Built from the *passed* group's
        fields, so derived group variants map to the curve they describe.
        """
        return DiurnalArrival(
            DiurnalSpec(
                peak_qps=group.peak_qps,
                trough_qps=group.trough_qps,
                period=self._spec.diurnal_period,
                phase_offset=group.phase_offset,
            )
        )

    def shards(self, group: MachineGroupSpec) -> List[Tuple[int, int, int]]:
        """Fixed-size shards as (shard_index, start, stop) machine slices.

        Shard boundaries depend only on the spec (never on the worker count),
        so fleet results are bit-identical at any parallelism.
        """
        size = self._spec.shard_machines
        return [
            (index, start, min(start + size, group.machines))
            for index, start in enumerate(range(0, group.machines, size))
        ]

    # ------------------------------------------------------------ calibration
    def calibration_spec(
        self, group: MachineGroupSpec, mode: str, point_index: int
    ) -> ExperimentSpec:
        """The single-machine experiment calibrating one (group, mode, load)."""
        qps = self._spec.calibration_qps[point_index]
        workload = WorkloadSpec(
            qps=qps,
            duration=self._spec.calibration_duration,
            warmup=self._spec.calibration_warmup,
        )
        base = ExperimentSpec(
            machine=group.machine,
            workload=workload,
            seed=self._spec.seed + point_index,
        )
        if mode == BASELINE:
            return base
        policy = self._spec.rollout.target_policy
        if policy == "none":
            perfiso = None
        else:
            perfiso = PerfIsoSpec(
                cpu_policy=policy,
                blind=BlindIsolationSpec(buffer_cores=group.buffer_cores),
            )
        return dataclasses.replace(base, perfiso=perfiso, **_secondary_fields(group))

    def calibrate(self, runner) -> Dict[str, GroupCalibration]:
        """Calibrate every group in one runner batch (deduped + cached).

        Groups sharing a configuration resolve to the same cache entries, so
        a 10-group fleet with three distinct row configurations costs three
        calibrations.
        """
        from ..runtime.runner import ExperimentTask

        grid = quantile_grid()
        tasks: List[ExperimentTask] = []
        labels: List[Tuple[str, str, int]] = []
        for group in self._spec.groups:
            for mode in (BASELINE, COLOCATED):
                for point_index in range(len(self._spec.calibration_qps)):
                    tasks.append(
                        ExperimentTask(
                            self.calibration_spec(group, mode, point_index),
                            scenario=f"fleet-calibration/{group.name}/{mode}",
                        )
                    )
                    labels.append((group.name, mode, point_index))

        measured: Dict[Tuple[str, str, int], Tuple] = {}
        for label, outcome in zip(labels, runner.run_batch(tasks)):
            samples = outcome.latency_samples
            if samples.size == 0:
                raise ExperimentError(
                    f"fleet calibration {label} produced no latency samples; "
                    "increase calibration_duration or load"
                )
            quantile_curve = tuple(float(v) for v in np.quantile(samples, grid))
            cpu = outcome.result.cpu
            busy = cpu.primary + cpu.secondary + cpu.os
            progress = outcome.result.secondary_progress / self._spec.calibration_duration
            measured[label] = (quantile_curve, busy, cpu.secondary, progress)

        calibrations: Dict[str, GroupCalibration] = {}
        for group in self._spec.groups:
            modes = {}
            for mode in (BASELINE, COLOCATED):
                points = range(len(self._spec.calibration_qps))
                rows = [measured[(group.name, mode, index)] for index in points]
                modes[mode] = ModeCalibration(
                    qps=tuple(self._spec.calibration_qps),
                    quantiles=tuple(row[0] for row in rows),
                    busy_cpu=tuple(row[1] for row in rows),
                    secondary_cpu=tuple(row[2] for row in rows),
                    progress_per_s=tuple(row[3] for row in rows),
                )
            calibrations[group.name] = GroupCalibration(
                group=group.name,
                logical_cores=group.machine.logical_cores,
                baseline=modes[BASELINE],
                colocated=modes[COLOCATED],
            )
        return calibrations
