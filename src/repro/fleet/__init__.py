"""Fleet operations: staged PerfIso rollout, placement and accounting.

The paper's headline result is operational — PerfIso rolled out across tens
of thousands of IndexServe machines, harvesting idle capacity for batch work
while holding the tail.  This package simulates that operation end to end:

* :mod:`repro.fleet.model` — heterogeneous machine groups with per-row
  diurnal load phases, calibrated through the shared experiment runner;
* :mod:`repro.fleet.placement` — deterministic bin-packing of batch demand
  onto reclaimable-capacity estimates;
* :mod:`repro.fleet.rollout` — canary -> wave -> fleet staging with SLO
  guardrails over the versioned Autopilot configuration store;
* :mod:`repro.fleet.accounting` — reclaimed core-hours, batch throughput and
  SLO-violation minutes folded from mergeable latency digests;
* :mod:`repro.fleet.simulate` — sharded execution over the parallel runtime;
* :mod:`repro.fleet.cli` — the ``python -m repro.fleet`` entry point.
"""

from .accounting import FleetResult, StageAccount
from .model import FleetModel, GroupCalibration, ModeCalibration
from .placement import (
    Assignment,
    MachineCapacity,
    PlacementDemand,
    PlacementPlan,
    plan_placement,
)
from .rollout import GuardrailMonitor, StageDecision, StagedRollout
from .scenarios import default_fleet_spec
from .simulate import FleetSimulation

__all__ = [
    "FleetResult",
    "StageAccount",
    "FleetModel",
    "GroupCalibration",
    "ModeCalibration",
    "Assignment",
    "MachineCapacity",
    "PlacementDemand",
    "PlacementPlan",
    "plan_placement",
    "GuardrailMonitor",
    "StageDecision",
    "StagedRollout",
    "default_fleet_spec",
    "FleetSimulation",
]
