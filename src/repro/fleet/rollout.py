"""Staged rollout engine: canary -> wave -> fleet with SLO guardrails.

PerfIso reached tens of thousands of machines the way every config change
does in production: a small canary first, progressively wider waves, and an
automatic halt-and-rollback whenever the tail-latency guardrail trips.  The
engine below drives the versioned :class:`~repro.cluster.autopilot.ConfigStore`
— it publishes the baseline and target configurations as explicit versions,
records a decision per stage, and on a guardrail breach restores the exact
baseline version for every file it touched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..cluster.autopilot import ConfigStore
from ..config.schema import RolloutSpec
from ..errors import ClusterError, ConfigPushError, UnknownVersionError

__all__ = ["GuardrailMonitor", "StageDecision", "StagedRollout"]


@dataclass(frozen=True)
class StageDecision:
    """One stage's guardrail verdict."""

    stage: str
    fraction: float
    #: Worst colocated-to-baseline P99 ratio observed across groups.
    p99_ratio: float
    breached: bool
    action: str  # "advance" | "halt" | "retry"
    #: Which attempt of this stage produced the verdict (1-based).
    attempt: int = 1


class GuardrailMonitor:
    """Compares each group's colocated P99 against its baseline reference."""

    def __init__(self, p99_multiplier: float) -> None:
        if p99_multiplier < 1.0:
            raise ClusterError("guardrail multiplier must be >= 1.0")
        self._multiplier = p99_multiplier

    @property
    def p99_multiplier(self) -> float:
        return self._multiplier

    def ratio(self, measured_p99: float, reference_p99: float) -> float:
        if reference_p99 <= 0.0:
            return 0.0 if measured_p99 <= 0.0 else float("inf")
        return measured_p99 / reference_p99

    def breached_ratio(self, p99_ratio: float) -> bool:
        """The single guardrail verdict every consumer must route through.

        A non-finite ratio fails safe: ``inf`` (measurement against a zero
        reference) breaches because the comparison exceeds any multiplier,
        and ``nan`` (a corrupted signal) breaches because a guardrail that
        cannot read its own telemetry must halt, not silently advance — a
        bare ``ratio > multiplier`` comparison would wave ``nan`` through.
        """
        if math.isnan(p99_ratio):
            return True
        return p99_ratio > self._multiplier

    def breached(self, measured_p99: float, reference_p99: float) -> bool:
        return self.breached_ratio(self.ratio(measured_p99, reference_p99))


class StagedRollout:
    """Drives one staged configuration rollout through a ConfigStore."""

    def __init__(
        self,
        store: ConfigStore,
        rollout: RolloutSpec,
        entries: Mapping[str, Tuple[object, object]],
    ) -> None:
        """``entries`` maps config file name -> (baseline_spec, target_spec)."""
        if not entries:
            raise ClusterError("a rollout needs at least one configuration file")
        self._store = store
        self._rollout = rollout
        self._entries = dict(entries)
        self._baseline_versions: Dict[str, int] = {}
        self._target_versions: Dict[str, int] = {}
        self._stage_attempts: Dict[str, int] = {}
        self.status = "pending"  # pending -> in_progress -> completed | halted
        self.history: List[StageDecision] = []
        self.monitor = GuardrailMonitor(rollout.guardrail_p99_multiplier)
        #: Transient push failures absorbed by retries (churn observability).
        self.push_failures = 0
        #: Rollback targets that no longer existed at halt time; the rollout
        #: rolls every *other* file back rather than dying mid-recovery.
        self.rollback_errors: List[UnknownVersionError] = []

    # ---------------------------------------------------------------- wiring
    @property
    def store(self) -> ConfigStore:
        return self._store

    @property
    def stage_fractions(self) -> Tuple[float, ...]:
        return self._rollout.stage_fractions

    def baseline_version(self, name: str) -> int:
        return self._baseline_versions[name]

    def target_version(self, name: str) -> int:
        return self._target_versions[name]

    # ------------------------------------------------------------- lifecycle
    def begin(self) -> None:
        """Publish baseline then target versions for every managed file."""
        if self.status != "pending":
            raise ClusterError(f"rollout already {self.status}")
        for name in sorted(self._entries):
            baseline, target = self._entries[name]
            self._baseline_versions[name] = self._push(
                lambda name=name, spec=baseline: self._store.publish(name, spec)
            )
            self._target_versions[name] = self._push(
                lambda name=name, spec=target: self._store.publish(name, spec)
            )
        self.status = "in_progress"

    def record_stage(self, stage: str, fraction: float, p99_ratio: float) -> StageDecision:
        """Apply the guardrail verdict for one completed stage attempt.

        Three verdicts are possible:

        * a finite, in-bounds ratio **advances** the stage;
        * a ``nan`` ratio (the stage digest went missing or stale — a
          controller crash, machines lost mid-measurement) fails safe: the
          stage **retries** while attempts remain, because a guardrail that
          cannot read its own telemetry must neither advance nor convict;
        * a genuine breach — or a ``nan`` with attempts exhausted — **halts**:
          every file is rolled back to the exact baseline version captured by
          :meth:`begin`, regardless of what else was published to the store
          in the meantime.  A rollback target that vanished is recorded in
          ``rollback_errors`` and the remaining files still roll back.
        """
        if self.status != "in_progress":
            raise ClusterError(f"cannot record a stage on a rollout that is {self.status}")
        attempt = self._stage_attempts.get(stage, 0) + 1
        self._stage_attempts[stage] = attempt
        if math.isnan(p99_ratio) and attempt < self._rollout.stage_attempts:
            decision = StageDecision(
                stage=stage,
                fraction=fraction,
                p99_ratio=p99_ratio,
                breached=False,
                action="retry",
                attempt=attempt,
            )
            self.history.append(decision)
            return decision
        breached = self.monitor.breached_ratio(p99_ratio)
        decision = StageDecision(
            stage=stage,
            fraction=fraction,
            p99_ratio=p99_ratio,
            breached=breached,
            action="halt" if breached else "advance",
            attempt=attempt,
        )
        self.history.append(decision)
        if breached:
            for name in sorted(self._entries):
                try:
                    self._push(
                        lambda name=name: self._store.rollback(
                            name, self._baseline_versions[name]
                        )
                    )
                except UnknownVersionError as error:
                    self.rollback_errors.append(error)
            self.status = "halted"
        return decision

    def backoff_buckets(self, stage: str) -> int:
        """Buckets to idle before the next attempt of ``stage``.

        Doubles per retry from ``retry_backoff_buckets``, capped at
        ``retry_backoff_cap_buckets``; a base of 0 retries immediately.
        """
        attempt = self._stage_attempts.get(stage, 1)
        base = self._rollout.retry_backoff_buckets
        if base <= 0:
            return 0
        return min(base * (2 ** (attempt - 1)), self._rollout.retry_backoff_cap_buckets)

    def _push(self, operation):
        """Run one store push, retrying transient :class:`ConfigPushError`\\ s.

        A push that still fails after ``push_attempts`` tries re-raises: at
        that point the store is not flaky, it is gone.
        """
        last: Optional[ConfigPushError] = None
        for _ in range(self._rollout.push_attempts):
            try:
                return operation()
            except ConfigPushError as error:
                last = error
                self.push_failures += 1
        raise last

    def finish(self) -> None:
        """Mark a rollout that survived every stage as completed."""
        if self.status == "in_progress":
            self.status = "completed"

    def active_specs(self, cls: type) -> Dict[str, object]:
        """The configuration currently live for every managed file."""
        return {name: self._store.fetch(name, cls) for name in sorted(self._entries)}
