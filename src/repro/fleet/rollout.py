"""Staged rollout engine: canary -> wave -> fleet with SLO guardrails.

PerfIso reached tens of thousands of machines the way every config change
does in production: a small canary first, progressively wider waves, and an
automatic halt-and-rollback whenever the tail-latency guardrail trips.  The
engine below drives the versioned :class:`~repro.cluster.autopilot.ConfigStore`
— it publishes the baseline and target configurations as explicit versions,
records a decision per stage, and on a guardrail breach restores the exact
baseline version for every file it touched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..cluster.autopilot import ConfigStore
from ..config.schema import RolloutSpec
from ..errors import ClusterError

__all__ = ["GuardrailMonitor", "StageDecision", "StagedRollout"]


@dataclass(frozen=True)
class StageDecision:
    """One stage's guardrail verdict."""

    stage: str
    fraction: float
    #: Worst colocated-to-baseline P99 ratio observed across groups.
    p99_ratio: float
    breached: bool
    action: str  # "advance" | "halt"


class GuardrailMonitor:
    """Compares each group's colocated P99 against its baseline reference."""

    def __init__(self, p99_multiplier: float) -> None:
        if p99_multiplier < 1.0:
            raise ClusterError("guardrail multiplier must be >= 1.0")
        self._multiplier = p99_multiplier

    @property
    def p99_multiplier(self) -> float:
        return self._multiplier

    def ratio(self, measured_p99: float, reference_p99: float) -> float:
        if reference_p99 <= 0.0:
            return 0.0 if measured_p99 <= 0.0 else float("inf")
        return measured_p99 / reference_p99

    def breached_ratio(self, p99_ratio: float) -> bool:
        """The single guardrail verdict every consumer must route through.

        A non-finite ratio fails safe: ``inf`` (measurement against a zero
        reference) breaches because the comparison exceeds any multiplier,
        and ``nan`` (a corrupted signal) breaches because a guardrail that
        cannot read its own telemetry must halt, not silently advance — a
        bare ``ratio > multiplier`` comparison would wave ``nan`` through.
        """
        if math.isnan(p99_ratio):
            return True
        return p99_ratio > self._multiplier

    def breached(self, measured_p99: float, reference_p99: float) -> bool:
        return self.breached_ratio(self.ratio(measured_p99, reference_p99))


class StagedRollout:
    """Drives one staged configuration rollout through a ConfigStore."""

    def __init__(
        self,
        store: ConfigStore,
        rollout: RolloutSpec,
        entries: Mapping[str, Tuple[object, object]],
    ) -> None:
        """``entries`` maps config file name -> (baseline_spec, target_spec)."""
        if not entries:
            raise ClusterError("a rollout needs at least one configuration file")
        self._store = store
        self._rollout = rollout
        self._entries = dict(entries)
        self._baseline_versions: Dict[str, int] = {}
        self._target_versions: Dict[str, int] = {}
        self.status = "pending"  # pending -> in_progress -> completed | halted
        self.history: List[StageDecision] = []
        self.monitor = GuardrailMonitor(rollout.guardrail_p99_multiplier)

    # ---------------------------------------------------------------- wiring
    @property
    def store(self) -> ConfigStore:
        return self._store

    @property
    def stage_fractions(self) -> Tuple[float, ...]:
        return self._rollout.stage_fractions

    def baseline_version(self, name: str) -> int:
        return self._baseline_versions[name]

    def target_version(self, name: str) -> int:
        return self._target_versions[name]

    # ------------------------------------------------------------- lifecycle
    def begin(self) -> None:
        """Publish baseline then target versions for every managed file."""
        if self.status != "pending":
            raise ClusterError(f"rollout already {self.status}")
        for name in sorted(self._entries):
            baseline, target = self._entries[name]
            self._baseline_versions[name] = self._store.publish(name, baseline)
            self._target_versions[name] = self._store.publish(name, target)
        self.status = "in_progress"

    def record_stage(self, stage: str, fraction: float, p99_ratio: float) -> StageDecision:
        """Apply the guardrail verdict for one completed stage.

        On a breach the rollout halts immediately: every file is rolled back
        to the exact baseline version captured by :meth:`begin`, regardless
        of what else was published to the store in the meantime.
        """
        if self.status != "in_progress":
            raise ClusterError(f"cannot record a stage on a rollout that is {self.status}")
        breached = self.monitor.breached_ratio(p99_ratio)
        decision = StageDecision(
            stage=stage,
            fraction=fraction,
            p99_ratio=p99_ratio,
            breached=breached,
            action="halt" if breached else "advance",
        )
        self.history.append(decision)
        if breached:
            for name in sorted(self._entries):
                self._store.rollback(name, self._baseline_versions[name])
            self.status = "halted"
        return decision

    def finish(self) -> None:
        """Mark a rollout that survived every stage as completed."""
        if self.status == "in_progress":
            self.status = "completed"

    def active_specs(self, cls: type) -> Dict[str, object]:
        """The configuration currently live for every managed file."""
        return {name: self._store.fetch(name, cls) for name in sorted(self._entries)}
