"""Fleet scenario builders and their catalog registrations.

Where :mod:`repro.experiments.scenarios` sweeps single-machine colocations,
these scenarios sweep *operations*: rollout staging policies, placement
strategies and fleet sizes.  Each builder returns a
:class:`~repro.config.schema.FleetSpec`; they are registered in the same
scenario matrix as the single-machine catalog under ``kind="fleet"``, so
``python -m repro.experiments.matrix --list`` shows both axes of diversity
and ``python -m repro.fleet --scenario NAME`` runs them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..config.schema import (
    ConfigPushFaultSpec,
    ControllerCrashSpec,
    FaultPlanSpec,
    FleetSpec,
    MachineFaultSpec,
    MachineGroupSpec,
    PlacementSpec,
    RolloutSpec,
)
from ..errors import ConfigError
from ..experiments import matrix

__all__ = [
    "stage_fractions",
    "default_groups",
    "default_fleet_spec",
    "fleet_staged_rollout",
    "fleet_placement_strategies",
    "fleet_rollout_stages",
    "fleet_guardrail_breach",
    "fleet_diurnal_skew",
    "fleet_hyperscale",
    "fleet_chaos_rollout",
]

#: Proportions of the three default row configurations (ML training rows,
#: CPU-bully analytics rows, HDFS storage rows).
DEFAULT_ROW_MIX: Tuple[Tuple[str, float], ...] = (
    ("row-ml", 0.45),
    ("row-analytics", 0.35),
    ("row-storage", 0.20),
)


def stage_fractions(stages: int, canary: float = 0.02) -> Tuple[float, ...]:
    """Geometric canary -> fleet fractions for an ``stages``-stage rollout."""
    if stages < 1:
        raise ConfigError("a rollout needs at least one stage")
    if stages == 1:
        return (1.0,)
    fractions = [
        round(canary ** ((stages - 1 - index) / (stages - 1)), 6)
        for index in range(stages - 1)
    ]
    return tuple(fractions) + (1.0,)


def default_groups(machines: int, phase_spread: float = 0.65) -> Tuple[MachineGroupSpec, ...]:
    """Three heterogeneous row configurations summing to ``machines``."""
    if machines < 3:
        raise ConfigError("the default fleet needs at least three machines")
    analytics = max(1, round(machines * DEFAULT_ROW_MIX[1][1]))
    storage = max(1, round(machines * DEFAULT_ROW_MIX[2][1]))
    ml = machines - analytics - storage
    return (
        MachineGroupSpec(
            name="row-ml",
            machines=ml,
            buffer_cores=8,
            secondary="ml_training",
            phase_offset=0.0,
        ),
        MachineGroupSpec(
            name="row-analytics",
            machines=analytics,
            buffer_cores=8,
            secondary="cpu_bully",
            secondary_threads=24,
            phase_offset=round(phase_spread * 0.5, 6),
        ),
        MachineGroupSpec(
            name="row-storage",
            machines=storage,
            buffer_cores=4,
            secondary="hdfs",
            peak_qps=3200.0,
            trough_qps=1200.0,
            phase_offset=round(phase_spread, 6),
        ),
    )


def default_fleet_spec(
    machines: int = 2000,
    stages: int = 3,
    seed: int = 7,
    target_policy: str = "blind",
    guardrail: float = 1.5,
    strategy: str = "first_fit",
    phase_spread: float = 0.65,
    calibration_qps: Optional[Tuple[float, ...]] = None,
    calibration_duration: Optional[float] = None,
    calibration_warmup: Optional[float] = None,
    bake_buckets: int = 4,
    stage_buckets: int = 4,
    samples_per_machine_bucket: int = 32,
    sample_fraction: float = 1.0,
    min_sampled_machines: int = 256,
    faults: Optional[FaultPlanSpec] = None,
) -> FleetSpec:
    """The canonical heterogeneous fleet, parameterised for CLI and scenarios."""
    overrides = {}
    if calibration_qps is not None:
        overrides["calibration_qps"] = tuple(calibration_qps)
    if calibration_duration is not None:
        overrides["calibration_duration"] = calibration_duration
    if calibration_warmup is not None:
        overrides["calibration_warmup"] = calibration_warmup
    if faults is not None:
        overrides["faults"] = faults
    return FleetSpec(
        groups=default_groups(machines, phase_spread=phase_spread),
        rollout=RolloutSpec(
            stage_fractions=stage_fractions(stages),
            target_policy=target_policy,
            guardrail_p99_multiplier=guardrail,
            bake_buckets=bake_buckets,
            stage_buckets=stage_buckets,
        ),
        placement=PlacementSpec(strategy=strategy),
        samples_per_machine_bucket=samples_per_machine_bucket,
        sample_fraction=sample_fraction,
        min_sampled_machines=min_sampled_machines,
        seed=seed,
        **overrides,
    )


# ----------------------------------------------------------------- catalog
@matrix.scenario(
    "fleet-staged-rollout",
    "Canary -> wave -> fleet PerfIso rollout over a heterogeneous fleet",
    axes={"machines": (600, 2000)},
    tags=("fleet", "production"),
    tier="slow",
    kind="fleet",
)
def fleet_staged_rollout(machines: int = 2000, stages: int = 3, seed: int = 7) -> FleetSpec:
    """The flagship fleet scenario: staged rollout with batch placement."""
    return default_fleet_spec(machines=machines, stages=stages, seed=seed)


@matrix.scenario(
    "fleet-placement-strategies",
    "First/best/worst-fit secondary placement over the same fleet",
    axes={"strategy": ("first_fit", "best_fit", "worst_fit")},
    tags=("fleet", "placement"),
    tier="slow",
    kind="fleet",
)
def fleet_placement_strategies(
    strategy: str = "first_fit", machines: int = 240, seed: int = 7
) -> FleetSpec:
    """How the bin-packing strategy shifts reclaimed capacity and the tail."""
    return default_fleet_spec(machines=machines, seed=seed, strategy=strategy)


@matrix.scenario(
    "fleet-rollout-stages",
    "Big-bang versus progressively staged rollouts of the same change",
    axes={"stages": (1, 2, 4)},
    tags=("fleet", "rollout"),
    tier="slow",
    kind="fleet",
)
def fleet_rollout_stages(stages: int = 3, machines: int = 400, seed: int = 7) -> FleetSpec:
    """One stage is a big bang; more stages trade time for blast radius."""
    return default_fleet_spec(machines=machines, stages=stages, seed=seed)


@matrix.scenario(
    "fleet-guardrail-breach",
    "An unprotected (no-isolation) rollout the SLO guardrail must halt",
    tags=("fleet", "guardrail"),
    tier="fast",
    kind="fleet",
)
def fleet_guardrail_breach(machines: int = 48, seed: int = 7) -> FleetSpec:
    """Ships cpu_policy='none' under a tight guardrail: the canary must fail.

    Every row harvests an unrestricted 48-thread CPU bully — the paper's
    worst case — so the colocated tail collapses and the rollout halts at
    the canary, rolling Autopilot back to the pre-rollout configuration.
    Deliberately tiny (48 machines, short calibration) so the halt-and-
    rollback path runs in the fast test tier and the CI smoke step.
    """
    spec = default_fleet_spec(
        machines=machines,
        stages=3,
        seed=seed,
        target_policy="none",
        guardrail=1.5,
        calibration_qps=(300.0, 900.0),
        calibration_duration=0.5,
        calibration_warmup=0.1,
        bake_buckets=2,
        stage_buckets=2,
        samples_per_machine_bucket=8,
    )
    bullies = tuple(
        dataclasses.replace(group, secondary="cpu_bully", secondary_threads=48)
        for group in spec.groups
    )
    return spec.replace(groups=bullies)


@matrix.scenario(
    "fleet-diurnal-skew",
    "Phase-aligned versus phase-spread diurnal load across the rows",
    axes={"phase_spread": (0.0, 0.65)},
    tags=("fleet", "production"),
    tier="slow",
    kind="fleet",
)
def fleet_diurnal_skew(phase_spread: float = 0.65, machines: int = 300, seed: int = 7) -> FleetSpec:
    """Spread rows' load peaks and more capacity is reclaimable at any instant."""
    return default_fleet_spec(machines=machines, seed=seed, phase_spread=phase_spread)


@matrix.scenario(
    "fleet-hyperscale",
    "Sampled hyperscale staged rollout: tens of thousands of machines in minutes",
    axes={"machines": (10_000, 50_000)},
    tags=("fleet", "hyperscale"),
    tier="slow",
    kind="fleet",
)
def fleet_hyperscale(machines: int = 50_000, stages: int = 3, seed: int = 7) -> FleetSpec:
    """The ROADMAP's 50k-machine fleet, runnable on a laptop.

    Sampled mode: per group and colocation class, 256+ machines (2 %) run
    the full per-machine inverse-CDF draw while the rest contribute their
    closed-form expected histograms — group P99s stay within digest
    tolerance of exact mode (pinned by the cross-validation tests) at a
    fraction of the drawing cost.  Calibration is deliberately short; it is
    identical across fleet sizes and cache-shared with the other fleet
    scenarios using the same points.
    """
    return default_fleet_spec(
        machines=machines,
        stages=stages,
        seed=seed,
        calibration_qps=(1200.0, 2400.0),
        calibration_duration=1.0,
        calibration_warmup=0.2,
        bake_buckets=3,
        stage_buckets=3,
        sample_fraction=0.02,
        min_sampled_machines=256,
    )


@matrix.scenario(
    "fleet-chaos-rollout",
    "A healthy rollout surviving machine crashes, a controller crash and flaky pushes",
    tags=("fleet", "chaos"),
    tier="fast",
    kind="fleet",
)
def fleet_chaos_rollout(machines: int = 48, seed: int = 7) -> FleetSpec:
    """The crash-hardened control plane under fire, end to end.

    A viable (blind-isolation) rollout runs while the fault plan injects
    machine crash/restart churn, a coordinator crash inside stage 1's
    measurement window (its digest is lost, so the stage fails safe to a
    retry, idles out the backoff and re-measures) and transient config-push
    failures absorbed by push retries.  Sized like
    ``fleet-guardrail-breach`` so the whole recovery path runs in the fast
    test tier and the CI chaos smoke step.
    """
    faults = FaultPlanSpec(
        machines=MachineFaultSpec(crash_rate_per_hour=40.0, mean_downtime=60.0),
        controller_crash=ControllerCrashSpec(at=150.0, recovery_delay=5.0),
        config_push=ConfigPushFaultSpec(failure_rate=0.5, max_failures=2),
    )
    return default_fleet_spec(
        machines=machines,
        stages=3,
        seed=seed,
        target_policy="blind",
        guardrail=1.5,
        calibration_qps=(300.0, 900.0),
        calibration_duration=0.5,
        calibration_warmup=0.1,
        bake_buckets=2,
        stage_buckets=2,
        samples_per_machine_bucket=8,
        faults=faults,
    )


matrix.register(
    matrix.Scenario(
        name="fleet-scale-sweep",
        description="The staged rollout swept from one cluster to fleet scale",
        builder=fleet_staged_rollout,
        axes=(("machines", (650, 2000, 5000)),),
        tags=("fleet", "sweep"),
        tier="slow",
        kind="fleet",
    )
)
