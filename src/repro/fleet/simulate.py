"""Sharded execution of a fleet spec: bake, staged rollout, accounting.

The simulation composes the other fleet modules:

1. :class:`~repro.fleet.model.FleetModel` calibrates every machine group
   through the shared experiment runner (content-addressed, so repeat runs
   and overlapping fleets are cache hits);
2. the placement scheduler packs batch demand onto the stage's enabled
   machines under the calibrated reclaimable-capacity estimates;
3. machine groups are cut into fixed-size shards and fanned out through
   ``ExperimentRunner.map`` — each shard draws its machines' latencies by
   inverse-CDF sampling and returns *mergeable digests*, never raw samples;
4. the staged rollout engine advances canary -> wave -> fleet, halting and
   rolling the Autopilot configuration back on a guardrail breach.

Everything downstream of the spec is deterministic: shard boundaries and RNG
seeds depend only on the spec, so serial runs, N-worker runs and cache-served
repeats produce byte-identical results.
"""

from __future__ import annotations

import math
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.autopilot import Autopilot, ManagedService
from ..config.schema import FleetSpec, MachineGroupSpec, PerfIsoSpec, BlindIsolationSpec
from ..config.validation import validate_fleet
from ..faults.fleet import FaultyConfigStore, FleetFaultTimeline, ShardFaultPlan
from ..metrics.latency import LatencyDigest
from ..units import to_millis
from .accounting import FleetResult, StageAccount
from .model import (
    FleetModel,
    GroupCalibration,
    ModeCalibration,
    blend_curve,
    closed_form_histogram,
    mode_curve_matrix,
    mode_scalars,
    quantile_grid,
    stable_seed,
)
from .placement import MachineCapacity, PlacementDemand, PlacementPlan, plan_placement
from .rollout import StagedRollout

__all__ = [
    "FleetShardTask",
    "FleetShardResult",
    "FleetSimulation",
    "build_demands",
    "sampled_positions",
]

#: Per-machine multiplicative latency skew (hardware generations, daemons).
MACHINE_SKEW_SIGMA = 0.03


@dataclass(frozen=True)
class FleetShardTask:
    """One shard of one group for one stage — the unit of fan-out and caching."""

    stage: str
    group: str
    shard_index: int
    seed: int
    logical_cores: int
    #: Per-class sampling rates.  Either class may be raised above the spec
    #: rate by the per-bucket sample floor so small canary (colocated) or
    #: small reference (baseline) classes still yield a stable P99.
    samples_per_machine: int
    colocated_samples_per_machine: int
    bucket_seconds: float
    loads: Tuple[float, ...]
    #: Per machine in the shard: cores of placed batch demand (0 = baseline).
    placed_cores: Tuple[int, ...]
    baseline: ModeCalibration
    colocated: ModeCalibration
    #: Hyperscale sampling: shard-relative indices of the machines that run
    #: the full per-machine inverse-CDF draw.  ``None`` (exact mode) draws
    #: every machine; any other value makes the remaining machines contribute
    #: their closed-form expected histogram instead.
    sampled: Optional[Tuple[int, ...]] = None
    #: Fault timeline for this shard's machines over this task's buckets
    #: (``None`` = healthy).  Omitted from the spec hash while unset so
    #: fault-free tasks keep their exact historical cache keys (the metadata
    #: key mirrors :data:`repro.runtime.spec_hash.OMIT_IF_DEFAULT`).
    faults: Optional[ShardFaultPlan] = field(
        default=None, metadata={"repro_hash_omit_if_default": True}
    )


@dataclass
class FleetShardResult:
    """Mergeable per-bucket summaries plus exact accounting tallies."""

    group: str
    stage: str
    shard_index: int
    machines: int
    baseline_digests: List[LatencyDigest]
    colocated_digests: List[LatencyDigest]
    reclaimed_core_hours: float
    #: Machine-hours of batch work completed, normalised to one machine
    #: running its secondary at the full calibrated rate for one hour (tenant
    #: progress units differ per kind, so raw progress cannot be summed).
    batch_machine_hours: float


def _simulate_shard(task: FleetShardTask) -> FleetShardResult:
    """Worker entry point: sample one shard's machines across the buckets.

    The per-machine-bucket math is vectorised over the whole
    ``(buckets, machines, samples)`` block: every uniform for the shard is
    drawn in one call (in the exact stream order the historical per-bucket
    loop consumed, so exact mode stays byte-identical to it), inverse-CDF
    mapped per bucket, then binned into per-bucket
    :class:`~repro.metrics.latency.LatencyDigest`\\ s through one batched
    ``searchsorted``/``bincount`` pass and the ``add_counts`` fast path.

    In sampled (hyperscale) mode only ``task.sampled`` machines are drawn;
    the rest contribute :func:`~repro.fleet.model.closed_form_histogram`
    expected counts from the calibrated row model.

    A fault plan (``task.faults``) is folded in *after* the main draw, so the
    uniform stream layout — and therefore every healthy machine's samples —
    is identical with and without faults: down machines' samples are excluded
    from the per-bucket digests (and the closed-form totals count only up
    machines), degraded machines' samples are scaled by the slowdown during
    the degraded buckets (unsampled degraded machines contribute the closed
    form of the slowed curve), and down machines earn no batch capacity.
    """
    machines = len(task.placed_cores)
    buckets = len(task.loads)
    rng = np.random.default_rng(
        stable_seed("fleet-shard", task.seed, task.group, task.stage, task.shard_index)
    )
    skew = rng.lognormal(mean=0.0, sigma=MACHINE_SKEW_SIGMA, size=machines)
    placed = np.asarray(task.placed_cores, dtype=np.float64)
    colocated_all = np.flatnonzero(placed > 0)
    baseline_all = np.flatnonzero(placed == 0)
    if task.sampled is None:
        baseline_index, colocated_index = baseline_all, colocated_all
    else:
        member = np.zeros(machines, dtype=bool)
        if task.sampled:
            member[np.asarray(task.sampled, dtype=np.intp)] = True
        baseline_index = baseline_all[member[baseline_all]]
        colocated_index = colocated_all[member[colocated_all]]
    grid = quantile_grid()
    prototype = LatencyDigest()
    edges = prototype.edges
    cells = prototype.counts_size

    modes = (
        (task.baseline, baseline_index, task.samples_per_machine, baseline_all),
        (
            task.colocated,
            colocated_index,
            task.colocated_samples_per_machine,
            colocated_all,
        ),
    )
    faults = task.faults
    if faults is not None:
        down_arrays = [np.asarray(faults.down[b], dtype=np.intp) for b in range(buckets)]
        degraded_array = np.asarray(faults.degraded, dtype=np.intp)
        degraded_bucket_set = frozenset(faults.degraded_buckets)
        any_down = any(faults.down)
    # Per-bucket blended quantile curves, hoisted out of the sampling math
    # (the historical loop re-converted every calibration tuple per bucket).
    bucket_curves = tuple(
        [blend_curve(mode_curve_matrix(calibration), calibration, qps) for qps in task.loads]
        for calibration, _, _, _ in modes
    )

    # One flat draw covers every (bucket, mode, machine, sample) uniform; the
    # layout below slices it back bucket-major, baseline before colocated —
    # the order the per-bucket loop consumed the stream in.
    draw_width = sum(index.size * per for _, index, per, _ in modes)
    flat = rng.random(buckets * draw_width).reshape(buckets, draw_width)
    split = modes[0][1].size * modes[0][2]
    mode_uniforms = (flat[:, :split], flat[:, split:])

    per_mode_digests: Tuple[List[LatencyDigest], List[LatencyDigest]] = ([], [])
    for which, (calibration, index, per_machine, class_all) in enumerate(modes):
        curves = bucket_curves[which]
        drawn = index.size
        drawn_alive: Optional[np.ndarray] = None
        if drawn:
            samples = np.empty((buckets, drawn, per_machine), dtype=np.float64)
            uniforms = mode_uniforms[which].reshape(buckets, drawn, per_machine)
            for bucket in range(buckets):
                samples[bucket] = np.interp(uniforms[bucket], grid, curves[bucket])
            samples *= skew[index][None, :, None]
            if faults is not None and degraded_array.size and degraded_bucket_set:
                straggler_rows = np.flatnonzero(np.isin(index, degraded_array))
                if straggler_rows.size:
                    for bucket in faults.degraded_buckets:
                        samples[bucket, straggler_rows, :] *= faults.slowdown
            if faults is None or not any_down:
                block = samples.reshape(buckets, -1)
                indices = np.searchsorted(edges, block, side="right")
                offsets = (np.arange(buckets) * cells)[:, None]
                counts = np.bincount(
                    (indices + offsets).ravel(), minlength=buckets * cells
                ).reshape(buckets, cells)
                sums = block.sum(axis=1)
                maxima = block.max(axis=1)
            else:
                # Crash episodes: bin per bucket so each bucket's down
                # machines contribute nothing to its digest.
                counts = np.zeros((buckets, cells), dtype=np.int64)
                sums = np.zeros(buckets, dtype=np.float64)
                maxima = np.zeros(buckets, dtype=np.float64)
                drawn_alive = np.zeros(buckets, dtype=np.intp)
                for bucket in range(buckets):
                    keep = np.ones(drawn, dtype=bool)
                    keep[np.flatnonzero(np.isin(index, down_arrays[bucket]))] = False
                    block = samples[bucket][keep].ravel()
                    drawn_alive[bucket] = block.size
                    if block.size:
                        counts[bucket] = np.bincount(
                            np.searchsorted(edges, block, side="right"), minlength=cells
                        )
                        sums[bucket] = block.sum()
                        maxima[bucket] = block.max()
        unsampled = class_all.size - drawn
        unsampled_positions = (
            np.setdiff1d(class_all, index) if faults is not None and unsampled else None
        )
        for bucket in range(buckets):
            digest = LatencyDigest()
            if drawn and (drawn_alive is None or drawn_alive[bucket]):
                digest.add_counts(
                    counts[bucket], float(sums[bucket]), float(maxima[bucket])
                )
            if unsampled:
                if faults is None:
                    closed_counts, closed_sum, closed_max = closed_form_histogram(
                        curves[bucket], edges, unsampled * per_machine
                    )
                    digest.add_counts(closed_counts, closed_sum, closed_max)
                else:
                    # Closed-form correction: only *up* unsampled machines
                    # contribute, degraded ones through the slowed curve.
                    up = unsampled_positions[
                        ~np.isin(unsampled_positions, down_arrays[bucket])
                    ]
                    straggling = (
                        int(np.isin(up, degraded_array).sum())
                        if bucket in degraded_bucket_set
                        else 0
                    )
                    healthy = up.size - straggling
                    if healthy:
                        digest.add_counts(
                            *closed_form_histogram(
                                curves[bucket], edges, healthy * per_machine
                            )
                        )
                    if straggling:
                        digest.add_counts(
                            *closed_form_histogram(
                                curves[bucket] * faults.slowdown,
                                edges,
                                straggling * per_machine,
                            )
                        )
            per_mode_digests[which].append(digest)
    baseline_digests, colocated_digests = per_mode_digests

    # Capacity accounting is exact for every machine regardless of sampling:
    # it depends only on placed cores and the calibrated CPU fractions.
    reclaimed = 0.0
    progress = 0.0
    if colocated_all.size:
        for bucket, qps in enumerate(task.loads):
            _, secondary_cpu, _ = mode_scalars(task.colocated, qps)
            granted = secondary_cpu * task.logical_cores
            active = colocated_all
            if faults is not None and down_arrays[bucket].size:
                # A machine down for the bucket reclaims nothing; its batch
                # work is simply lost (no failover model at this tier).
                active = colocated_all[~np.isin(colocated_all, down_arrays[bucket])]
            effective = np.minimum(placed[active], granted)
            reclaimed += float(effective.sum()) * task.bucket_seconds / 3600.0
            if granted > 0.0:
                progress += float((effective / granted).sum()) * task.bucket_seconds / 3600.0

    return FleetShardResult(
        group=task.group,
        stage=task.stage,
        shard_index=task.shard_index,
        machines=machines,
        baseline_digests=baseline_digests,
        colocated_digests=colocated_digests,
        reclaimed_core_hours=reclaimed,
        batch_machine_hours=progress,
    )


def build_demands(spec: FleetSpec, calibrations: Dict[str, GroupCalibration]) -> List[PlacementDemand]:
    """The batch queue awaiting placement, derived deterministically.

    Explicit ``placement.job_cores`` wins — including ``()``, which means a
    deliberately empty queue (a baseline-only fleet).  Only the unset default
    (``None``) targets ``demand_fraction`` of the fleet's estimated
    reclaimable cores in jobs of ``job_cores_each``.
    """
    if spec.placement.job_cores is not None:
        sizes: Sequence[int] = spec.placement.job_cores
    else:
        total_reclaimable = sum(
            group.machines * calibrations[group.name].reclaimable_cores(group.buffer_cores)
            for group in spec.groups
        )
        target = int(total_reclaimable * spec.placement.demand_fraction)
        sizes = (spec.placement.job_cores_each,) * (target // spec.placement.job_cores_each)
    return [
        PlacementDemand(name=f"batch-{index:06d}", cores=cores)
        for index, cores in enumerate(sizes)
    ]


def sampled_positions(
    spec: FleetSpec,
    group: MachineGroupSpec,
    names: Sequence[str],
    placed_by_machine: Dict[str, int],
) -> Optional[FrozenSet[int]]:
    """The deterministically chosen machines of ``group`` that run the full
    inverse-CDF draw in sampled mode (``None`` in exact mode = everyone).

    Machines are picked evenly strided *per colocation class* (baseline vs
    colocated), so a small canary class is always fully drawn no matter how
    aggressive ``sample_fraction`` is, and the choice depends only on the
    spec and the placement plan — never on the worker count.
    """
    if spec.sample_fraction >= 1.0:
        return None
    chosen: set = set()
    classes = ([], [])  # baseline positions, colocated positions
    for position, name in enumerate(names):
        classes[1 if placed_by_machine.get(name, 0) > 0 else 0].append(position)
    for positions in classes:
        count = len(positions)
        if not count:
            continue
        wanted = max(
            math.ceil(spec.sample_fraction * count), min(spec.min_sampled_machines, count)
        )
        if wanted >= count:
            chosen.update(positions)
        else:
            picks = np.unique(np.round(np.linspace(0, count - 1, wanted)).astype(int))
            chosen.update(positions[pick] for pick in picks)
    return frozenset(chosen)


class FleetSimulation:
    """Operates one fleet spec end to end and returns a :class:`FleetResult`.

    ``telemetry`` (a :class:`~repro.telemetry.stream.TelemetrySession`) makes
    the rollout observable while it runs: per-bucket fleet snapshots (offered
    vs served QPS, occupancy, idle buffer, P99 vs guardrail) plus spans
    around every rollout stage and shard fan-out.  The fleet tier is
    analytic, so snapshots are derived in this process from the merged
    digests — the shard fan-out itself is untouched and results are
    byte-identical with telemetry on or off.
    """

    def __init__(self, spec: FleetSpec, runner=None, telemetry=None) -> None:
        validate_fleet(spec)
        self._spec = spec
        self._runner = runner
        self._telemetry = telemetry
        self.autopilot = Autopilot()
        self.rollout: Optional[StagedRollout] = None
        self.fault_timeline: Optional[FleetFaultTimeline] = None
        self.rollout_service: Optional[ManagedService] = None

    # ---------------------------------------------------------------- wiring
    def _config_entries(self) -> Dict[str, Tuple[PerfIsoSpec, PerfIsoSpec]]:
        """Per group: the pre-rollout (disabled) and target PerfIso configs."""
        entries: Dict[str, Tuple[PerfIsoSpec, PerfIsoSpec]] = {}
        for group in self._spec.groups:
            baseline = PerfIsoSpec(enabled=False)
            target = PerfIsoSpec(
                cpu_policy=self._spec.rollout.target_policy,
                blind=BlindIsolationSpec(buffer_cores=group.buffer_cores),
            )
            entries[f"perfiso-{group.name}.json"] = (baseline, target)
        return entries

    # -------------------------------------------------------------- execution
    def run(self) -> FleetResult:
        from ..runtime.runner import default_runner
        from ..runtime.spec_hash import versioned_namespace

        spec = self._spec
        runner = self._runner if self._runner is not None else default_runner()
        model = FleetModel(spec)
        calibrations = model.calibrate(runner)
        demands = build_demands(spec, calibrations)

        # ---------------------------------------------------- fault timeline
        # An absent or all-disabled plan leaves every path below untouched:
        # no timeline, no store wrapper, no crash service — byte-identical
        # to a spec with no fault plan at all.
        fault_plan = (
            spec.faults if spec.faults is not None and not spec.faults.is_noop else None
        )
        timeline: Optional[FleetFaultTimeline] = None
        if fault_plan is not None and (
            (fault_plan.machines is not None and fault_plan.machines.enabled)
            or (fault_plan.degraded is not None and fault_plan.degraded.enabled)
        ):
            timeline = FleetFaultTimeline(fault_plan, spec)
        self.fault_timeline = timeline
        store = self.autopilot.config
        if (
            fault_plan is not None
            and fault_plan.config_push is not None
            and fault_plan.config_push.enabled
        ):
            store = FaultyConfigStore(store, fault_plan.config_push, seed=spec.seed)
        crash_spec = (
            fault_plan.controller_crash
            if fault_plan is not None
            and fault_plan.controller_crash is not None
            and fault_plan.controller_crash.enabled
            else None
        )
        crash_pending = crash_spec is not None
        # The rollout coordinator as an Autopilot-managed service: its state
        # (rollout cursor) is checkpointed before every stage attempt, and a
        # controller-crash fault restarts it through the same
        # checkpoint/crash_and_recover path a production PerfIso instance
        # recovers through.
        controller_state: Dict[str, object] = {"stage": "bake", "bucket_cursor": 0}
        self.rollout_service = None
        if crash_spec is not None:
            self.rollout_service = ManagedService(
                name="rollout-controller",
                machine="fleet-coordinator",
                start=lambda: None,
                stop=lambda: None,
                save_state=lambda: dict(controller_state),
                restore_state=controller_state.update,
            )
            self.autopilot.register(self.rollout_service)
            self.autopilot.start("fleet-coordinator", "rollout-controller")

        rollout = StagedRollout(store, spec.rollout, self._config_entries())
        self.rollout = rollout
        rollout.begin()

        namespace = versioned_namespace("fleet-shard")
        bucket_cursor = 0
        telemetry = self._telemetry
        tracer = None
        if telemetry is not None:
            # The analytic tier's "now" is the bucket cursor in simulated
            # seconds; spans and snapshots share it.
            tracer = telemetry.tracer(lambda: bucket_cursor * spec.bucket_seconds)
        result = FleetResult(
            machines=spec.total_machines,
            groups=len(spec.groups),
            status="completed",
            stages_completed=0,
            stages_total=len(spec.rollout.stage_fractions),
            placement_strategy=spec.placement.strategy,
            target_policy=spec.rollout.target_policy,
        )

        def run_buckets(
            stage: str, buckets: int, placed_by_machine: Dict[str, int]
        ) -> Tuple[Dict[str, Dict[str, List[LatencyDigest]]], float, float]:
            """Fan one stage's shards out and merge their digests per bucket."""
            nonlocal bucket_cursor
            tasks: List[FleetShardTask] = []
            group_loads: Dict[str, Tuple[float, ...]] = {}
            colocated_counts: Dict[str, int] = {}
            window_start_time = bucket_cursor * spec.bucket_seconds
            for group in spec.groups:
                names = model.machine_names(group)
                # One arrival model per group per stage (load_at would build
                # a fresh one per bucket).
                diurnal = model.arrival_model(group)
                loads = tuple(
                    diurnal.rate_at((bucket_cursor + index) * spec.bucket_seconds)
                    for index in range(buckets)
                )
                calibration = calibrations[group.name]
                sampled = sampled_positions(spec, group, names, placed_by_machine)
                colocated_positions = [
                    index
                    for index, name in enumerate(names)
                    if placed_by_machine.get(name, 0) > 0
                ]
                group_loads[group.name] = loads
                colocated_counts[group.name] = len(colocated_positions)
                # The per-bucket sample floor covers *both* guardrail sides,
                # spread over the machines that actually draw (everyone in
                # exact mode): canary stages have few colocated machines, and
                # since stages compare against the concurrent baseline, late
                # stages can equally leave only a handful of baseline
                # machines as the reference.  A P99 estimated from a handful
                # of draws on either side is noise, not a guardrail signal.
                # At fleet scale both floors are inactive.
                drawn_colocated = (
                    len(colocated_positions)
                    if sampled is None
                    else sum(1 for position in colocated_positions if position in sampled)
                )
                drawn_baseline = (
                    len(names) - len(colocated_positions)
                    if sampled is None
                    else len(sampled) - drawn_colocated
                )
                colocated_rate = spec.samples_per_machine_bucket
                if drawn_colocated:
                    floor = -(-spec.min_colocated_samples_per_bucket // drawn_colocated)
                    colocated_rate = max(colocated_rate, floor)
                baseline_rate = spec.samples_per_machine_bucket
                if drawn_baseline:
                    floor = -(-spec.min_colocated_samples_per_bucket // drawn_baseline)
                    baseline_rate = max(baseline_rate, floor)
                for shard_index, start, stop in model.shards(group):
                    placed = tuple(
                        placed_by_machine.get(name, 0) for name in names[start:stop]
                    )
                    shard_sampled = (
                        None
                        if sampled is None
                        else tuple(
                            sorted(
                                position - start
                                for position in sampled
                                if start <= position < stop
                            )
                        )
                    )
                    shard_faults = (
                        timeline.shard_plan(
                            group=group.name,
                            start=start,
                            stop=stop,
                            start_time=window_start_time,
                            bucket_seconds=spec.bucket_seconds,
                            buckets=buckets,
                        )
                        if timeline is not None
                        else None
                    )
                    tasks.append(
                        FleetShardTask(
                            stage=stage,
                            group=group.name,
                            shard_index=shard_index,
                            seed=spec.seed,
                            logical_cores=group.machine.logical_cores,
                            samples_per_machine=baseline_rate,
                            colocated_samples_per_machine=colocated_rate,
                            bucket_seconds=spec.bucket_seconds,
                            loads=loads,
                            placed_cores=placed,
                            baseline=calibration.baseline,
                            colocated=calibration.colocated,
                            sampled=shard_sampled,
                            faults=shard_faults,
                        )
                    )
            if tracer is not None:
                with tracer.span(
                    "fleet.shards", stage=stage, shards=len(tasks), buckets=buckets
                ):
                    shard_results = runner.map(
                        _simulate_shard,
                        [(task,) for task in tasks],
                        cache_namespace=namespace,
                    )
            else:
                shard_results = runner.map(
                    _simulate_shard, [(task,) for task in tasks], cache_namespace=namespace
                )
            start_bucket = bucket_cursor
            bucket_cursor += buckets
            merged: Dict[str, Dict[str, List[LatencyDigest]]] = {
                group.name: {
                    "baseline": [LatencyDigest() for _ in range(buckets)],
                    "colocated": [LatencyDigest() for _ in range(buckets)],
                }
                for group in spec.groups
            }
            reclaimed = 0.0
            progress = 0.0
            for shard in shard_results:
                for bucket in range(buckets):
                    merged[shard.group]["baseline"][bucket].merge(shard.baseline_digests[bucket])
                    merged[shard.group]["colocated"][bucket].merge(shard.colocated_digests[bucket])
                reclaimed += shard.reclaimed_core_hours
                progress += shard.batch_machine_hours
                result.machine_buckets += shard.machines * buckets
            if telemetry is not None:
                self._publish_buckets(
                    telemetry,
                    stage,
                    start_bucket,
                    buckets,
                    group_loads,
                    colocated_counts,
                    calibrations,
                    merged,
                    rollout,
                )
            return merged, reclaimed, progress

        # ------------------------------------------------------ baseline bake
        bake_buckets = spec.rollout.bake_buckets
        if tracer is not None:
            with tracer.span(
                "rollout.stage", stage="bake", fraction=0.0, decision="reference"
            ):
                bake_merged, _, _ = run_buckets("bake", bake_buckets, {})
        else:
            bake_merged, _, _ = run_buckets("bake", bake_buckets, {})
        reference_p99: Dict[str, float] = {}
        bake_digest = LatencyDigest()
        for group in spec.groups:
            group_digest = LatencyDigest.merged(bake_merged[group.name]["baseline"])
            reference_p99[group.name] = group_digest.percentile(99.0)
            bake_digest.merge(group_digest)
        result.baseline_digest.merge(bake_digest)
        result.stages.append(
            StageAccount(
                stage="bake",
                fraction=0.0,
                buckets=bake_buckets,
                machines_enabled=0,
                colocated_machines=0,
                placed_jobs=0,
                unplaced_jobs=len(demands),
                baseline_p99_ms=to_millis(bake_digest.percentile(99.0)),
                colocated_p99_ms=0.0,
                p99_ratio=0.0,
                decision="reference",
                reclaimed_core_hours=0.0,
                batch_machine_hours=0.0,
                slo_violation_minutes=0.0,
            )
        )

        # ----------------------------------------------------- rollout stages
        for stage_index, fraction in enumerate(spec.rollout.stage_fractions):
            stage = f"stage-{stage_index + 1}"
            capacities: List[MachineCapacity] = []
            machines_enabled = 0
            for group in spec.groups:
                enabled = model.enabled_count(group, fraction)
                machines_enabled += enabled
                reclaimable = calibrations[group.name].reclaimable_cores(group.buffer_cores)
                names = model.machine_names(group)[:enabled]
                capacities.extend(
                    MachineCapacity(machine=name, cores=reclaimable) for name in names
                )
            plan: PlacementPlan = plan_placement(capacities, demands, spec.placement.strategy)
            placed_by_machine = plan.placed_cores_by_machine()

            # Churn semantics: each iteration is one *attempt* of the stage.
            # A lost stage digest (controller crash inside the measurement
            # window) fails safe to a "retry" decision, idles out the capped
            # backoff, and re-measures; a genuine breach (or exhausted
            # attempts) halts as before.  Healthy rollouts run exactly one
            # attempt per stage and take their historical path verbatim.
            while True:
                stage_stack = ExitStack()
                stage_span = None
                if tracer is not None:
                    stage_span = stage_stack.enter_context(
                        tracer.span("rollout.stage", stage=stage, fraction=fraction)
                    )
                if self.rollout_service is not None:
                    controller_state["stage"] = stage
                    controller_state["bucket_cursor"] = bucket_cursor
                    self.autopilot.checkpoint("fleet-coordinator", "rollout-controller")
                window_start = bucket_cursor * spec.bucket_seconds

                merged, reclaimed, progress = run_buckets(
                    stage, spec.rollout.stage_buckets, placed_by_machine
                )
                window_end = bucket_cursor * spec.bucket_seconds

                stage_baseline = LatencyDigest()
                stage_colocated = LatencyDigest()
                worst_ratio = 0.0
                violation_minutes = 0.0
                for group in spec.groups:
                    group_colocated = LatencyDigest.merged(merged[group.name]["colocated"])
                    group_baseline = LatencyDigest.merged(merged[group.name]["baseline"])
                    stage_baseline.merge(group_baseline)
                    stage_colocated.merge(group_colocated)
                    # Guardrail reference: the *concurrent* baseline machines
                    # of the same stage, so colocated and reference P99s are
                    # always measured at the same diurnal phase.  (Comparing
                    # against the bake-time snapshot let a stage landing on
                    # the diurnal peak breach against a trough-time reference
                    # with zero isolation effect.)  The bake reference only
                    # remains as the fallback for a stage that left no
                    # baseline machines.
                    reference = (
                        group_baseline.percentile(99.0)
                        if group_baseline.count
                        else reference_p99[group.name]
                    )
                    if group_colocated.count:
                        ratio = rollout.monitor.ratio(group_colocated.percentile(99.0), reference)
                        worst_ratio = max(worst_ratio, ratio)
                    for bucket, bucket_digest in enumerate(merged[group.name]["colocated"]):
                        bucket_baseline = merged[group.name]["baseline"][bucket]
                        bucket_reference = (
                            bucket_baseline.percentile(99.0)
                            if bucket_baseline.count
                            else reference
                        )
                        if bucket_digest.count and rollout.monitor.breached(
                            bucket_digest.percentile(99.0), bucket_reference
                        ):
                            violation_minutes += spec.bucket_seconds / 60.0
                result.baseline_digest.merge(stage_baseline)
                result.colocated_digest.merge(stage_colocated)

                if crash_pending and window_start <= crash_spec.at < window_end:
                    # The coordinating controller died inside this attempt's
                    # measurement window: Autopilot restarts it from its last
                    # checkpoint, but the attempt's guardrail digest is gone
                    # — the verdict must fail safe, not advance on thin air.
                    crash_pending = False
                    self.autopilot.crash_and_recover("fleet-coordinator", "rollout-controller")
                    worst_ratio = float("nan")

                decision = rollout.record_stage(stage, fraction, worst_ratio)
                if stage_span is not None:
                    stage_span.attributes["decision"] = decision.action
                    stage_span.attributes["attempt"] = decision.attempt
                    stage_span.attributes["p99_ratio"] = (
                        round(worst_ratio, 4) if math.isfinite(worst_ratio) else None
                    )
                stage_stack.close()
                result.stages.append(
                    StageAccount(
                        stage=stage,
                        fraction=fraction,
                        buckets=spec.rollout.stage_buckets,
                        machines_enabled=machines_enabled,
                        colocated_machines=len(placed_by_machine),
                        placed_jobs=plan.placed_jobs,
                        unplaced_jobs=len(plan.unplaced),
                        baseline_p99_ms=to_millis(stage_baseline.percentile(99.0)),
                        colocated_p99_ms=to_millis(stage_colocated.percentile(99.0)),
                        p99_ratio=worst_ratio,
                        decision=decision.action,
                        reclaimed_core_hours=reclaimed,
                        batch_machine_hours=progress,
                        slo_violation_minutes=violation_minutes,
                    )
                )
                if decision.action == "retry":
                    bucket_cursor += rollout.backoff_buckets(stage)
                    continue
                break
            if decision.breached:
                result.status = "halted"
                break
            result.stages_completed += 1

        rollout.finish()
        result.active_config_versions = {
            name: self.autopilot.config.active_version(name)
            for name in sorted(self._config_entries())
        }
        return result

    # -------------------------------------------------------------- telemetry
    def _publish_buckets(
        self,
        telemetry,
        stage: str,
        start_bucket: int,
        buckets: int,
        group_loads: Dict[str, Tuple[float, ...]],
        colocated_counts: Dict[str, int],
        calibrations: Dict[str, GroupCalibration],
        merged: Dict[str, Dict[str, List[LatencyDigest]]],
        rollout: StagedRollout,
    ) -> None:
        """One snapshot per simulated bucket, derived from merged digests.

        Occupancy and the idle buffer come from the calibrated CPU fractions
        (:func:`~repro.fleet.model.mode_scalars`) at each bucket's diurnal
        load; the analytic tier models no query drops, so served QPS equals
        offered QPS by construction.  ``None`` marks a side with no samples
        (e.g. colocated P99 during the bake).
        """
        spec = self._spec
        for bucket in range(buckets):
            offered = 0.0
            busy_cores = 0.0
            idle_buffer = 0.0
            total_cores = 0.0
            bucket_baseline = LatencyDigest()
            bucket_colocated = LatencyDigest()
            for group in spec.groups:
                calibration = calibrations[group.name]
                qps = group_loads[group.name][bucket]
                cores = group.machine.logical_cores
                colocated = colocated_counts[group.name]
                offered += qps * group.machines
                busy_base, _, _ = mode_scalars(calibration.baseline, qps)
                busy_col, secondary_cpu, _ = mode_scalars(calibration.colocated, qps)
                busy_cores += (
                    (group.machines - colocated) * busy_base
                    + colocated * (busy_col + secondary_cpu)
                ) * cores
                idle_buffer += colocated * max(0.0, 1.0 - busy_col - secondary_cpu) * cores
                total_cores += group.machines * cores
                bucket_baseline.merge(merged[group.name]["baseline"][bucket])
                bucket_colocated.merge(merged[group.name]["colocated"][bucket])
            baseline_p99 = (
                bucket_baseline.percentile(99.0) if bucket_baseline.count else None
            )
            colocated_p99 = (
                bucket_colocated.percentile(99.0) if bucket_colocated.count else None
            )
            ratio = None
            if baseline_p99 is not None and colocated_p99 is not None:
                candidate = rollout.monitor.ratio(colocated_p99, baseline_p99)
                if math.isfinite(candidate):
                    ratio = candidate
            metrics = {
                "fleet.offered_qps": offered,
                "fleet.served_qps": offered,
                "fleet.occupancy": busy_cores / total_cores if total_cores else 0.0,
                "fleet.idle_buffer_cores": idle_buffer,
                "fleet.machines_colocated": float(sum(colocated_counts.values())),
                "fleet.baseline_p99_ms": (
                    to_millis(baseline_p99) if baseline_p99 is not None else None
                ),
                "fleet.colocated_p99_ms": (
                    to_millis(colocated_p99) if colocated_p99 is not None else None
                ),
                "fleet.p99_ratio": ratio,
                "fleet.guardrail_ratio": rollout.monitor.p99_multiplier,
            }
            telemetry.writer.write_snapshot(
                (start_bucket + bucket) * spec.bucket_seconds, metrics, label=stage
            )
