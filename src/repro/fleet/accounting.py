"""Fleet-wide capacity-reclamation accounting.

The business case for PerfIso is an accounting statement: how many core-hours
of otherwise-idle capacity were handed to batch jobs, how much batch work got
done, and how many SLO-violation minutes the fleet paid for it.  Machine
shards report mergeable latency digests plus exact core-hour tallies; this
module folds them into per-stage and fleet-level totals, so no raw latency
sample ever crosses a shard boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..metrics.latency import LatencyDigest
from ..units import to_millis

__all__ = ["StageAccount", "FleetResult"]


@dataclass
class StageAccount:
    """Everything measured during one rollout stage (or the baseline bake)."""

    stage: str
    fraction: float
    buckets: int
    machines_enabled: int
    colocated_machines: int
    placed_jobs: int
    unplaced_jobs: int
    baseline_p99_ms: float
    colocated_p99_ms: float
    p99_ratio: float
    decision: str
    reclaimed_core_hours: float
    batch_machine_hours: float
    slo_violation_minutes: float

    def row(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "fraction": round(self.fraction, 6),
            "buckets": self.buckets,
            "machines_enabled": self.machines_enabled,
            "colocated_machines": self.colocated_machines,
            "placed_jobs": self.placed_jobs,
            "unplaced_jobs": self.unplaced_jobs,
            "baseline_p99_ms": round(self.baseline_p99_ms, 4),
            "colocated_p99_ms": round(self.colocated_p99_ms, 4),
            # A retried stage attempt has no usable ratio (NaN); JSON has no
            # NaN, so the row carries null instead.
            "p99_ratio": (
                round(self.p99_ratio, 4)
                if self.p99_ratio == self.p99_ratio
                else None
            ),
            "decision": self.decision,
            "reclaimed_core_hours": round(self.reclaimed_core_hours, 4),
            "batch_machine_hours": round(self.batch_machine_hours, 4),
            "slo_violation_minutes": round(self.slo_violation_minutes, 4),
        }


@dataclass
class FleetResult:
    """The outcome of operating one fleet through a staged rollout."""

    machines: int
    groups: int
    status: str  # "completed" | "halted"
    stages_completed: int
    stages_total: int
    placement_strategy: str
    target_policy: str
    #: Per config file: the version active after the rollout ended.
    active_config_versions: Dict[str, int] = field(default_factory=dict)
    stages: List[StageAccount] = field(default_factory=list)
    #: Fleet-wide latency digest of every colocated machine-bucket.
    colocated_digest: LatencyDigest = field(default_factory=LatencyDigest)
    #: Fleet-wide latency digest of every baseline machine-bucket.
    baseline_digest: LatencyDigest = field(default_factory=LatencyDigest)
    machine_buckets: int = 0

    # ------------------------------------------------------------------ totals
    @property
    def reclaimed_core_hours(self) -> float:
        return sum(stage.reclaimed_core_hours for stage in self.stages)

    @property
    def batch_machine_hours(self) -> float:
        return sum(stage.batch_machine_hours for stage in self.stages)

    @property
    def slo_violation_minutes(self) -> float:
        return sum(stage.slo_violation_minutes for stage in self.stages)

    @property
    def halted(self) -> bool:
        return self.status == "halted"

    def totals(self) -> Dict[str, Any]:
        baseline = self.baseline_digest.stats()
        colocated = self.colocated_digest.stats()
        return {
            "machines": self.machines,
            "groups": self.groups,
            "status": self.status,
            "stages_completed": self.stages_completed,
            "stages_total": self.stages_total,
            "machine_buckets": self.machine_buckets,
            "reclaimed_core_hours": round(self.reclaimed_core_hours, 4),
            "batch_machine_hours": round(self.batch_machine_hours, 4),
            "slo_violation_minutes": round(self.slo_violation_minutes, 4),
            "baseline_p99_ms": round(to_millis(baseline.p99), 4),
            "colocated_p99_ms": round(to_millis(colocated.p99), 4),
        }

    # --------------------------------------------------------------- reporting
    def rows(self) -> List[Dict[str, Any]]:
        """One row per stage — the CLI's table/CSV/JSON payload.

        Rows are a pure function of the fleet spec (wall-clock, worker count
        and cache state are deliberately excluded), so serial, parallel and
        cache-served runs emit byte-identical output.
        """
        return [stage.row() for stage in self.stages]

    def summary(self) -> Dict[str, Any]:
        """Flat single-row summary (what the scenario matrix tabulates)."""
        summary: Dict[str, Any] = {
            "placement": self.placement_strategy,
            "policy": self.target_policy,
        }
        summary.update(self.totals())
        # The rollback observable: one version number per config file, in
        # sorted file order ("1/1/1" after a halt that restored baselines).
        summary["config_versions"] = "/".join(
            str(self.active_config_versions[name])
            for name in sorted(self.active_config_versions)
        )
        return summary
