"""Secondary placement: bin-packing batch demand onto reclaimable capacity.

The fleet does not run one secondary per machine by decree — a batch queue of
jobs is *placed* onto whatever capacity the calibration says each machine can
reclaim without violating its buffer.  The scheduler below is a classic
decreasing-size greedy packer with three machine-selection strategies:

* ``first_fit`` — machines in canonical (name) order, first one that fits;
* ``best_fit``  — the fitting machine with the least remaining capacity;
* ``worst_fit`` — the fitting machine with the most remaining capacity
  (spreads load, the friendliest to tail latency).

Determinism is by construction, not by seeding: inputs are canonically
ordered before packing (demands by decreasing size then name, machines by
name) and all ties break on the canonical order, so any permutation of the
input sequences yields the identical plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..config.schema import PlacementSpec
from ..errors import ConfigError

__all__ = [
    "MachineCapacity",
    "PlacementDemand",
    "Assignment",
    "PlacementPlan",
    "plan_placement",
]


@dataclass(frozen=True)
class MachineCapacity:
    """One machine's reclaimable capacity estimate, in whole cores."""

    machine: str
    cores: int

    def __post_init__(self) -> None:
        if not self.machine:
            raise ConfigError("machine name must be non-empty")
        if self.cores < 0:
            raise ConfigError(f"machine {self.machine!r} capacity must be >= 0")


@dataclass(frozen=True)
class PlacementDemand:
    """One batch job waiting for placement."""

    name: str
    cores: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("placement demand name must be non-empty")
        if self.cores < 1:
            raise ConfigError(f"job {self.name!r} must demand at least one core")


@dataclass(frozen=True)
class Assignment:
    """One job pinned to one machine."""

    machine: str
    job: str
    cores: int


@dataclass(frozen=True)
class PlacementPlan:
    """The scheduler's output: assignments in placement order, plus leftovers."""

    assignments: Tuple[Assignment, ...]
    unplaced: Tuple[PlacementDemand, ...]

    @property
    def total_placed_cores(self) -> int:
        return sum(assignment.cores for assignment in self.assignments)

    @property
    def placed_jobs(self) -> int:
        return len(self.assignments)

    def placed_cores_by_machine(self) -> Dict[str, int]:
        placed: Dict[str, int] = {}
        for assignment in self.assignments:
            placed[assignment.machine] = placed.get(assignment.machine, 0) + assignment.cores
        return placed


def _canonical_demands(demands: Sequence[PlacementDemand]) -> List[PlacementDemand]:
    names = [demand.name for demand in demands]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ConfigError(f"placement job names must be unique, duplicated: {duplicates}")
    return sorted(demands, key=lambda demand: (-demand.cores, demand.name))


def _canonical_machines(machines: Sequence[MachineCapacity]) -> List[MachineCapacity]:
    names = [machine.machine for machine in machines]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ConfigError(f"machine names must be unique, duplicated: {duplicates}")
    return sorted(machines, key=lambda machine: machine.machine)


def plan_placement(
    machines: Sequence[MachineCapacity],
    demands: Sequence[PlacementDemand],
    strategy: str = "first_fit",
) -> PlacementPlan:
    """Pack ``demands`` onto ``machines`` without exceeding any capacity.

    Returns the same plan for any permutation of either input sequence.  A
    job that fits nowhere is reported in ``unplaced`` (the fleet's batch
    queue simply keeps it pending) — placement never overcommits a machine.
    """
    if strategy not in PlacementSpec.VALID_STRATEGIES:
        raise ConfigError(
            f"placement strategy must be one of {PlacementSpec.VALID_STRATEGIES}, "
            f"got {strategy!r}"
        )
    ordered_demands = _canonical_demands(demands)
    ordered_machines = _canonical_machines(machines)

    # ``active`` keeps (name, remaining) in canonical order.  Machines whose
    # remaining capacity falls below the smallest *future* demand can never
    # host anything again (demands are processed in decreasing size), so the
    # first-fit scan drops them as it passes — the common homogeneous-job
    # case then packs in near-linear time instead of O(jobs x machines).
    active: List[List[object]] = [[m.machine, m.cores] for m in ordered_machines]
    suffix_min = [0] * len(ordered_demands)
    smallest = None
    for index in range(len(ordered_demands) - 1, -1, -1):
        cores = ordered_demands[index].cores
        smallest = cores if smallest is None else min(smallest, cores)
        suffix_min[index] = smallest

    assignments: List[Assignment] = []
    unplaced: List[PlacementDemand] = []
    for index, demand in enumerate(ordered_demands):
        floor = suffix_min[index]
        chosen = None
        if strategy == "first_fit":
            scan = 0
            while scan < len(active):
                name, remaining = active[scan]
                if remaining < floor:
                    active.pop(scan)
                    continue
                if remaining >= demand.cores:
                    chosen = scan
                    break
                scan += 1
        else:
            best_remaining = None
            for position, (name, remaining) in enumerate(active):
                if remaining < demand.cores:
                    continue
                better = (
                    best_remaining is None
                    or (strategy == "best_fit" and remaining < best_remaining)
                    or (strategy == "worst_fit" and remaining > best_remaining)
                )
                if better:
                    best_remaining = remaining
                    chosen = position
        if chosen is None:
            unplaced.append(demand)
            continue
        slot = active[chosen]
        assignments.append(Assignment(machine=slot[0], job=demand.name, cores=demand.cores))
        slot[1] -= demand.cores

    return PlacementPlan(assignments=tuple(assignments), unplaced=tuple(unplaced))
