"""The ``python -m repro.fleet`` command line.

Runs the canonical heterogeneous fleet (or any ``kind="fleet"`` scenario
from the matrix catalog) through the staged-rollout simulation and prints
per-stage accounting as a table, JSON, JSONL or CSV.  Output is a pure
function of the spec: serial runs, ``--workers N`` runs and cache-served
repeats emit byte-identical bytes.  ``--bundle DIR`` additionally captures
the run as a versioned artifact bundle (:mod:`repro.reporting.bundle`).
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..cli import (
    EXIT_FAILURES,
    EXIT_OK,
    EXIT_USAGE,
    add_bundle_option,
    add_output_options,
    add_profile_option,
    add_seed_option,
    add_telemetry_option,
    add_workers_option,
    render_output,
    resolve_output,
    write_output,
)
from ..errors import ConfigError, ReproError
from ..experiments.reporting import format_table

__all__ = ["main"]


def _parse_qps_list(text: str) -> tuple:
    try:
        values = tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expects Q1,Q2,..., got {text!r}"
        ) from None
    return values


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Simulate a staged PerfIso rollout across a machine fleet.",
    )
    parser.add_argument("--list", action="store_true", help="list the fleet scenario catalog")
    parser.add_argument(
        "--scenario",
        metavar="NAME[,NAME...]",
        default=None,
        help="run one or more registered fleet scenarios (comma separated) "
        "instead of the default fleet; a failing scenario is reported in an "
        "error table, the rest still run",
    )
    parser.add_argument("--machines", type=int, default=2000, help="total fleet size")
    parser.add_argument("--stages", type=int, default=3, help="rollout stage count")
    parser.add_argument(
        "--policy",
        default="blind",
        help="CPU policy the rollout ships (blind/static_cores/cpu_cycles/none)",
    )
    parser.add_argument(
        "--strategy",
        default="first_fit",
        help="placement strategy (first_fit/best_fit/worst_fit)",
    )
    parser.add_argument(
        "--guardrail", type=float, default=1.5, help="P99 guardrail multiplier"
    )
    parser.add_argument("--buckets", type=int, default=4, help="buckets per stage and bake")
    parser.add_argument(
        "--samples", type=int, default=32, help="latency samples per machine per bucket"
    )
    parser.add_argument(
        "--sample-fraction",
        type=float,
        default=1.0,
        help=(
            "fraction of each machine group drawn per-machine (1.0 = exact "
            "mode; below 1.0 enables sampled hyperscale mode)"
        ),
    )
    parser.add_argument(
        "--min-sampled",
        type=int,
        default=256,
        help="floor on sampled machines per group and colocation class",
    )
    parser.add_argument(
        "--calibration-qps",
        type=_parse_qps_list,
        default=None,
        metavar="Q1,Q2",
        help="calibration load points (comma separated)",
    )
    parser.add_argument(
        "--calibration-duration", type=float, default=None, help="calibration run length (s)"
    )
    parser.add_argument(
        "--calibration-warmup", type=float, default=None, help="calibration warmup (s)"
    )
    add_workers_option(parser)
    add_seed_option(parser, default=7, help="fleet seed")
    add_output_options(parser)
    add_profile_option(parser)
    add_telemetry_option(
        parser, detail="per-bucket fleet snapshots and rollout stage spans"
    )
    add_bundle_option(parser)
    return parser


def _fleet_catalog_rows() -> List[dict]:
    from ..experiments import matrix

    rows = []
    for item in matrix.iter_scenarios():
        if item.kind != "fleet":
            continue
        axes = "; ".join(
            f"{axis}={','.join(str(v) for v in values)}" for axis, values in item.axes
        )
        rows.append(
            {
                "scenario": item.name,
                "variants": item.variant_count(),
                "axes": axes or "-",
                "description": item.description,
            }
        )
    return rows


#: Flags that shape the default fleet and are therefore meaningless (and
#: silently confusing) when a catalog scenario defines the whole spec.
_SCENARIO_INCOMPATIBLE = (
    "machines",
    "stages",
    "policy",
    "strategy",
    "guardrail",
    "buckets",
    "samples",
    "sample_fraction",
    "min_sampled",
    "calibration_qps",
    "calibration_duration",
    "calibration_warmup",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(format_table(_fleet_catalog_rows()))
        return EXIT_OK

    from ..runtime.runner import ExperimentRunner

    runner = (
        ExperimentRunner(max_workers=args.workers) if args.workers is not None else None
    )

    telemetry = None
    if args.telemetry:
        from ..telemetry import TelemetrySession

        telemetry = TelemetrySession.to_path(
            args.telemetry,
            source="fleet",
            meta={"scenario": args.scenario or "default-fleet"},
        )

    def _execute():
        if args.scenario is not None:
            overridden = [
                "--" + name.replace("_", "-")
                for name in _SCENARIO_INCOMPATIBLE
                if getattr(args, name) != parser.get_default(name)
            ]
            if overridden:
                raise ConfigError(
                    f"--scenario runs the catalog definition of {args.scenario!r}; "
                    f"{', '.join(overridden)} would be ignored — drop them, or "
                    "build a custom fleet without --scenario"
                )
            return _run_catalog_scenarios(args, runner, telemetry)
        rows, hashes = _run_default_fleet(args, runner, telemetry)
        return rows, [], hashes

    try:
        fmt, out_path = resolve_output(args.out, args.format)
        if args.profile:
            from ..telemetry.profiling import run_profiled

            rows, failures, spec_hashes = run_profiled(_execute, args.profile)
        else:
            rows, failures, spec_hashes = _execute()
    except ReproError as error:
        from ..telemetry.log import get_logger

        get_logger("repro.fleet").error("command failed", error=str(error))
        return EXIT_USAGE
    finally:
        if telemetry is not None:
            telemetry.close()

    write_output(render_output(rows, fmt), out_path)
    if args.bundle:
        from ..reporting.bundle import write_bundle

        write_bundle(
            args.bundle,
            kind="fleet",
            name=args.scenario or "default-fleet",
            rows=rows,
            fmt=fmt if fmt != "table" else "json",
            seeds=[args.seed],
            spec_hashes=spec_hashes,
            meta={"scenario": args.scenario or "default-fleet"},
        )
    if failures:
        print(f"\n== {len(failures)} scenarios failed ==")
        print(format_table(failures, columns=["scenario", "error"]))
        return EXIT_FAILURES
    return EXIT_OK


def _run_catalog_scenarios(args, runner, telemetry=None):
    """Run every requested catalog scenario, isolating per-scenario failures.

    Returns ``(rows, failures, spec_hashes)``: the concatenated result rows
    of every scenario that completed, one ``{"scenario", "error"}`` row per
    scenario that raised, and the content hash of every spec that ran —
    completed work is always flushed, and the CLI exits non-zero when
    ``failures`` is non-empty.
    """
    from ..experiments import matrix
    from ..runtime import spec_hash
    from ..runtime.runner import default_runner
    from ..telemetry.log import get_logger

    names = [name.strip() for name in args.scenario.split(",") if name.strip()]
    if not names:
        raise ConfigError("--scenario expects at least one scenario name")
    # Unknown or non-fleet names are caller mistakes: reject the whole
    # invocation (exit 2) before running anything.  Failures *during* a run
    # are isolated per scenario below (exit 1, partial results flushed).
    for name in names:
        if matrix.get_scenario(name).kind != "fleet":
            raise ConfigError(
                f"scenario {name!r} is not a fleet scenario; "
                "use python -m repro.experiments.matrix to run it"
            )
    active = runner if runner is not None else default_runner()
    rows: List[dict] = []
    failures: List[dict] = []
    hashes: List[str] = []
    for name in names:
        try:
            result = matrix.run_scenario(
                name, runner=active, telemetry=telemetry, seed=args.seed
            )
            rows.extend(result.rows())
            hashes.extend(spec_hash(variant.spec) for variant in result.variants)
        except Exception as error:
            get_logger("repro.fleet").error(
                "scenario failed", scenario=name, error=str(error)
            )
            failures.append(
                {"scenario": name, "error": f"{type(error).__name__}: {error}"}
            )
    return rows, failures, hashes


def _run_default_fleet(args, runner, telemetry=None):
    from ..runtime import spec_hash
    from .scenarios import default_fleet_spec
    from .simulate import FleetSimulation

    spec = default_fleet_spec(
        machines=args.machines,
        stages=args.stages,
        seed=args.seed,
        target_policy=args.policy,
        guardrail=args.guardrail,
        strategy=args.strategy,
        calibration_qps=args.calibration_qps,
        calibration_duration=args.calibration_duration,
        calibration_warmup=args.calibration_warmup,
        bake_buckets=args.buckets,
        stage_buckets=args.buckets,
        samples_per_machine_bucket=args.samples,
        sample_fraction=args.sample_fraction,
        min_sampled_machines=args.min_sampled,
    )
    result = FleetSimulation(spec, runner=runner, telemetry=telemetry).run()
    rows = result.rows()
    totals = {"stage": "total"}
    totals.update(result.totals())
    rows.append(totals)
    return rows, [spec_hash(spec)]
