"""Typed configuration schema for machines, tenants, PerfIso and experiments.

Every tunable in the simulator lives in one of the frozen dataclasses below.
Default values reproduce the hardware and software configuration reported in
Section 5.2/5.3 of the paper (two-socket Xeon E5-2673 v3, 48 logical cores,
128 GB RAM, 4x SSD + 4x HDD striped volumes, IndexServe with a ~110 GB cache,
an 8-buffer-core blind-isolation PerfIso deployment).

The dataclasses are immutable so a configuration can be shared between the
many components of one experiment without defensive copying; use
``dataclasses.replace`` to derive variants.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigError
from ..units import GIB, MB, micros, millis

__all__ = [
    "DiskSpec",
    "VolumeSpec",
    "NicSpec",
    "MachineSpec",
    "SchedulerSpec",
    "IndexServeSpec",
    "CpuBullySpec",
    "DiskBullySpec",
    "HdfsSpec",
    "MlTrainingSpec",
    "SecondaryJobSpec",
    "BlindIsolationSpec",
    "StaticCoreSpec",
    "CpuCycleSpec",
    "PidControlSpec",
    "MpcControlSpec",
    "UtilizationTargetSpec",
    "OracleControlSpec",
    "IoThrottleSpec",
    "MemoryGuardSpec",
    "NetworkThrottleSpec",
    "PerfIsoSpec",
    "DiurnalSpec",
    "BurstySpec",
    "FlashCrowdSpec",
    "TraceSpec",
    "WorkloadSpec",
    "ClusterSpec",
    "MachineFaultSpec",
    "DegradedCoreSpec",
    "TelemetryFaultSpec",
    "ControllerCrashSpec",
    "ConfigPushFaultSpec",
    "FaultPlanSpec",
    "ExperimentSpec",
    "MachineGroupSpec",
    "PlacementSpec",
    "RolloutSpec",
    "FleetSpec",
    "CampaignSpec",
]

#: Field metadata marking a spec field as hash-transparent while it equals
#: its default.  Must stay in sync with
#: :data:`repro.runtime.spec_hash.OMIT_IF_DEFAULT` (a string literal here to
#: avoid importing the runtime package at schema-load time): specs that never
#: set the field keep the exact content hash they had before the field
#: existed, so pinned goldens survive schema growth.
_HASH_OMIT_IF_DEFAULT = {"repro_hash_omit_if_default": True}

#: Tenant kinds a fleet machine group may run as its harvested secondary.
SECONDARY_KINDS = ("cpu_bully", "disk_bully", "hdfs", "ml_training")


# --------------------------------------------------------------------------- hardware
@dataclass(frozen=True)
class DiskSpec:
    """A single physical disk device.

    Parameters mirror a simple service-time model: a request costs
    ``base_latency`` plus ``size / bandwidth``, and at most ``max_queue_depth``
    requests are serviced concurrently (the rest wait in a FIFO queue).
    """

    kind: str = "ssd"
    capacity_bytes: int = 500 * GIB
    base_latency: float = micros(80)
    bandwidth_bytes_per_s: float = 450 * MB
    max_queue_depth: int = 32

    def __post_init__(self) -> None:
        if self.kind not in ("ssd", "hdd"):
            raise ConfigError(f"disk kind must be 'ssd' or 'hdd', got {self.kind!r}")
        if self.base_latency < 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("disk latency must be >= 0 and bandwidth > 0")
        if self.max_queue_depth < 1:
            raise ConfigError("disk max_queue_depth must be >= 1")


@dataclass(frozen=True)
class VolumeSpec:
    """A striped volume made of ``count`` identical disks."""

    name: str
    disk: DiskSpec
    count: int = 4
    stripe_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(f"volume {self.name!r} needs at least one disk")
        if self.stripe_bytes < 4096:
            raise ConfigError(f"volume {self.name!r} stripe must be >= 4 KiB")


@dataclass(frozen=True)
class NicSpec:
    """Network interface card."""

    bandwidth_bytes_per_s: float = 1250 * MB  # 10 GbE
    base_latency: float = micros(30)

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("NIC bandwidth must be positive")


def _default_ssd_volume() -> VolumeSpec:
    return VolumeSpec(name="ssd", disk=DiskSpec(kind="ssd"), count=4)


def _default_hdd_volume() -> VolumeSpec:
    return VolumeSpec(
        name="hdd",
        disk=DiskSpec(
            kind="hdd",
            capacity_bytes=2048 * GIB,
            base_latency=millis(6.0),
            bandwidth_bytes_per_s=160 * MB,
            max_queue_depth=8,
        ),
        count=4,
    )


@dataclass(frozen=True)
class MachineSpec:
    """The production server of Section 5.2."""

    sockets: int = 2
    cores_per_socket: int = 12
    threads_per_core: int = 2
    memory_bytes: int = 128 * GIB
    ssd_volume: VolumeSpec = field(default_factory=_default_ssd_volume)
    hdd_volume: VolumeSpec = field(default_factory=_default_hdd_volume)
    nic: NicSpec = field(default_factory=NicSpec)

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.threads_per_core < 1:
            raise ConfigError("machine topology counts must all be >= 1")
        if self.memory_bytes <= 0:
            raise ConfigError("machine memory must be positive")

    @property
    def logical_cores(self) -> int:
        """Total number of logical cores (the paper's ``48``)."""
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True)
class SchedulerSpec:
    """Parameters of the simulated OS thread scheduler.

    ``quantum`` is the time slice after which a running thread is requeued if
    other runnable threads are eligible for its core (the default approximates
    the long quantum Windows Server uses).  ``context_switch_cost`` is charged
    to the OS category on every dispatch.  ``rate_interval`` is the enforcement
    window for job-object CPU rate control (the alternative isolation mechanism
    of Section 6.1.4).  ``smt_slowdown`` is the throughput factor a thread
    retains when the sibling hyper-thread of its physical core is also busy.
    ``placement`` selects how newly-ready threads are queued when no idle core
    is available: ``"per_core"`` models real per-processor ready queues (a
    waiting thread is stuck behind one specific core's running thread);
    ``"global"`` is an idealised single queue kept for ablation studies.
    """

    quantum: float = millis(120)
    context_switch_cost: float = micros(5)
    rate_interval: float = millis(100)
    wakeup_latency: float = micros(5)
    smt_slowdown: float = 0.90
    placement: str = "per_core"

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ConfigError("scheduler quantum must be positive")
        if self.context_switch_cost < 0 or self.wakeup_latency < 0:
            raise ConfigError("scheduler overheads must be >= 0")
        if self.rate_interval <= 0:
            raise ConfigError("rate enforcement interval must be positive")
        if not 0.1 <= self.smt_slowdown <= 1.0:
            raise ConfigError("smt_slowdown must be in [0.1, 1.0]")
        if self.placement not in ("per_core", "global"):
            raise ConfigError("placement must be 'per_core' or 'global'")


# --------------------------------------------------------------------------- tenants
@dataclass(frozen=True)
class IndexServeSpec:
    """Synthetic stand-in for Bing IndexServe (the primary tenant).

    The defaults are calibrated so a standalone machine reproduces the paper's
    baseline: median query latency ~4 ms, P99 ~12 ms, and CPU ~20 % / ~40 %
    busy at 2,000 / 4,000 QPS (Figure 4).
    """

    #: Mean number of worker threads spawned per query.
    workers_per_query_mean: float = 4.0
    #: Hard cap on workers per query (the paper observes up to 15 ready
    #: threads in a 5 microsecond window).
    workers_per_query_max: int = 15
    #: Minimum number of workers per query.
    workers_per_query_min: int = 2
    #: Log-normal service-time parameters for one worker's CPU burst.
    worker_service_mu_ms: float = -0.60
    worker_service_sigma: float = 1.05
    #: Upper bound on a single worker burst (seconds).
    worker_service_cap: float = millis(30)
    #: CPU cost of parsing / dispatching a query (runs on one thread).
    parse_cost: float = micros(300)
    #: CPU cost of merging worker results after the last worker finishes.
    aggregate_cost: float = micros(800)
    #: Probability that a worker needs an SSD read (index cache miss).
    cache_miss_rate: float = 0.35
    #: Size of the SSD read issued on a cache miss.
    cache_miss_read_bytes: int = 128 * 1024
    #: Query timeout: queries slower than this are counted as dropped.
    timeout: float = millis(500)
    #: Fixed memory footprint of the in-memory index cache.
    memory_footprint_bytes: int = 110 * GIB
    #: Bytes written to the (HDD) log volume per query (asynchronous).
    log_bytes_per_query: int = 2 * 1024
    #: Response payload size sent back over the NIC.
    response_bytes: int = 16 * 1024
    #: Adaptive parallelism: when the number of in-flight queries exceeds
    #: ``adaptive_threshold`` the service splits the largest index-lookup
    #: chunks across extra workers (target-driven parallelism in the style of
    #: TPC [15]), trading extra threads and a little per-worker overhead for
    #: lower latency.  This is the compensation behaviour the paper observes
    #: in Section 6.1.2: under interference the primary's CPU usage rises.
    adaptive_parallelism: bool = True
    adaptive_threshold: int = 24
    adaptive_extra_workers: int = 4
    adaptive_split_overhead: float = micros(60)

    def __post_init__(self) -> None:
        if not (self.workers_per_query_min
                <= self.workers_per_query_mean
                <= self.workers_per_query_max):
            raise ConfigError("workers_per_query_min <= mean <= max must hold")
        if not 0.0 <= self.cache_miss_rate <= 1.0:
            raise ConfigError("cache_miss_rate must be a probability")
        if self.timeout <= 0:
            raise ConfigError("query timeout must be positive")


@dataclass(frozen=True)
class CpuBullySpec:
    """The CPU-intensive secondary micro-benchmark of Section 5.3."""

    threads: int = 48
    #: CPU work per progress "iteration"; progress is reported as iterations.
    iteration_cost: float = millis(1.0)
    memory_bytes: int = 1 * GIB

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigError("cpu bully needs at least one thread")
        if self.iteration_cost <= 0:
            raise ConfigError("cpu bully iteration cost must be positive")


@dataclass(frozen=True)
class DiskBullySpec:
    """DiskSPD-like disk bully (sequential, synchronous, mixed read/write)."""

    threads: int = 4
    read_fraction: float = 0.33
    request_bytes: int = 8 * 1024
    queue_depth: int = 1
    cpu_per_request: float = micros(20)
    memory_bytes: int = 512 * 1024 * 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be a probability")
        if self.threads < 1 or self.queue_depth < 1:
            raise ConfigError("disk bully threads and queue depth must be >= 1")


@dataclass(frozen=True)
class HdfsSpec:
    """HDFS DataNode + client colocated on every IndexServe machine."""

    replication_bandwidth_limit: float = 20 * MB
    client_bandwidth_limit: float = 60 * MB
    request_bytes: int = 4 * 1024 * 1024
    cpu_fraction: float = 0.05
    memory_bytes: int = 2 * GIB

    def __post_init__(self) -> None:
        if self.replication_bandwidth_limit <= 0 or self.client_bandwidth_limit <= 0:
            raise ConfigError("HDFS bandwidth limits must be positive")
        if not 0.0 <= self.cpu_fraction <= 1.0:
            raise ConfigError("HDFS cpu_fraction must be in [0, 1]")


@dataclass(frozen=True)
class MlTrainingSpec:
    """Machine-learning training batch job used in the Figure 10 experiment."""

    threads: int = 40
    minibatch_cpu_cost: float = millis(8)
    minibatch_read_bytes: int = 8 * 1024 * 1024
    reads_per_minibatch: float = 0.1
    memory_bytes: int = 8 * GIB

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigError("ml training needs at least one thread")


@dataclass(frozen=True)
class SecondaryJobSpec:
    """One named secondary job colocated on the machine.

    The singleton tenant fields of :class:`ExperimentSpec` (``cpu_bully``,
    ``disk_bully``, ``hdfs``, ``ml_training``) cover the paper's one-of-each
    experiments; production machines run arbitrary mixes, so additional
    secondaries are expressed as named jobs, each wrapping exactly one tenant
    spec.  Names must be unique per experiment — they label the job's OS
    processes, per-job random streams and the per-secondary result breakdown.
    """

    name: str
    cpu_bully: Optional[CpuBullySpec] = None
    disk_bully: Optional[DiskBullySpec] = None
    hdfs: Optional[HdfsSpec] = None
    ml_training: Optional[MlTrainingSpec] = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigError("secondary job name must be non-empty and '/'-free")
        if len(self._set_specs()) != 1:
            raise ConfigError(
                f"secondary job {self.name!r} must wrap exactly one tenant spec"
            )

    def _set_specs(self) -> Tuple[Tuple[str, object], ...]:
        return tuple(
            (kind, spec)
            for kind, spec in (
                ("cpu_bully", self.cpu_bully),
                ("disk_bully", self.disk_bully),
                ("hdfs", self.hdfs),
                ("ml_training", self.ml_training),
            )
            if spec is not None
        )

    @property
    def kind(self) -> str:
        """Which tenant this job runs: 'cpu_bully', 'disk_bully', 'hdfs' or 'ml_training'."""
        return self._set_specs()[0][0]

    @property
    def tenant_spec(self):
        """The wrapped tenant spec."""
        return self._set_specs()[0][1]

    @property
    def memory_bytes(self) -> int:
        return self.tenant_spec.memory_bytes


# --------------------------------------------------------------------------- PerfIso
@dataclass(frozen=True)
class BlindIsolationSpec:
    """CPU blind isolation (Section 3.1)."""

    buffer_cores: int = 8
    min_secondary_cores: int = 0
    #: Maximum number of cores added/removed per controller update; ``0``
    #: means "adjust by the full measured difference" (the paper's behaviour).
    max_step: int = 0

    def __post_init__(self) -> None:
        if self.buffer_cores < 0:
            raise ConfigError("buffer_cores must be >= 0")
        if self.min_secondary_cores < 0:
            raise ConfigError("min_secondary_cores must be >= 0")
        if self.max_step < 0:
            raise ConfigError("max_step must be >= 0")


@dataclass(frozen=True)
class StaticCoreSpec:
    """Static core restriction (the 'CPU cores' alternative of Section 6.1.4)."""

    secondary_cores: int = 8

    def __post_init__(self) -> None:
        if self.secondary_cores < 0:
            raise ConfigError("secondary_cores must be >= 0")


@dataclass(frozen=True)
class CpuCycleSpec:
    """CPU cycle (rate) restriction (the 'CPU cycles' alternative)."""

    cpu_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.cpu_fraction <= 1.0:
            raise ConfigError("cpu_fraction must be in (0, 1]")


@dataclass(frozen=True)
class PidControlSpec:
    """PID controller on windowed-P99 error (a feedback challenger).

    The control error is the *relative* SLO slack ``(slo_p99 - p99) / slo_p99``
    over a sliding latency window: positive slack grows the secondary, an SLO
    breach shrinks it.  The output is a core delta, clamped to ``max_step``
    per poll and to the band ``[min_secondary_cores, total - reserve_cores]``.
    """

    #: The served-latency objective the loop regulates to.
    slo_p99: float = millis(15)
    #: Length of the sliding latency window the P99 is computed over (seconds).
    window: float = 0.25
    kp: float = 6.0
    ki: float = 1.0
    kd: float = 0.0
    #: Anti-windup clamp on the error integral (in relative-slack-seconds).
    integral_limit: float = 8.0
    #: Cores added/removed at most per controller update; ``0`` = unclamped.
    max_step: int = 2
    min_secondary_cores: int = 0
    #: Cores never handed to the secondary (the PID analogue of the buffer).
    reserve_cores: int = 2

    def __post_init__(self) -> None:
        if self.slo_p99 <= 0:
            raise ConfigError("pid slo_p99 must be positive")
        if self.window <= 0:
            raise ConfigError("pid latency window must be positive")
        if self.integral_limit < 0:
            raise ConfigError("pid integral_limit must be >= 0")
        if self.max_step < 0:
            raise ConfigError("pid max_step must be >= 0")
        if self.min_secondary_cores < 0:
            raise ConfigError("pid min_secondary_cores must be >= 0")
        if self.reserve_cores < 0:
            raise ConfigError("pid reserve_cores must be >= 0")


@dataclass(frozen=True)
class MpcControlSpec:
    """Model-predictive controller sized against the arrival forecast.

    At every poll the controller asks the arrival model for the exact peak
    offered rate over the next ``horizon`` seconds (defaulting to one poll
    interval) and reserves ``ceil(peak / qps_per_core) + headroom_cores``
    cores for the primary; the secondary gets the rest.
    """

    #: Primary serving capacity used to convert a QPS forecast into cores.
    #: The paper provisions the 48-core machine for a 4,000 QPS peak, i.e.
    #: ~83 QPS/core; the default keeps a little margin below that.
    qps_per_core: float = 80.0
    #: Extra cores reserved on top of the forecast-implied demand.
    headroom_cores: int = 2
    #: Forecast window in seconds; ``0`` means "one poll interval ahead".
    horizon: float = 0.0
    min_secondary_cores: int = 0

    def __post_init__(self) -> None:
        if self.qps_per_core <= 0:
            raise ConfigError("mpc qps_per_core must be positive")
        if self.headroom_cores < 0:
            raise ConfigError("mpc headroom_cores must be >= 0")
        if self.horizon < 0:
            raise ConfigError("mpc horizon must be >= 0")
        if self.min_secondary_cores < 0:
            raise ConfigError("mpc min_secondary_cores must be >= 0")


@dataclass(frozen=True)
class UtilizationTargetSpec:
    """Utilisation-target autoscaler (a classic-autoscaling challenger).

    Holds machine utilisation (busy cores / total) inside
    ``target_utilization ± deadband`` by stepping the secondary's core count
    by ``step_cores`` per poll, inside ``[min_secondary_cores,
    total - reserve_cores]``.
    """

    target_utilization: float = 0.85
    deadband: float = 0.05
    step_cores: int = 2
    min_secondary_cores: int = 0
    reserve_cores: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilization < 1.0:
            raise ConfigError("target_utilization must be in (0, 1)")
        if not 0.0 <= self.deadband < min(
            self.target_utilization, 1.0 - self.target_utilization
        ):
            raise ConfigError(
                "deadband must be >= 0 and keep the band inside (0, 1)"
            )
        if self.step_cores < 1:
            raise ConfigError("step_cores must be >= 1")
        if self.min_secondary_cores < 0:
            raise ConfigError("utilization min_secondary_cores must be >= 0")
        if self.reserve_cores < 0:
            raise ConfigError("utilization reserve_cores must be >= 0")


@dataclass(frozen=True)
class OracleControlSpec:
    """Clairvoyant upper bound: reads the future arrival trace.

    Same capacity arithmetic as :class:`MpcControlSpec` but looking
    ``lookahead`` seconds into the *actual* future rate curve, so the
    secondary is pre-shrunk before a spike ever lands.  Unrealisable in
    production — it exists to bound how much any predictor could gain.
    """

    qps_per_core: float = 80.0
    headroom_cores: int = 1
    #: How far into the future the oracle reads (seconds).
    lookahead: float = 0.25
    min_secondary_cores: int = 0

    def __post_init__(self) -> None:
        if self.qps_per_core <= 0:
            raise ConfigError("oracle qps_per_core must be positive")
        if self.headroom_cores < 0:
            raise ConfigError("oracle headroom_cores must be >= 0")
        if self.lookahead <= 0:
            raise ConfigError("oracle lookahead must be positive")
        if self.min_secondary_cores < 0:
            raise ConfigError("oracle min_secondary_cores must be >= 0")


@dataclass(frozen=True)
class IoThrottleSpec:
    """Deficit-weighted-round-robin I/O throttling (Section 4.1)."""

    enabled: bool = True
    #: Weight per tenant class; higher weight means a larger share.
    weights: Tuple[Tuple[str, float], ...] = (("primary", 8.0), ("secondary", 1.0))
    #: Guaranteed minimum IOPS for the primary.
    primary_min_iops: float = 2000.0
    #: Hard caps applied to the secondary on the shared (HDD) volume.
    secondary_bandwidth_limit: float = 100 * MB
    secondary_iops_limit: float = 0.0  # 0 disables the IOPS cap
    #: Moving-average window used for the IOPS estimate (seconds).
    window: float = 1.0
    #: How often the throttler recomputes deficits and adjusts priorities.
    adjust_interval: float = 0.25

    def weight_map(self) -> Dict[str, float]:
        return dict(self.weights)

    def __post_init__(self) -> None:
        if self.window <= 0 or self.adjust_interval <= 0:
            raise ConfigError("IO throttle window and adjust interval must be positive")
        for name, weight in self.weights:
            if weight <= 0:
                raise ConfigError(f"IO weight for {name!r} must be positive")


@dataclass(frozen=True)
class MemoryGuardSpec:
    """Memory footprint guard (Section 3.2): kill the secondary under pressure."""

    enabled: bool = True
    #: Keep at least this much memory free for the primary and the OS.
    reserved_bytes: int = 4 * GIB
    check_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.reserved_bytes < 0:
            raise ConfigError("reserved_bytes must be >= 0")
        if self.check_interval <= 0:
            raise ConfigError("check_interval must be positive")


@dataclass(frozen=True)
class NetworkThrottleSpec:
    """Egress network throttling of the secondary (Section 3.2)."""

    enabled: bool = True
    secondary_bandwidth_limit: float = 100 * MB
    low_priority: bool = True

    def __post_init__(self) -> None:
        if self.secondary_bandwidth_limit <= 0:
            raise ConfigError("secondary egress bandwidth limit must be positive")


@dataclass(frozen=True)
class PerfIsoSpec:
    """Top-level PerfIso service configuration (Section 4)."""

    #: Which CPU policy to run: one of :data:`VALID_POLICIES` — the paper's
    #: four ('blind', 'static_cores', 'cpu_cycles', 'none') plus the
    #: challenger controllers ('pid', 'mpc', 'utilization', 'oracle').
    cpu_policy: str = "blind"
    blind: BlindIsolationSpec = field(default_factory=BlindIsolationSpec)
    static_cores: StaticCoreSpec = field(default_factory=StaticCoreSpec)
    cpu_cycles: CpuCycleSpec = field(default_factory=CpuCycleSpec)
    pid: PidControlSpec = field(default_factory=PidControlSpec)
    mpc: MpcControlSpec = field(default_factory=MpcControlSpec)
    utilization: UtilizationTargetSpec = field(default_factory=UtilizationTargetSpec)
    oracle: OracleControlSpec = field(default_factory=OracleControlSpec)
    io_throttle: IoThrottleSpec = field(default_factory=IoThrottleSpec)
    memory_guard: MemoryGuardSpec = field(default_factory=MemoryGuardSpec)
    network_throttle: NetworkThrottleSpec = field(default_factory=NetworkThrottleSpec)
    #: How often the controller polls the idle-core mask.
    poll_interval: float = millis(1)
    #: Whether the controller starts enabled (the "kill switch" of Section 4.2).
    enabled: bool = True

    VALID_POLICIES = (
        "blind",
        "static_cores",
        "cpu_cycles",
        "none",
        "pid",
        "mpc",
        "utilization",
        "oracle",
    )

    def __post_init__(self) -> None:
        if self.cpu_policy not in self.VALID_POLICIES:
            raise ConfigError(
                f"cpu_policy must be one of {self.VALID_POLICIES}, got {self.cpu_policy!r}"
            )
        if self.poll_interval <= 0:
            raise ConfigError("poll_interval must be positive")


# --------------------------------------------------------------------------- workload
@dataclass(frozen=True)
class DiurnalSpec:
    """Sinusoidal day/night load swing (the Figure 10 production shape).

    The instantaneous rate is ``mid + amplitude * cos(2*pi * (t/period +
    phase_offset))`` floored at ``floor_qps``, where ``mid`` and ``amplitude``
    derive from the peak/trough pair.  ``phase_offset`` is a fraction of the
    period — rows serving different geographies peak at different times.  The
    fleet model's per-row diurnal curves are built from this spec, so the
    single-machine and fleet implementations cannot drift.
    """

    peak_qps: float = 4000.0
    trough_qps: float = 1600.0
    #: Length of one full cycle (seconds of simulated time).
    period: float = 3600.0
    #: Phase shift as a fraction of the period, in [0, 1).
    phase_offset: float = 0.0
    floor_qps: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.trough_qps < self.peak_qps:
            raise ConfigError("diurnal load requires 0 < trough_qps < peak_qps")
        if self.period <= 0:
            raise ConfigError("diurnal period must be positive")
        if not 0.0 <= self.phase_offset < 1.0:
            raise ConfigError("diurnal phase_offset must be in [0, 1)")
        if self.floor_qps <= 0:
            raise ConfigError("diurnal floor_qps must be positive")


@dataclass(frozen=True)
class BurstySpec:
    """Two-state Markov-modulated Poisson arrivals (normal <-> burst).

    The rate alternates between ``base_qps`` and ``burst_qps``; dwell times in
    each state are exponential with the given means.  The state path is drawn
    from the experiment's named ``"arrival-model"`` random stream, so a bursty
    workload is a pure function of the experiment seed and stays byte-identical
    at any worker count.
    """

    base_qps: float = 2000.0
    burst_qps: float = 6000.0
    #: Mean dwell time in the normal state (seconds).
    mean_normal_seconds: float = 4.0
    #: Mean dwell time in the burst state (seconds).
    mean_burst_seconds: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_qps < self.burst_qps:
            raise ConfigError("bursty load requires 0 < base_qps < burst_qps")
        if self.mean_normal_seconds <= 0 or self.mean_burst_seconds <= 0:
            raise ConfigError("bursty dwell-time means must be positive")

    @property
    def mean_qps(self) -> float:
        """The stationary mean rate of the two-state chain."""
        total = self.mean_normal_seconds + self.mean_burst_seconds
        return (
            self.base_qps * self.mean_normal_seconds
            + self.burst_qps * self.mean_burst_seconds
        ) / total


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A flash crowd: base load, a linear ramp to a spike, hold, then decay.

    Time zero is the start of the experiment (including warmup); the spike
    begins at ``start`` seconds, climbs linearly over ``ramp`` seconds to
    ``spike_qps``, holds for ``hold`` seconds and decays linearly back to the
    base over ``decay`` seconds.
    """

    base_qps: float = 2000.0
    spike_qps: float = 6000.0
    start: float = 4.0
    ramp: float = 0.5
    hold: float = 2.0
    decay: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.base_qps < self.spike_qps:
            raise ConfigError("flash crowd requires 0 < base_qps < spike_qps")
        if self.start < 0 or self.ramp < 0 or self.hold < 0 or self.decay < 0:
            raise ConfigError("flash crowd phase durations must all be >= 0")
        if self.ramp + self.hold + self.decay <= 0:
            raise ConfigError(
                "a flash crowd needs a non-zero spike (ramp + hold + decay > 0); "
                "a zero-width spike degenerates to the constant base rate"
            )

    @property
    def end(self) -> float:
        """When the load is back at the base rate."""
        return self.start + self.ramp + self.hold + self.decay


@dataclass(frozen=True)
class TraceSpec:
    """A replayable trace: uniformly-spaced buckets of offered QPS.

    The rate is piecewise-constant — bucket ``i`` covers simulated time
    ``[i * bucket_seconds, (i+1) * bucket_seconds)`` — and replay wraps
    cyclically past the end of the trace.  Traces are stored *inline* (a tuple
    of floats, not a file path) so experiment specs stay content-addressable:
    two specs replaying the same buckets hash identically no matter where the
    trace file lived.  Use :mod:`repro.config.traces` to load/save JSONL and
    CSV trace files, and ``python -m repro.workloads`` to synthesize them from
    the parametric models.
    """

    bucket_seconds: float
    qps: Tuple[float, ...]
    #: Free-form provenance label ("synthetic:diurnal", "prod-2017-w3", ...).
    source: str = "synthetic"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.bucket_seconds) and self.bucket_seconds > 0):
            raise ConfigError("trace bucket_seconds must be positive and finite")
        if not self.qps:
            raise ConfigError("a trace needs at least one QPS bucket")
        for index, value in enumerate(self.qps):
            if not (math.isfinite(value) and value >= 0.0):
                raise ConfigError(
                    f"trace bucket {index} has invalid QPS {value!r} "
                    "(must be finite and >= 0)"
                )
        if not any(value > 0.0 for value in self.qps):
            raise ConfigError("a trace must have at least one non-zero bucket")

    @property
    def duration(self) -> float:
        """Length of one full pass over the trace (seconds)."""
        return self.bucket_seconds * len(self.qps)

    @property
    def mean_qps(self) -> float:
        return sum(self.qps) / len(self.qps)

    @property
    def peak_qps(self) -> float:
        return max(self.qps)


@dataclass(frozen=True)
class WorkloadSpec:
    """Open-loop query workload replayed against the primary (Section 5.3).

    With no arrival model set, arrivals are stationary at ``qps`` (Poisson or
    uniform).  Setting exactly one of ``diurnal``/``bursty``/``flash_crowd``/
    ``trace`` makes the arrival process time-varying: the rate follows the
    model and ``qps`` remains only the nominal label reported in results.
    """

    qps: float = 2000.0
    duration: float = 10.0
    warmup: float = 1.0
    #: Number of distinct queries in the synthetic trace.
    trace_queries: int = 50_000
    arrival_process: str = "poisson"
    diurnal: Optional[DiurnalSpec] = None
    bursty: Optional[BurstySpec] = None
    flash_crowd: Optional[FlashCrowdSpec] = None
    trace: Optional[TraceSpec] = None

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ConfigError("qps must be positive")
        if self.duration <= 0 or self.warmup < 0:
            raise ConfigError("duration must be > 0 and warmup >= 0")
        if self.arrival_process not in ("poisson", "uniform"):
            raise ConfigError("arrival_process must be 'poisson' or 'uniform'")
        models = self._set_models()
        if len(models) > 1:
            raise ConfigError(
                "a workload may set at most one arrival model, got "
                f"{[kind for kind, _ in models]}"
            )
        if models and self.arrival_process != "poisson":
            raise ConfigError(
                "time-varying arrival models require arrival_process='poisson'"
            )

    def _set_models(self) -> Tuple[Tuple[str, object], ...]:
        return tuple(
            (kind, spec)
            for kind, spec in (
                ("diurnal", self.diurnal),
                ("bursty", self.bursty),
                ("flash_crowd", self.flash_crowd),
                ("trace", self.trace),
            )
            if spec is not None
        )

    @property
    def arrival_kind(self) -> str:
        """'constant', or the name of the configured arrival model."""
        models = self._set_models()
        return models[0][0] if models else "constant"

    @property
    def arrival_model_spec(self):
        """The configured arrival-model spec, or ``None`` for constant rate."""
        models = self._set_models()
        return models[0][1] if models else None

    @property
    def total_time(self) -> float:
        return self.warmup + self.duration

    @property
    def mean_qps(self) -> float:
        """Time-averaged offered rate (used to size the synthetic query trace).

        For the flash crowd the excess above base is integrated exactly over
        the part of the spike that falls inside the experiment window, phase
        by phase (an experiment may end mid-ramp or mid-hold).
        """
        model = self.arrival_model_spec
        if model is None:
            return self.qps
        if isinstance(model, DiurnalSpec):
            # Closed-form integral of mid + A*cos(2*pi*(t/P + phi)) over
            # [0, total]: an 11 s window pinned at the trough of an hour-long
            # period must size for the trough, not the full-period mean.
            # (floor_qps is ignored here — it only binds for degenerate
            # troughs, and sizing is a heuristic.)
            total = self.total_time
            mid = (model.peak_qps + model.trough_qps) / 2.0
            amplitude = (model.peak_qps - model.trough_qps) / 2.0
            two_pi = 2.0 * math.pi
            swept = math.sin(two_pi * (total / model.period + model.phase_offset))
            start = math.sin(two_pi * model.phase_offset)
            return mid + amplitude * (swept - start) * model.period / (two_pi * total)
        if isinstance(model, FlashCrowdSpec):
            total = self.total_time
            # Seconds of each spike phase inside [0, total], walked in order.
            in_ramp = min(max(0.0, total - model.start), model.ramp)
            in_hold = min(max(0.0, total - model.start - model.ramp), model.hold)
            in_decay = min(
                max(0.0, total - model.start - model.ramp - model.hold), model.decay
            )
            # Spike-equivalent seconds: the ramp climbs linearly (integral
            # u^2/2r), the hold is flat, the decay falls linearly.
            spike_seconds = in_hold
            if model.ramp > 0.0:
                spike_seconds += in_ramp * in_ramp / (2.0 * model.ramp)
            if model.decay > 0.0:
                spike_seconds += in_decay * (1.0 - in_decay / (2.0 * model.decay))
            excess = (model.spike_qps - model.base_qps) * spike_seconds / total
            return model.base_qps + excess
        if isinstance(model, TraceSpec):
            # Average only the portion of the trace the window actually
            # replays (wrapping cyclically), not the whole file: a long
            # front-loaded trace otherwise mis-sizes the query pool.
            total = self.total_time
            bucket = model.bucket_seconds
            rates = model.qps
            whole = int(total // bucket)
            frac = total - whole * bucket
            cycles, rem = divmod(whole, len(rates))
            integral = (cycles * sum(rates) + sum(rates[:rem])) * bucket
            integral += rates[rem % len(rates)] * frac
            return integral / total
        return model.mean_qps


# --------------------------------------------------------------------------- cluster
@dataclass(frozen=True)
class ClusterSpec:
    """The 75-machine IndexServe cluster of Section 5.3 / Figure 3."""

    partitions: int = 22
    rows: int = 2
    tla_machines: int = 31
    network_hop_latency: float = micros(200)
    mla_aggregation_cost: float = micros(400)
    tla_aggregation_cost: float = micros(300)
    #: Request timeout measured at the TLA.
    request_timeout: float = millis(500)

    def __post_init__(self) -> None:
        if self.partitions < 1 or self.rows < 1 or self.tla_machines < 1:
            raise ConfigError("cluster dimensions must all be >= 1")

    @property
    def index_machines(self) -> int:
        return self.partitions * self.rows

    @property
    def total_machines(self) -> int:
        return self.index_machines + self.tla_machines


# --------------------------------------------------------------------------- faults
@dataclass(frozen=True)
class MachineFaultSpec:
    """Machine crash/restart episodes across a fleet.

    Each machine independently draws crash times from a Poisson process at
    ``crash_rate_per_hour`` and an exponential downtime with mean
    ``mean_downtime`` seconds, all from the named ``"faults"`` random stream
    keyed by ``(seed, group, machine index)`` — so the schedule is a pure
    function of the spec and byte-identical at any worker count or shard
    partition.  A rate of ``0.0`` disables machine faults entirely.
    """

    crash_rate_per_hour: float = 0.0
    mean_downtime: float = 120.0
    #: Cap on crash episodes drawn per machine (keeps schedules bounded).
    max_crashes: int = 4

    def __post_init__(self) -> None:
        if self.crash_rate_per_hour < 0:
            raise ConfigError("crash_rate_per_hour must be >= 0")
        if self.mean_downtime <= 0:
            raise ConfigError("mean_downtime must be positive")
        if self.max_crashes < 1:
            raise ConfigError("max_crashes must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.crash_rate_per_hour > 0.0


@dataclass(frozen=True)
class DegradedCoreSpec:
    """Degraded/straggler cores: CPU work slows by ``slowdown`` over a window.

    On a single machine the whole core complex dispatches at ``1/slowdown``
    speed during ``[start, start + duration)``.  Across a fleet,
    ``fraction_of_machines`` of each group (chosen deterministically from the
    faults stream) straggle during the window; the rest run at full speed.
    ``duration == 0`` disables the fault.
    """

    slowdown: float = 1.5
    start: float = 0.0
    duration: float = 0.0
    fraction_of_machines: float = 0.1

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ConfigError("degraded-core slowdown must be >= 1.0")
        if self.start < 0 or self.duration < 0:
            raise ConfigError("degraded-core window start/duration must be >= 0")
        if not 0.0 < self.fraction_of_machines <= 1.0:
            raise ConfigError("fraction_of_machines must be in (0, 1]")

    @property
    def enabled(self) -> bool:
        return self.duration > 0.0

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class TelemetryFaultSpec:
    """Controller telemetry dropout or staleness over a window.

    During ``[start, start + duration)`` the controller's observation inputs
    (``windowed_p99`` and ``forecast_peak_qps``) either go ``"missing"``
    (read as ``None``, as if the metrics pipeline dropped the feed) or are
    ``"frozen"`` at the value last seen before the window opened (a stale
    cache that keeps serving).  ``duration == 0`` disables the fault.
    """

    mode: str = "missing"
    start: float = 0.0
    duration: float = 0.0

    VALID_MODES = ("missing", "frozen")

    def __post_init__(self) -> None:
        if self.mode not in self.VALID_MODES:
            raise ConfigError(
                f"telemetry fault mode must be one of {self.VALID_MODES}, "
                f"got {self.mode!r}"
            )
        if self.start < 0 or self.duration < 0:
            raise ConfigError("telemetry fault start/duration must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.duration > 0.0

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ControllerCrashSpec:
    """Controller crash followed by Autopilot ``restore_state`` recovery.

    On a single machine the PerfIso controller is checkpointed every
    ``checkpoint_interval`` seconds, killed at ``at`` and restarted
    ``recovery_delay`` seconds later from its last checkpoint.  In a fleet
    rollout the crash lands in whatever stage covers simulated time ``at``:
    that stage's guardrail digest is lost, the guardrail fails safe and the
    stage retries with backoff.  ``at == 0`` disables the fault.
    """

    at: float = 0.0
    recovery_delay: float = 0.05
    checkpoint_interval: float = 0.25

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError("controller crash time must be >= 0")
        if self.recovery_delay <= 0:
            raise ConfigError("controller recovery_delay must be positive")
        if self.checkpoint_interval <= 0:
            raise ConfigError("controller checkpoint_interval must be positive")

    @property
    def enabled(self) -> bool:
        return self.at > 0.0


@dataclass(frozen=True)
class ConfigPushFaultSpec:
    """Transient configuration-push failures mid-rollout.

    Each store publish/rollback attempt independently fails with probability
    ``failure_rate`` (drawn from the faults stream, so the failure pattern is
    deterministic per spec), up to ``max_failures`` injected failures in
    total.  The rollout retries failed pushes with capped backoff.
    ``failure_rate == 0`` disables the fault.
    """

    failure_rate: float = 0.0
    max_failures: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ConfigError("config-push failure_rate must be in [0, 1]")
        if self.max_failures < 1:
            raise ConfigError("config-push max_failures must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.failure_rate > 0.0


@dataclass(frozen=True)
class FaultPlanSpec:
    """A deterministic fault timeline for one experiment or fleet run.

    Every sub-plan is optional; an unset (or all-disabled) plan is a no-op
    and produces byte-identical results to a spec with no fault plan at all.
    Fault schedules draw exclusively from the named ``"faults"`` random
    stream, so enabling faults cannot perturb any other component's draws.
    """

    machines: Optional[MachineFaultSpec] = None
    degraded: Optional[DegradedCoreSpec] = None
    telemetry: Optional[TelemetryFaultSpec] = None
    controller_crash: Optional[ControllerCrashSpec] = None
    config_push: Optional[ConfigPushFaultSpec] = None

    @property
    def is_noop(self) -> bool:
        """True when no sub-plan would inject anything."""
        return not (
            (self.machines is not None and self.machines.enabled)
            or (self.degraded is not None and self.degraded.enabled)
            or (self.telemetry is not None and self.telemetry.enabled)
            or (self.controller_crash is not None and self.controller_crash.enabled)
            or (self.config_push is not None and self.config_push.enabled)
        )


# --------------------------------------------------------------------------- fleet
@dataclass(frozen=True)
class MachineGroupSpec:
    """One homogeneous slice of the fleet.

    A production fleet is not 2,000 copies of one machine: rows differ in
    buffer-core configuration, in which batch workload Autopilot assigns to
    them, and in *when* their users are awake (per-row diurnal phase).  A
    group names one such slice; the fleet model calibrates each distinct
    group configuration once and scales it to ``machines`` instances.
    """

    name: str
    machines: int = 100
    buffer_cores: int = 8
    #: Which batch tenant is harvested onto this group's machines.
    secondary: str = "ml_training"
    #: Thread count for the secondary; ``0`` keeps the tenant's default.
    secondary_threads: int = 0
    peak_qps: float = 4000.0
    trough_qps: float = 1600.0
    #: Diurnal phase offset as a fraction of the period (rows serve different
    #: geographies, so their load peaks are shifted against each other).
    phase_offset: float = 0.0
    machine: MachineSpec = field(default_factory=MachineSpec)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ConfigError("machine group name must be non-empty and '/'-free")
        if self.machines < 1:
            raise ConfigError(f"group {self.name!r} needs at least one machine")
        if self.buffer_cores < 0:
            raise ConfigError(f"group {self.name!r} buffer_cores must be >= 0")
        if self.secondary not in SECONDARY_KINDS:
            raise ConfigError(
                f"group {self.name!r} secondary must be one of {SECONDARY_KINDS}, "
                f"got {self.secondary!r}"
            )
        if self.secondary_threads < 0:
            raise ConfigError(f"group {self.name!r} secondary_threads must be >= 0")
        if not 0.0 < self.trough_qps < self.peak_qps:
            raise ConfigError(
                f"group {self.name!r} requires 0 < trough_qps < peak_qps"
            )
        if not 0.0 <= self.phase_offset < 1.0:
            raise ConfigError(f"group {self.name!r} phase_offset must be in [0, 1)")


@dataclass(frozen=True)
class PlacementSpec:
    """How batch demand is bin-packed onto reclaimable fleet capacity.

    ``job_cores`` pins an explicit list of job sizes — including ``()``,
    which means *no batch demand at all* (a baseline-only fleet).  Only the
    default ``None`` ("unset") makes the fleet harness derive a deterministic
    job list targeting ``demand_fraction`` of the fleet's estimated
    reclaimable cores, in jobs of ``job_cores_each``.
    """

    strategy: str = "first_fit"
    job_cores: Optional[Tuple[int, ...]] = None
    demand_fraction: float = 0.7
    job_cores_each: int = 6

    VALID_STRATEGIES = ("first_fit", "best_fit", "worst_fit")

    def __post_init__(self) -> None:
        if self.strategy not in self.VALID_STRATEGIES:
            raise ConfigError(
                f"placement strategy must be one of {self.VALID_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if self.job_cores is not None and any(cores < 1 for cores in self.job_cores):
            raise ConfigError("every placement job must demand at least one core")
        if not 0.0 < self.demand_fraction <= 1.0:
            raise ConfigError("demand_fraction must be in (0, 1]")
        if self.job_cores_each < 1:
            raise ConfigError("job_cores_each must be >= 1")


@dataclass(frozen=True)
class RolloutSpec:
    """A staged (canary -> wave -> fleet) PerfIso rollout with SLO guardrails.

    ``stage_fractions`` are cumulative fractions of each group enabled per
    stage; the guardrail halts the rollout (and rolls the configuration back)
    when any group's P99 under colocation exceeds
    ``guardrail_p99_multiplier`` times its baseline P99.
    """

    stage_fractions: Tuple[float, ...] = (0.02, 0.25, 1.0)
    #: CPU policy the rollout ships ('none' models an unprotected rollout).
    target_policy: str = "blind"
    guardrail_p99_multiplier: float = 1.5
    #: Buckets of pre-rollout baseline measurement (the guardrail reference).
    bake_buckets: int = 4
    #: Buckets each stage must hold before the guardrail verdict.
    stage_buckets: int = 4
    #: Churn hardening: attempts per stage before the rollout gives up.  A
    #: stage whose guardrail digest is missing or stale (controller crash,
    #: machines lost mid-measurement) fails safe — it does not advance — and
    #: is retried up to ``stage_attempts - 1`` more times.
    stage_attempts: int = 3
    #: Backoff before a stage retry, in buckets; doubles per retry.
    retry_backoff_buckets: int = 1
    #: Cap on the per-retry backoff, in buckets.
    retry_backoff_cap_buckets: int = 8
    #: Attempts per configuration push before a transient failure is fatal.
    push_attempts: int = 3

    def __post_init__(self) -> None:
        if not self.stage_fractions:
            raise ConfigError("rollout needs at least one stage")
        previous = 0.0
        for fraction in self.stage_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ConfigError("stage fractions must be in (0, 1]")
            if fraction < previous:
                raise ConfigError("stage fractions must be non-decreasing")
            previous = fraction
        if self.stage_fractions[-1] != 1.0:
            raise ConfigError("the final rollout stage must cover the whole fleet")
        if self.target_policy not in PerfIsoSpec.VALID_POLICIES:
            raise ConfigError(
                f"target_policy must be one of {PerfIsoSpec.VALID_POLICIES}, "
                f"got {self.target_policy!r}"
            )
        if self.guardrail_p99_multiplier < 1.0:
            raise ConfigError("guardrail_p99_multiplier must be >= 1.0")
        if self.bake_buckets < 1 or self.stage_buckets < 1:
            raise ConfigError("bake_buckets and stage_buckets must be >= 1")
        if self.stage_attempts < 1:
            raise ConfigError("stage_attempts must be >= 1")
        if self.retry_backoff_buckets < 0:
            raise ConfigError("retry_backoff_buckets must be >= 0")
        if self.retry_backoff_cap_buckets < 1:
            raise ConfigError("retry_backoff_cap_buckets must be >= 1")
        if self.push_attempts < 1:
            raise ConfigError("push_attempts must be >= 1")


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to simulate operating PerfIso across a fleet."""

    groups: Tuple[MachineGroupSpec, ...]
    rollout: RolloutSpec = field(default_factory=RolloutSpec)
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    #: Wall-clock length of one accounting bucket (seconds).
    bucket_seconds: float = 60.0
    #: Period of the per-group diurnal load curves (seconds).
    diurnal_period: float = 3600.0
    #: Latency samples drawn per machine per bucket.
    samples_per_machine_bucket: int = 32
    #: Floor on colocated samples drawn per group per bucket: canary stages
    #: have few colocated machines, and a P99 estimated from a handful of
    #: draws is biased upward against the fleet-sized baseline reference
    #: (a real canary pipeline keeps every query from its canary machines).
    min_colocated_samples_per_bucket: int = 2048
    #: Load points of the single-machine calibration runs.
    calibration_qps: Tuple[float, ...] = (1500.0, 3500.0)
    calibration_duration: float = 1.0
    calibration_warmup: float = 0.2
    #: Machines per execution shard (fixed, so results never depend on the
    #: worker count).
    shard_machines: int = 256
    #: Hyperscale sampling: fraction of each machine group that runs the full
    #: per-machine inverse-CDF draw.  The default ``1.0`` is *exact mode* —
    #: every machine is drawn individually, byte-identical at any worker
    #: count.  Below 1.0 only a deterministically chosen sample of machines
    #: (per group and per colocation class) is drawn; the rest contribute
    #: their closed-form expected histogram from the calibrated row model.
    sample_fraction: float = 1.0
    #: Floor on sampled machines per group per colocation class, so canary
    #: classes and small groups are always fully drawn even at tiny
    #: ``sample_fraction``.
    min_sampled_machines: int = 256
    seed: int = 7
    #: Optional deterministic fault plan.  Hash-transparent while unset, so a
    #: fault-free fleet hashes (and therefore caches) exactly as before the
    #: fault subsystem existed.
    faults: Optional[FaultPlanSpec] = field(
        default=None, metadata=_HASH_OMIT_IF_DEFAULT
    )

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigError("a fleet needs at least one machine group")
        if self.bucket_seconds <= 0 or self.diurnal_period <= 0:
            raise ConfigError("bucket_seconds and diurnal_period must be positive")
        if self.samples_per_machine_bucket < 1:
            raise ConfigError("samples_per_machine_bucket must be >= 1")
        if self.min_colocated_samples_per_bucket < 1:
            raise ConfigError("min_colocated_samples_per_bucket must be >= 1")
        if len(self.calibration_qps) < 2:
            raise ConfigError("need at least two calibration load points")
        if any(qps <= 0 for qps in self.calibration_qps):
            raise ConfigError("calibration load points must be positive")
        if list(self.calibration_qps) != sorted(set(self.calibration_qps)):
            raise ConfigError("calibration load points must be strictly increasing")
        if self.calibration_duration <= 0 or self.calibration_warmup < 0:
            raise ConfigError("calibration duration must be > 0 and warmup >= 0")
        if self.shard_machines < 1:
            raise ConfigError("shard_machines must be >= 1")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ConfigError("sample_fraction must be in (0, 1]")
        if self.min_sampled_machines < 1:
            raise ConfigError("min_sampled_machines must be >= 1")

    @property
    def total_machines(self) -> int:
        return sum(group.machines for group in self.groups)

    def replace(self, **changes) -> "FleetSpec":
        """Return a copy with ``changes`` applied (thin dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **changes)


# --------------------------------------------------------------------------- experiment
@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to run one single-machine colocation experiment."""

    machine: MachineSpec = field(default_factory=MachineSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    indexserve: IndexServeSpec = field(default_factory=IndexServeSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    perfiso: Optional[PerfIsoSpec] = None
    cpu_bully: Optional[CpuBullySpec] = None
    disk_bully: Optional[DiskBullySpec] = None
    hdfs: Optional[HdfsSpec] = None
    ml_training: Optional[MlTrainingSpec] = None
    #: Additional named secondaries beyond the singleton fields above, so one
    #: machine can co-locate arbitrary mixes (e.g. two CPU bullies of
    #: different sizes, or CPU bully + disk bully + ML training at once).
    extra_secondaries: Tuple[SecondaryJobSpec, ...] = ()
    seed: int = 1
    #: Optional deterministic fault plan.  Hash-transparent while unset: a
    #: spec without faults keeps the exact content hash it had before the
    #: fault subsystem existed (pinned by the golden suite).
    faults: Optional[FaultPlanSpec] = field(
        default=None, metadata=_HASH_OMIT_IF_DEFAULT
    )

    def replace(self, **changes) -> "ExperimentSpec":
        """Return a copy with ``changes`` applied (thin dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **changes)

    def secondary_jobs(self) -> Tuple[SecondaryJobSpec, ...]:
        """Every secondary as a named job, singleton fields first.

        The singleton fields keep their historical tenant names so existing
        specs simulate bit-identically (random streams are keyed by name).
        """
        jobs = []
        for name, kind, spec in (
            ("cpu-bully", "cpu_bully", self.cpu_bully),
            ("disk-bully", "disk_bully", self.disk_bully),
            ("hdfs", "hdfs", self.hdfs),
            ("ml-training", "ml_training", self.ml_training),
        ):
            if spec is not None:
                jobs.append(SecondaryJobSpec(name, **{kind: spec}))
        jobs.extend(self.extra_secondaries)
        return tuple(jobs)


# --------------------------------------------------------------------------- campaign
@dataclass(frozen=True)
class CampaignSpec:
    """A multi-seed replicate sweep of one registered scenario.

    The campaign layer (:mod:`repro.reporting.campaign`) runs ``replicates``
    executions of ``scenario``, each under a seed derived deterministically
    from ``base_seed`` (replicate 0 *is* ``base_seed``, so the historical
    single-seed run is the first replicate and is served from the result
    cache when it was ever computed before), then reports per-metric
    mean/stddev/95% CI instead of single-seed point estimates.

    ``grid`` optionally overrides the scenario's axis grids, exactly like the
    matrix CLI's ``--grid``; ``qps``/``duration``/``warmup`` are the common
    builder overrides and are forwarded only where the builder accepts them.
    """

    scenario: str
    replicates: int = 5
    base_seed: int = 1
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    qps: Optional[float] = None
    duration: Optional[float] = None
    warmup: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.scenario or not isinstance(self.scenario, str):
            raise ConfigError("a campaign needs a non-empty scenario name")
        if self.replicates < 1:
            raise ConfigError(f"replicates must be >= 1, got {self.replicates}")
        for axis, values in self.grid:
            if not axis or not isinstance(axis, str):
                raise ConfigError("campaign grid axes must be non-empty strings")
            if not values:
                raise ConfigError(f"campaign grid axis {axis!r} has no values")
        if self.qps is not None and self.qps <= 0:
            raise ConfigError("campaign qps override must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ConfigError("campaign duration override must be positive")
        if self.warmup is not None and self.warmup < 0:
            raise ConfigError("campaign warmup override must be >= 0")

    def replace(self, **changes) -> "CampaignSpec":
        """Return a copy with ``changes`` applied (thin dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **changes)
