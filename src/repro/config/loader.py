"""Loading and saving configurations as cluster-wide JSON files.

The paper distributes PerfIso's static limits as cluster-wide configuration
files through Autopilot (Section 4).  This module provides the equivalent:
every spec dataclass in :mod:`repro.config.schema` can be serialised to and
from a plain JSON document, so deployments (:mod:`repro.cluster.autopilot`)
can ship one file to every machine and PerfIso can reload its state after a
crash.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Type, TypeVar, Union, get_args, get_origin, get_type_hints

from ..errors import ConfigError
from . import schema

__all__ = ["to_dict", "from_dict", "dump_json", "load_json", "save_file", "load_file"]

T = TypeVar("T")

_PATHLIKE = Union[str, Path]


def to_dict(spec: Any) -> Dict[str, Any]:
    """Convert a spec dataclass (possibly nested) into plain dictionaries."""
    if not dataclasses.is_dataclass(spec):
        raise ConfigError(f"to_dict expects a dataclass instance, got {type(spec).__name__}")
    return dataclasses.asdict(spec)


def _is_optional(annotation: Any) -> bool:
    return get_origin(annotation) is Union and type(None) in get_args(annotation)


def _unwrap_optional(annotation: Any) -> Any:
    args = [a for a in get_args(annotation) if a is not type(None)]
    return args[0] if args else Any


def from_dict(cls: Type[T], data: Optional[Dict[str, Any]]) -> T:
    """Rebuild a spec dataclass from a dictionary produced by :func:`to_dict`.

    Unknown keys are rejected (they usually indicate a typo in a cluster
    configuration file, which the paper's operators would want to catch before
    rollout rather than silently ignore).
    """
    if data is None:
        raise ConfigError(f"cannot build {cls.__name__} from None")
    if not dataclasses.is_dataclass(cls):
        raise ConfigError(f"from_dict expects a dataclass type, got {cls!r}")
    hints = get_type_hints(cls)
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(field_map)
    if unknown:
        raise ConfigError(f"unknown keys for {cls.__name__}: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        annotation = hints.get(name, Any)
        if _is_optional(annotation):
            if value is None:
                kwargs[name] = None
                continue
            annotation = _unwrap_optional(annotation)
        if dataclasses.is_dataclass(annotation) and isinstance(value, dict):
            kwargs[name] = from_dict(annotation, value)
        elif get_origin(annotation) is tuple and isinstance(value, list):
            kwargs[name] = tuple(tuple(item) if isinstance(item, list) else item for item in value)
        else:
            kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"failed to build {cls.__name__}: {exc}") from exc


def dump_json(spec: Any, indent: int = 2) -> str:
    """Serialise a spec to a JSON string."""
    return json.dumps(to_dict(spec), indent=indent, sort_keys=True)


def load_json(cls: Type[T], text: str) -> T:
    """Deserialise a spec of type ``cls`` from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON configuration: {exc}") from exc
    return from_dict(cls, data)


def save_file(spec: Any, path: _PATHLIKE) -> Path:
    """Write a spec to ``path`` as JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dump_json(spec), encoding="utf-8")
    return target


def load_file(cls: Type[T], path: _PATHLIKE) -> T:
    """Read a spec of type ``cls`` from a JSON file."""
    source = Path(path)
    if not source.exists():
        raise ConfigError(f"configuration file not found: {source}")
    return load_json(cls, source.read_text(encoding="utf-8"))


def load_experiment(path: _PATHLIKE) -> "schema.ExperimentSpec":
    """Convenience wrapper: load a full :class:`ExperimentSpec` from JSON."""
    return load_file(schema.ExperimentSpec, path)
