"""Cross-field validation of experiment configurations.

Individual dataclasses validate their own fields in ``__post_init__``; this
module checks the *relationships between* components that only make sense at
experiment-assembly time (e.g. the secondary's static core allocation cannot
exceed the machine's core count, the primary's memory footprint must fit in
RAM, buffer cores must leave at least one core for the primary).
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from .schema import ClusterSpec, ExperimentSpec, FaultPlanSpec, FleetSpec

__all__ = [
    "validate_experiment",
    "validate_cluster",
    "validate_fleet",
    "validate_fault_plan",
    "collect_warnings",
]


def validate_fault_plan(plan: FaultPlanSpec, horizon: float, context: str) -> None:
    """Cross-field checks of a fault plan against its run's time horizon.

    A fault window that opens after the run ends is almost always a unit
    mistake (seconds vs buckets); failing loudly beats silently injecting
    nothing.  ``context`` names the owning spec in error messages.
    """
    degraded = plan.degraded
    if degraded is not None and degraded.enabled and degraded.start >= horizon:
        raise ConfigError(
            f"{context}: degraded-core window starts at {degraded.start} s but the "
            f"run ends at {horizon} s; the fault would never fire"
        )
    telemetry = plan.telemetry
    if telemetry is not None and telemetry.enabled and telemetry.start >= horizon:
        raise ConfigError(
            f"{context}: telemetry fault window starts at {telemetry.start} s but "
            f"the run ends at {horizon} s; the fault would never fire"
        )
    crash = plan.controller_crash
    if crash is not None and crash.enabled and crash.at >= horizon:
        raise ConfigError(
            f"{context}: controller crash at {crash.at} s is past the end of the "
            f"run ({horizon} s); the fault would never fire"
        )
    machines = plan.machines
    if machines is not None and machines.enabled and machines.mean_downtime >= horizon:
        raise ConfigError(
            f"{context}: mean machine downtime ({machines.mean_downtime} s) is at "
            f"least the whole run ({horizon} s); a crashed machine would never "
            "restart inside the simulated window"
        )


def validate_experiment(spec: ExperimentSpec) -> None:
    """Raise :class:`ConfigError` if ``spec`` is internally inconsistent."""
    cores = spec.machine.logical_cores
    memory = spec.machine.memory_bytes

    if spec.indexserve.memory_footprint_bytes >= memory:
        raise ConfigError(
            "primary memory footprint "
            f"({spec.indexserve.memory_footprint_bytes} B) does not fit in machine memory "
            f"({memory} B)"
        )
    if spec.indexserve.workers_per_query_max > cores * 4:
        raise ConfigError(
            "workers_per_query_max is implausibly large for the machine "
            f"({spec.indexserve.workers_per_query_max} workers, {cores} cores)"
        )

    if spec.perfiso is not None:
        perfiso = spec.perfiso
        if perfiso.cpu_policy == "blind":
            if perfiso.blind.buffer_cores >= cores:
                raise ConfigError(
                    f"buffer_cores ({perfiso.blind.buffer_cores}) must be smaller than the "
                    f"machine's logical core count ({cores})"
                )
            if perfiso.blind.min_secondary_cores > cores - perfiso.blind.buffer_cores:
                raise ConfigError(
                    "min_secondary_cores cannot exceed cores remaining after the buffer"
                )
        if perfiso.cpu_policy == "static_cores":
            if perfiso.static_cores.secondary_cores > cores:
                raise ConfigError(
                    f"static secondary core allocation ({perfiso.static_cores.secondary_cores}) "
                    f"exceeds machine core count ({cores})"
                )
        if perfiso.cpu_policy in ("pid", "utilization"):
            sub = perfiso.pid if perfiso.cpu_policy == "pid" else perfiso.utilization
            if sub.reserve_cores >= cores:
                raise ConfigError(
                    f"{perfiso.cpu_policy} reserve_cores ({sub.reserve_cores}) must be "
                    f"smaller than the machine's logical core count ({cores})"
                )
            if sub.min_secondary_cores > cores - sub.reserve_cores:
                raise ConfigError(
                    f"{perfiso.cpu_policy} min_secondary_cores cannot exceed cores "
                    "remaining after the reserve"
                )
        if perfiso.cpu_policy in ("mpc", "oracle"):
            sub = perfiso.mpc if perfiso.cpu_policy == "mpc" else perfiso.oracle
            if sub.headroom_cores >= cores:
                raise ConfigError(
                    f"{perfiso.cpu_policy} headroom_cores ({sub.headroom_cores}) must be "
                    f"smaller than the machine's logical core count ({cores})"
                )
            if sub.min_secondary_cores > cores:
                raise ConfigError(
                    f"{perfiso.cpu_policy} min_secondary_cores ({sub.min_secondary_cores}) "
                    f"exceeds machine core count ({cores})"
                )
        if perfiso.poll_interval > spec.workload.duration:
            raise ConfigError("PerfIso poll interval is longer than the experiment itself")

    jobs = spec.secondary_jobs()
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ConfigError(
            f"secondary job names must be unique per experiment, duplicated: {duplicates}"
        )

    bully_threads = sum(
        job.tenant_spec.threads for job in jobs if job.kind == "cpu_bully"
    )
    if bully_threads > cores * 8:
        raise ConfigError(
            f"combined cpu bully thread count ({bully_threads}) is implausibly large "
            f"for {cores} cores"
        )

    secondary_memory = sum(job.memory_bytes for job in jobs)
    if spec.indexserve.memory_footprint_bytes + secondary_memory > memory * 1.5:
        raise ConfigError(
            "combined tenant memory footprint is more than 1.5x machine memory; "
            "the experiment would only measure swapping behaviour the simulator does not model"
        )

    if spec.workload.warmup >= spec.workload.total_time:
        raise ConfigError("warmup must leave measurable time in the experiment")

    flash = spec.workload.flash_crowd
    if flash is not None and flash.start >= spec.workload.total_time:
        raise ConfigError(
            f"flash crowd starts at {flash.start} s but the experiment ends at "
            f"{spec.workload.total_time} s; the workload would silently degenerate "
            "to its constant base rate"
        )

    if spec.faults is not None:
        if spec.faults.machines is not None and spec.faults.machines.enabled:
            raise ConfigError(
                "machine crash/restart faults apply to fleet specs; a "
                "single-machine experiment has no fleet to fail over to"
            )
        if spec.faults.config_push is not None and spec.faults.config_push.enabled:
            raise ConfigError(
                "config-push faults apply to fleet rollouts; a single-machine "
                "experiment performs no configuration pushes"
            )
        if (
            spec.faults.controller_crash is not None
            and spec.faults.controller_crash.enabled
            and spec.perfiso is None
        ):
            raise ConfigError(
                "a controller-crash fault needs a PerfIso controller to crash "
                "(spec.perfiso is None)"
            )
        validate_fault_plan(
            spec.faults, horizon=spec.workload.total_time, context="experiment"
        )


def validate_cluster(spec: ClusterSpec) -> None:
    """Raise :class:`ConfigError` if a cluster layout is inconsistent."""
    if spec.rows > spec.partitions * 4:
        raise ConfigError("more rows than is plausible for the number of partitions")
    if spec.request_timeout <= spec.network_hop_latency * 4:
        raise ConfigError("request timeout must exceed round-trip network overheads")


def validate_fleet(spec: FleetSpec) -> None:
    """Raise :class:`ConfigError` if a fleet configuration is inconsistent."""
    names = [group.name for group in spec.groups]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ConfigError(f"machine group names must be unique, duplicated: {duplicates}")
    for group in spec.groups:
        cores = group.machine.logical_cores
        if group.buffer_cores >= cores:
            raise ConfigError(
                f"group {group.name!r} buffer_cores ({group.buffer_cores}) must be "
                f"smaller than its machines' logical core count ({cores})"
            )
    total_buckets = spec.rollout.bake_buckets + len(spec.rollout.stage_fractions) * spec.rollout.stage_buckets
    if total_buckets * spec.bucket_seconds > spec.diurnal_period * 48:
        raise ConfigError(
            "the rollout spans more than 48 diurnal periods; shrink the bucket "
            "counts or bucket_seconds, or grow diurnal_period"
        )
    if spec.sample_fraction < 1.0:
        # Sampled (hyperscale) mode: the per-group P99 estimate rests on the
        # sampled machines' empirical draws, so each group class must yield a
        # statistically sufficient sample count per bucket (>= ~10 samples
        # above the 99th percentile).
        floor = spec.min_sampled_machines * spec.samples_per_machine_bucket
        if floor < 1024:
            raise ConfigError(
                "sampled fleet mode needs min_sampled_machines * "
                f"samples_per_machine_bucket >= 1024 for a stable P99, got {floor}; "
                "raise min_sampled_machines, raise samples_per_machine_bucket, "
                "or run exact mode (sample_fraction=1.0)"
            )
    if spec.faults is not None:
        validate_fault_plan(
            spec.faults,
            horizon=total_buckets * spec.bucket_seconds,
            context="fleet",
        )


def collect_warnings(spec: ExperimentSpec) -> List[str]:
    """Return non-fatal configuration smells, useful in example scripts."""
    warnings: List[str] = []
    cores = spec.machine.logical_cores
    if spec.perfiso is not None and spec.perfiso.cpu_policy == "blind":
        buffer_cores = spec.perfiso.blind.buffer_cores
        if buffer_cores < 4:
            warnings.append(
                f"buffer_cores={buffer_cores} is below the paper's recommended minimum (4); "
                "tail latency may degrade under bursts"
            )
        if buffer_cores > cores // 2:
            warnings.append(
                f"buffer_cores={buffer_cores} reserves more than half the machine; the "
                "secondary will make little progress"
            )
    if spec.workload.qps > 6000:
        warnings.append(
            f"qps={spec.workload.qps} is well above the paper's provisioned peak (4,000); "
            "the primary alone may saturate the machine"
        )
    if spec.workload.duration < 2.0:
        warnings.append("experiment duration under 2 s gives noisy tail-latency estimates")
    trace = spec.workload.trace
    if trace is not None and trace.duration < spec.workload.total_time:
        warnings.append(
            f"the replayed trace covers {trace.duration:g} s of a "
            f"{spec.workload.total_time:g} s experiment; replay wraps around cyclically"
        )
    bursty = spec.workload.bursty
    if bursty is not None and bursty.mean_normal_seconds > spec.workload.total_time:
        warnings.append(
            "the bursty mean dwell time exceeds the experiment window; most seeds "
            "will never leave the normal state"
        )
    return warnings
