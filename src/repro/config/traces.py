"""Loading, validating and saving replayable workload trace files.

A trace file is a sequence of timestamped QPS buckets — the portable form of
:class:`~repro.config.schema.TraceSpec`.  Two formats are supported:

* **JSONL** — an optional header object carrying metadata followed by one
  ``{"t": <seconds>, "qps": <rate>}`` object per bucket::

      {"format": "perfiso-trace", "version": 1, "bucket_seconds": 60.0, "source": "synthetic:diurnal"}
      {"t": 0.0, "qps": 1612.5}
      {"t": 60.0, "qps": 1650.1}

* **CSV** — a ``t,qps`` header row followed by one row per bucket.

Floats are written with ``repr`` (shortest round-trip form), so synthesize ->
save -> load -> replay is bit-identical; the round-trip tests pin this.  The
validator enforces what the simulator needs: timestamps start at zero, are
strictly increasing and uniformly spaced, and rates are finite and
non-negative.  Anything else is a :class:`~repro.errors.ConfigError` — a
malformed trace should fail at load time, not three hours into a fleet run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from .schema import TraceSpec

__all__ = [
    "TRACE_FORMATS",
    "dump_trace_text",
    "parse_trace_text",
    "save_trace_file",
    "load_trace_file",
]

TRACE_FORMATS = ("jsonl", "csv")

#: Relative tolerance for "uniformly spaced" timestamp checks.
_SPACING_RTOL = 1e-9

_PATHLIKE = Union[str, Path]


def _format_for(path: _PATHLIKE, fmt: Optional[str]) -> str:
    if fmt is None:
        suffix = Path(path).suffix.lower().lstrip(".")
        fmt = {"jsonl": "jsonl", "json": "jsonl", "csv": "csv"}.get(suffix)
        if fmt is None:
            raise ConfigError(
                f"cannot infer trace format from {Path(path).name!r}; "
                f"pass fmt= one of {TRACE_FORMATS}"
            )
    if fmt not in TRACE_FORMATS:
        raise ConfigError(f"trace format must be one of {TRACE_FORMATS}, got {fmt!r}")
    return fmt


def _validate_rows(times: Sequence[float], header_bucket: Optional[float]) -> float:
    """Check timestamp structure and return the bucket width."""
    if not times:
        raise ConfigError("trace file has no data rows")
    if times[0] != 0.0:
        raise ConfigError(f"trace timestamps must start at 0.0, got {times[0]!r}")
    if len(times) == 1:
        if header_bucket is None:
            raise ConfigError(
                "a single-bucket trace needs a header with bucket_seconds "
                "(bucket width cannot be derived from one timestamp)"
            )
        return header_bucket
    bucket = times[1] - times[0]
    if bucket <= 0:
        raise ConfigError("trace timestamps must be strictly increasing")
    for index in range(1, len(times)):
        gap = times[index] - times[index - 1]
        if gap <= 0:
            raise ConfigError(
                f"trace timestamps must be strictly increasing "
                f"(row {index}: {times[index]!r} after {times[index - 1]!r})"
            )
        if abs(gap - bucket) > _SPACING_RTOL * max(bucket, gap):
            raise ConfigError(
                f"trace timestamps must be uniformly spaced "
                f"(row {index} gap {gap!r} != bucket width {bucket!r})"
            )
    if header_bucket is not None and abs(header_bucket - bucket) > _SPACING_RTOL * bucket:
        raise ConfigError(
            f"trace header bucket_seconds ({header_bucket!r}) disagrees with "
            f"the timestamp spacing ({bucket!r})"
        )
    return bucket


def _row_values(row: object, lineno: int) -> Tuple[float, float]:
    if not isinstance(row, dict) or "t" not in row or "qps" not in row:
        raise ConfigError(f"trace line {lineno} must be an object with 't' and 'qps' keys")
    try:
        return float(row["t"]), float(row["qps"])
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"trace line {lineno} has non-numeric values: {exc}") from exc


def dump_trace_text(trace: TraceSpec, fmt: str = "jsonl") -> str:
    """Serialise ``trace`` to JSONL or CSV text."""
    if fmt not in TRACE_FORMATS:
        raise ConfigError(f"trace format must be one of {TRACE_FORMATS}, got {fmt!r}")
    bucket = trace.bucket_seconds
    if fmt == "csv":
        if len(trace.qps) == 1:
            # CSV has no header to carry bucket_seconds, so a single-bucket
            # file could never be loaded back; fail at write time instead.
            raise ConfigError(
                "a single-bucket trace cannot round-trip through CSV "
                "(no header carries bucket_seconds); use JSONL"
            )
        lines = ["t,qps"]
        lines.extend(
            f"{repr(index * bucket)},{repr(value)}" for index, value in enumerate(trace.qps)
        )
        return "\n".join(lines) + "\n"
    header = {
        "format": "perfiso-trace",
        "version": 1,
        "bucket_seconds": bucket,
        "source": trace.source,
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps({"t": index * bucket, "qps": value}) for index, value in enumerate(trace.qps)
    )
    return "\n".join(lines) + "\n"


def parse_trace_text(text: str, fmt: str = "jsonl", source: Optional[str] = None) -> TraceSpec:
    """Parse and validate JSONL or CSV trace text into a :class:`TraceSpec`."""
    if fmt not in TRACE_FORMATS:
        raise ConfigError(f"trace format must be one of {TRACE_FORMATS}, got {fmt!r}")
    times: List[float] = []
    qps: List[float] = []
    header_bucket: Optional[float] = None
    header_source: Optional[str] = None
    lines = [line.strip() for line in text.splitlines()]
    rows = [line for line in lines if line]
    # Error messages count 1-based non-blank file lines (the CSV header and
    # the optional JSONL metadata header are line 1), so both formats point
    # at the same place an editor would.
    if fmt == "csv":
        if not rows or rows[0].replace(" ", "") != "t,qps":
            raise ConfigError("CSV trace must begin with a 't,qps' header row")
        for lineno, line in enumerate(rows[1:], start=2):
            parts = line.split(",")
            if len(parts) != 2:
                raise ConfigError(f"CSV trace line {lineno} must have two columns")
            try:
                times.append(float(parts[0]))
                qps.append(float(parts[1]))
            except ValueError as exc:
                raise ConfigError(f"CSV trace line {lineno} is not numeric: {exc}") from exc
    else:
        for lineno, line in enumerate(rows, start=1):
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"trace line {lineno} is not valid JSON: {exc}") from exc
            is_header = (
                lineno == 1
                and isinstance(row, dict)
                and ("bucket_seconds" in row or "format" in row)
            )
            if is_header:
                if row.get("format", "perfiso-trace") != "perfiso-trace":
                    raise ConfigError(f"unsupported trace format tag {row.get('format')!r}")
                if row.get("version", 1) != 1:
                    raise ConfigError(f"unsupported trace version {row.get('version')!r}")
                if "bucket_seconds" in row:
                    header_bucket = float(row["bucket_seconds"])
                raw_source = row.get("source")
                header_source = str(raw_source) if raw_source is not None else None
                continue
            t, rate = _row_values(row, lineno)
            times.append(t)
            qps.append(rate)
    bucket = _validate_rows(times, header_bucket)
    if source is None:
        source = header_source if header_source is not None else "file"
    return TraceSpec(bucket_seconds=bucket, qps=tuple(qps), source=source)


def save_trace_file(trace: TraceSpec, path: _PATHLIKE, fmt: Optional[str] = None) -> Path:
    """Write ``trace`` to ``path`` (format inferred from the suffix) and return it."""
    resolved_fmt = _format_for(path, fmt)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(dump_trace_text(trace, resolved_fmt), encoding="utf-8")
    return target


def load_trace_file(
    path: _PATHLIKE, fmt: Optional[str] = None, source: Optional[str] = None
) -> TraceSpec:
    """Read, validate and return the trace stored at ``path``.

    ``source`` overrides the provenance label; by default JSONL traces keep
    the label stored in their header and CSV traces are labelled ``"file"``.
    """
    resolved_fmt = _format_for(path, fmt)
    target = Path(path)
    if not target.exists():
        raise ConfigError(f"trace file not found: {target}")
    return parse_trace_text(target.read_text(encoding="utf-8"), resolved_fmt, source=source)
