"""Open-loop query clients.

The paper's load generator replays the trace in an *open loop*: arrivals
follow a Poisson process at a configured rate regardless of how the server is
coping, so an overloaded server accumulates a backlog instead of implicitly
slowing the client down.  This property is essential — it is what turns a few
milliseconds of scheduling delay into the 29x tail blow-up of Figure 4.

Two clients are provided: a constant-rate client (single-machine and cluster
experiments) and a time-varying client driven by a rate function (the diurnal
load of the Figure 10 production experiment).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from ..errors import TenantError
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from .query_trace import QueryDescriptor, QueryTrace

__all__ = ["OpenLoopClient", "VariableRateClient"]

#: Callable invoked for every arriving query.
SubmitFn = Callable[[QueryDescriptor, float], None]


class OpenLoopClient:
    """Constant-rate open-loop (Poisson or uniform) query submitter."""

    def __init__(
        self,
        engine: SimulationEngine,
        trace: QueryTrace,
        qps: float,
        duration: float,
        submit: SubmitFn,
        rng: np.random.Generator,
        arrival_process: str = "poisson",
        start_time: float = 0.0,
    ) -> None:
        if qps <= 0:
            raise TenantError("qps must be positive")
        if duration <= 0:
            raise TenantError("duration must be positive")
        if arrival_process not in ("poisson", "uniform"):
            raise TenantError("arrival_process must be 'poisson' or 'uniform'")
        self._engine = engine
        self._iterator: Iterator[QueryDescriptor] = trace.cycle()
        self._qps = qps
        self._end_time = start_time + duration
        self._submit = submit
        self._rng = rng
        self._arrival_process = arrival_process
        self._start_time = start_time
        self.submitted = 0
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self) -> None:
        """Schedule the first arrival."""
        first_delay = max(0.0, self._start_time - self._engine.now) + self._next_gap()
        self._engine.schedule(first_delay, self._arrive, priority=EventPriority.TENANT)

    # ------------------------------------------------------------- internals
    def _next_gap(self) -> float:
        if self._arrival_process == "poisson":
            return float(self._rng.exponential(1.0 / self._qps))
        return 1.0 / self._qps

    def _arrive(self) -> None:
        now = self._engine.now
        if now >= self._end_time:
            self._finished = True
            return
        query = next(self._iterator)
        self.submitted += 1
        self._submit(query, now)
        self._engine.schedule(self._next_gap(), self._arrive, priority=EventPriority.TENANT)


class VariableRateClient:
    """Open-loop client whose rate follows ``rate_fn(now)`` queries/second.

    The arrival process is a piecewise-constant-rate Poisson process: the rate
    is re-evaluated at every arrival, which is accurate as long as the rate
    changes slowly relative to the inter-arrival gap (true for diurnal load).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        trace: QueryTrace,
        rate_fn: Callable[[float], float],
        duration: float,
        submit: SubmitFn,
        rng: np.random.Generator,
        start_time: float = 0.0,
        min_rate: float = 1.0,
    ) -> None:
        if duration <= 0:
            raise TenantError("duration must be positive")
        if min_rate <= 0:
            raise TenantError("min_rate must be positive")
        self._engine = engine
        self._iterator = trace.cycle()
        self._rate_fn = rate_fn
        self._end_time = start_time + duration
        self._submit = submit
        self._rng = rng
        self._min_rate = min_rate
        self._start_time = start_time
        self.submitted = 0
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self) -> None:
        delay = max(0.0, self._start_time - self._engine.now) + self._gap(self._engine.now)
        self._engine.schedule(delay, self._arrive, priority=EventPriority.TENANT)

    def current_rate(self, now: Optional[float] = None) -> float:
        time = self._engine.now if now is None else now
        return max(self._min_rate, float(self._rate_fn(time)))

    # ------------------------------------------------------------- internals
    def _gap(self, now: float) -> float:
        return float(self._rng.exponential(1.0 / self.current_rate(now)))

    def _arrive(self) -> None:
        now = self._engine.now
        if now >= self._end_time:
            self._finished = True
            return
        query = next(self._iterator)
        self.submitted += 1
        self._submit(query, now)
        self._engine.schedule(self._gap(now), self._arrive, priority=EventPriority.TENANT)
