"""Open-loop query clients.

The paper's load generator replays the trace in an *open loop*: arrivals
follow a Poisson process at a configured rate regardless of how the server is
coping, so an overloaded server accumulates a backlog instead of implicitly
slowing the client down.  This property is essential — it is what turns a few
milliseconds of scheduling delay into the 29x tail blow-up of Figure 4.

Two clients are provided: a constant-rate client (single-machine and cluster
experiments) and a time-varying client driven by a rate function (the diurnal
load of the Figure 10 production experiment).

Performance note: inter-arrival gaps are pre-drawn from the RNG in batches of
standard exponentials and scaled at use.  NumPy draws a size-``n`` batch from
exactly the same underlying bit stream as ``n`` single draws, and
``Generator.exponential(scale)`` is itself ``standard_exponential() * scale``,
so the generated arrival times are bit-identical to the per-arrival draws the
clients used to make — only the per-query RNG-call overhead disappears.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from ..errors import TenantError
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from ..simulation.randomness import BatchedDraws
from .query_trace import QueryDescriptor, QueryTrace

__all__ = ["OpenLoopClient", "VariableRateClient"]

#: Callable invoked for every arriving query.
SubmitFn = Callable[[QueryDescriptor, float], None]


def _exponential_gaps(rng: np.random.Generator) -> BatchedDraws:
    """Batched standard-exponential gap draws (scaled by 1/rate at use)."""
    return BatchedDraws(rng.standard_exponential)


class OpenLoopClient:
    """Constant-rate open-loop (Poisson or uniform) query submitter."""

    def __init__(
        self,
        engine: SimulationEngine,
        trace: QueryTrace,
        qps: float,
        duration: float,
        submit: SubmitFn,
        rng: np.random.Generator,
        arrival_process: str = "poisson",
        start_time: float = 0.0,
    ) -> None:
        if qps <= 0:
            raise TenantError("qps must be positive")
        if duration <= 0:
            raise TenantError("duration must be positive")
        if arrival_process not in ("poisson", "uniform"):
            raise TenantError("arrival_process must be 'poisson' or 'uniform'")
        self._engine = engine
        self._iterator: Iterator[QueryDescriptor] = trace.cycle()
        self._qps = qps
        self._scale = 1.0 / qps
        self._end_time = start_time + duration
        self._submit = submit
        self._poisson = arrival_process == "poisson"
        self._gaps = _exponential_gaps(rng) if self._poisson else None
        self._start_time = start_time
        self.submitted = 0
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self) -> None:
        """Schedule the first arrival."""
        first_delay = max(0.0, self._start_time - self._engine.now) + self._next_gap()
        self._engine.schedule(first_delay, self._arrive, priority=EventPriority.TENANT)

    # ------------------------------------------------------------- internals
    def _next_gap(self) -> float:
        if self._poisson:
            return float(self._gaps.next() * self._scale)
        return self._scale

    def _arrive(self) -> None:
        now = self._engine.now
        if now >= self._end_time:
            self._finished = True
            return
        query = next(self._iterator)
        self.submitted += 1
        self._submit(query, now)
        self._engine.schedule(self._next_gap(), self._arrive, priority=EventPriority.TENANT)


class VariableRateClient:
    """Open-loop client whose rate follows ``rate_fn(now)`` queries/second.

    The arrival process is a piecewise-constant-rate Poisson process: the rate
    is re-evaluated at every arrival, which is accurate as long as the rate
    changes slowly relative to the inter-arrival gap (true for diurnal load).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        trace: QueryTrace,
        rate_fn: Callable[[float], float],
        duration: float,
        submit: SubmitFn,
        rng: np.random.Generator,
        start_time: float = 0.0,
        min_rate: float = 1.0,
        idle_recheck: Optional[float] = None,
    ) -> None:
        if duration <= 0:
            raise TenantError("duration must be positive")
        if min_rate <= 0:
            raise TenantError("min_rate must be positive")
        if idle_recheck is not None and idle_recheck <= 0:
            raise TenantError("idle_recheck must be positive")
        self._engine = engine
        self._iterator = trace.cycle()
        self._rate_fn = rate_fn
        self._end_time = start_time + duration
        self._submit = submit
        self._gaps = _exponential_gaps(rng)
        self._min_rate = min_rate
        #: When set, a zero rate suspends submissions entirely: the client
        #: polls the rate function every ``idle_recheck`` seconds (consuming
        #: no RNG draws, so the gap sequence after the idle window is
        #: unchanged) instead of scheduling a floored-rate arrival.  Without
        #: it ``min_rate`` doubles as both floor and re-evaluation heartbeat,
        #: which silently drives traffic through idle trace buckets.
        self._idle_recheck = idle_recheck
        self._start_time = start_time
        self.submitted = 0
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def start(self) -> None:
        lead = max(0.0, self._start_time - self._engine.now)
        if self._idle(self._engine.now + lead):
            self._engine.schedule(
                lead + self._idle_recheck, self._recheck, priority=EventPriority.TENANT
            )
            return
        # The first gap is paced by the rate at the start time, not at the
        # (possibly earlier) current time; for the default start_time=0 the
        # two coincide and the draw scaling is unchanged.
        delay = lead + self._gap(self._engine.now + lead)
        self._engine.schedule(delay, self._arrive, priority=EventPriority.TENANT)

    def current_rate(self, now: Optional[float] = None) -> float:
        time = self._engine.now if now is None else now
        return max(self._min_rate, float(self._rate_fn(time)))

    # ------------------------------------------------------------- internals
    def _gap(self, now: float) -> float:
        # Scale exactly as Generator.exponential(1.0 / rate) would, so the
        # gap sequence stays bit-identical to the unbatched draws.
        return float(self._gaps.next() * (1.0 / self.current_rate(now)))

    def _idle(self, now: float) -> bool:
        return self._idle_recheck is not None and self._rate_fn(now) <= 0.0

    def _recheck(self) -> None:
        """Poll an idle rate function until it comes back to life."""
        now = self._engine.now
        if now >= self._end_time:
            self._finished = True
            return
        if self._idle(now):
            self._engine.schedule(self._idle_recheck, self._recheck, priority=EventPriority.TENANT)
            return
        self._engine.schedule(self._gap(now), self._arrive, priority=EventPriority.TENANT)

    def _arrive(self) -> None:
        now = self._engine.now
        if now >= self._end_time:
            self._finished = True
            return
        if self._idle(now):
            # The rate hit zero while this arrival was in flight; drop into
            # polling without submitting.
            self._engine.schedule(self._idle_recheck, self._recheck, priority=EventPriority.TENANT)
            return
        query = next(self._iterator)
        self.submitted += 1
        self._submit(query, now)
        self._engine.schedule(self._gap(now), self._arrive, priority=EventPriority.TENANT)
