"""Command-line trace tooling: synthesize, validate and inspect trace files.

Synthesize a replayable trace file from one of the parametric arrival
models::

    python -m repro.workloads --synthesize diurnal --peak-qps 4000 \\
        --trough-qps 1600 --period 3600 --duration 3600 --bucket-seconds 60 \\
        --out diurnal.jsonl

    python -m repro.workloads --synthesize bursty --base-qps 2000 \\
        --burst-qps 6000 --seed 7 --duration 120 --bucket-seconds 0.5 \\
        --out bursty.csv

Validate (and summarise) an existing trace file::

    python -m repro.workloads --validate diurnal.jsonl

Synthesis draws only from the named ``"arrival-model"`` stream of the given
seed, so a (model, parameters, seed) triple always produces byte-identical
trace files — generation and replay round-trip exactly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..cli import EXIT_OK, EXIT_USAGE, add_bundle_option, add_seed_option
from ..config.schema import BurstySpec, DiurnalSpec, FlashCrowdSpec, TraceSpec
from ..config.traces import TRACE_FORMATS, load_trace_file, save_trace_file
from ..errors import ConfigError, TenantError
from ..simulation.randomness import RandomStreams
from .arrival_models import (
    ARRIVAL_MODEL_STREAM,
    BurstyArrival,
    DiurnalArrival,
    FlashCrowdArrival,
    synthesize_trace,
)

MODELS = ("diurnal", "bursty", "flash-crowd")


def _build_model(args: argparse.Namespace):
    if args.synthesize == "diurnal":
        return DiurnalArrival(
            DiurnalSpec(
                peak_qps=args.peak_qps,
                trough_qps=args.trough_qps,
                period=args.period,
                phase_offset=args.phase_offset,
            )
        )
    if args.synthesize == "bursty":
        rng = RandomStreams(args.seed).stream(ARRIVAL_MODEL_STREAM)
        return BurstyArrival(
            BurstySpec(
                base_qps=args.base_qps,
                burst_qps=args.burst_qps,
                mean_normal_seconds=args.mean_normal,
                mean_burst_seconds=args.mean_burst,
            ),
            horizon=args.duration,
            rng=rng,
        )
    return FlashCrowdArrival(
        FlashCrowdSpec(
            base_qps=args.base_qps,
            spike_qps=args.spike_qps,
            start=args.spike_start,
            ramp=args.ramp,
            hold=args.hold,
            decay=args.decay,
        )
    )


def _summarise(trace: TraceSpec, label: str) -> str:
    return (
        f"{label}: {len(trace.qps)} buckets x {trace.bucket_seconds:g} s "
        f"({trace.duration:g} s total), qps mean {trace.mean_qps:.1f} "
        f"min {min(trace.qps):.1f} max {trace.peak_qps:.1f}, "
        f"source {trace.source!r}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Synthesize and validate replayable workload trace files.",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--synthesize",
        choices=MODELS,
        help="emit a trace file from a parametric arrival model",
    )
    action.add_argument(
        "--validate",
        metavar="PATH",
        help="load an existing trace file, validate it and print a summary",
    )
    parser.add_argument("--out", metavar="PATH", help="output trace file path")
    parser.add_argument(
        "--format",
        choices=TRACE_FORMATS,
        default=None,
        help="trace file format (default: inferred from the path suffix)",
    )
    parser.add_argument("--duration", type=float, default=60.0, help="trace length (s)")
    parser.add_argument(
        "--bucket-seconds", type=float, default=1.0, help="width of one QPS bucket (s)"
    )
    add_seed_option(parser, default=0, help="seed for stochastic models")
    add_bundle_option(parser)
    # Diurnal parameters.
    parser.add_argument("--peak-qps", type=float, default=4000.0)
    parser.add_argument("--trough-qps", type=float, default=1600.0)
    parser.add_argument("--period", type=float, default=3600.0)
    parser.add_argument("--phase-offset", type=float, default=0.0)
    # Bursty parameters.
    parser.add_argument("--base-qps", type=float, default=2000.0)
    parser.add_argument("--burst-qps", type=float, default=6000.0)
    parser.add_argument("--mean-normal", type=float, default=4.0)
    parser.add_argument("--mean-burst", type=float, default=1.0)
    # Flash-crowd parameters.
    parser.add_argument("--spike-qps", type=float, default=6000.0)
    parser.add_argument("--spike-start", type=float, default=4.0)
    parser.add_argument("--ramp", type=float, default=0.5)
    parser.add_argument("--hold", type=float, default=2.0)
    parser.add_argument("--decay", type=float, default=2.0)
    args = parser.parse_args(argv)

    try:
        if args.validate:
            trace = load_trace_file(args.validate, fmt=args.format)
            print(_summarise(trace, args.validate))
            if args.bundle:
                _write_trace_bundle(args.bundle, trace, args.validate, seed=args.seed)
            return EXIT_OK
        if not args.out:
            parser.error("--synthesize requires --out PATH")
        model = _build_model(args)
        trace = synthesize_trace(model, duration=args.duration, bucket_seconds=args.bucket_seconds)
        path = save_trace_file(trace, args.out, fmt=args.format)
        print(_summarise(trace, str(path)))
        if args.bundle:
            _write_trace_bundle(
                args.bundle, trace, str(path), seed=args.seed, model=args.synthesize
            )
        return EXIT_OK
    except (ConfigError, TenantError) as error:
        from ..telemetry.log import get_logger

        get_logger("repro.workloads").error("command failed", error=str(error))
        return EXIT_USAGE


def _write_trace_bundle(directory, trace: TraceSpec, label: str, seed: int, model=None):
    """Capture a synthesized or validated trace as a run-artifact bundle."""
    from ..reporting.bundle import write_bundle
    from ..runtime import spec_hash

    rows = [
        {"bucket": index, "t": index * trace.bucket_seconds, "qps": qps}
        for index, qps in enumerate(trace.qps)
    ]
    meta = {
        "trace": label,
        "buckets": len(trace.qps),
        "bucket_seconds": trace.bucket_seconds,
        "mean_qps": trace.mean_qps,
        "peak_qps": trace.peak_qps,
        "source": trace.source,
    }
    if model is not None:
        meta["model"] = model
    write_bundle(
        directory,
        kind="workloads",
        name=model or label,
        rows=rows,
        seeds=[seed],
        spec_hashes=[spec_hash(trace)],
        meta=meta,
    )


if __name__ == "__main__":
    sys.exit(main())
