"""Service-time and fan-out models for the synthetic primary workload.

The paper never publishes IndexServe's internal service-time distribution, so
we model each query as a *pack* of short worker bursts whose parameters are
calibrated to reproduce the published standalone behaviour (P50 ~4 ms,
P99 ~12 ms, ~20 %/40 % CPU busy at 2,000/4,000 QPS on 48 logical cores).
Log-normal bursts capture the heavy right tail that search ranking stages
exhibit, and the per-query fan-out captures the burstiness (up to 15 threads
becoming ready within microseconds) that motivates buffer cores.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config.schema import IndexServeSpec
from ..errors import TenantError
from ..units import millis

__all__ = ["WorkerServiceTimeModel", "WorkerFanoutModel"]


class WorkerServiceTimeModel:
    """Log-normal CPU burst durations for individual index-lookup workers."""

    def __init__(self, spec: IndexServeSpec, rng: np.random.Generator) -> None:
        self._spec = spec
        self._rng = rng

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` worker burst durations (seconds)."""
        if count < 1:
            raise TenantError("must sample at least one worker burst")
        draws = self._rng.lognormal(
            mean=self._spec.worker_service_mu_ms, sigma=self._spec.worker_service_sigma, size=count
        )
        durations = draws * millis(1.0)
        return np.minimum(durations, self._spec.worker_service_cap)

    def mean_burst(self) -> float:
        """Analytical mean of the (uncapped) burst distribution, seconds."""
        mu = self._spec.worker_service_mu_ms
        sigma = self._spec.worker_service_sigma
        return float(np.exp(mu + sigma**2 / 2.0)) * millis(1.0)


class WorkerFanoutModel:
    """Number of worker threads spawned per query.

    A shifted Poisson bounded to ``[min, max]``: most queries fan out to a
    handful of index chunks, a small fraction touch many chunks at once —
    those are the bursts the idle-core buffer must absorb.
    """

    def __init__(self, spec: IndexServeSpec, rng: np.random.Generator) -> None:
        if spec.workers_per_query_min > spec.workers_per_query_max:
            raise TenantError("worker fan-out bounds are inverted")
        self._spec = spec
        self._rng = rng

    def sample(self) -> int:
        spec = self._spec
        lam = max(0.1, spec.workers_per_query_mean - spec.workers_per_query_min)
        value = spec.workers_per_query_min + int(self._rng.poisson(lam))
        return int(min(max(value, spec.workers_per_query_min), spec.workers_per_query_max))

    def sample_many(self, count: int) -> Sequence[int]:
        return [self.sample() for _ in range(count)]

    def expected_cpu_demand_per_query(self, service_model: WorkerServiceTimeModel) -> float:
        """Approximate core-seconds of CPU one query consumes.

        Useful for sanity-checking a configuration against a target CPU
        utilisation before running the simulation (see the calibration tests).
        """
        mean_workers = self._spec.workers_per_query_mean
        per_worker = service_model.mean_burst()
        overhead = self._spec.parse_cost + self._spec.aggregate_cost
        return mean_workers * per_worker + overhead
