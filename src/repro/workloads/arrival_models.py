"""Time-varying arrival-rate models and trace synthesis.

The paper's evaluation rests on IndexServe's *production* traffic shape —
diurnal swings and bursts are exactly what makes a static idle-core buffer
interesting — so the workload layer models four time-varying arrival
processes on top of the stationary clients in :mod:`repro.workloads.arrival`:

* :class:`DiurnalArrival` — sinusoidal day/night swing with a phase offset
  (shared with the fleet model's per-row curves, so the two cannot drift);
* :class:`BurstyArrival` — a two-state Markov-modulated Poisson process whose
  state path is pre-drawn from a named random stream;
* :class:`FlashCrowdArrival` — base load with a linear ramp/hold/decay spike;
* :class:`TraceArrival` — cyclic replay of a bucketed QPS trace
  (:class:`~repro.config.schema.TraceSpec`, loaded from JSONL/CSV files by
  :mod:`repro.config.traces`).

Every model is a deterministic rate function ``rate_at(t)``; driving it
through :class:`~repro.workloads.arrival.VariableRateClient` keeps the PR-4
batched standard-exponential gap draws, so arrival sequences stay
bit-identical at any worker count.  :func:`synthesize_trace` flattens any
parametric model into a replayable :class:`TraceSpec`, which is what the
``python -m repro.workloads`` CLI writes to trace files.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Optional

import numpy as np

from ..config.schema import (
    BurstySpec,
    DiurnalSpec,
    FlashCrowdSpec,
    TraceSpec,
    WorkloadSpec,
)
from ..errors import TenantError

__all__ = [
    "ArrivalModel",
    "ConstantArrival",
    "DiurnalArrival",
    "BurstyArrival",
    "FlashCrowdArrival",
    "TraceArrival",
    "build_arrival_model",
    "synthesize_trace",
]

#: Name of the random stream arrival models draw from (bursty state paths).
ARRIVAL_MODEL_STREAM = "arrival-model"


class ArrivalModel:
    """A deterministic instantaneous-rate function of simulated time."""

    #: Which workload field configured this model ("constant" for none).
    kind = "constant"

    def rate_at(self, t: float) -> float:
        """Offered queries/second at simulated time ``t``."""
        raise NotImplementedError

    def peak_rate(self, horizon: float) -> float:
        """The exact maximum rate over ``[0, horizon]``."""
        return self.peak_in(0.0, horizon)

    def peak_in(self, start: float, end: float) -> float:
        """The exact maximum rate over the window ``[start, end]``.

        Unlike sampling the rate curve, this cannot miss a spike or burst
        narrower than a sampling step; each model computes it analytically.
        """
        raise NotImplementedError


class ConstantArrival(ArrivalModel):
    """The stationary client's rate as a model (for uniform treatment)."""

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise TenantError("constant arrival rate must be positive")
        self._qps = qps

    def rate_at(self, t: float) -> float:
        return self._qps

    def peak_in(self, start: float, end: float) -> float:
        return self._qps


class DiurnalArrival(ArrivalModel):
    """Sinusoidal diurnal load.

    The arithmetic matches the fleet model's historical per-row curve term
    for term (``max(floor, mid + amplitude * cos(2*pi*(t/period + phase)))``)
    so :meth:`repro.fleet.model.FleetModel.load_at` can delegate here and stay
    bit-identical to its pre-refactor output.
    """

    kind = "diurnal"

    def __init__(self, spec: DiurnalSpec) -> None:
        self._spec = spec
        self._mid = (spec.peak_qps + spec.trough_qps) / 2.0
        self._amplitude = (spec.peak_qps - spec.trough_qps) / 2.0
        self._period = spec.period
        self._phase_offset = spec.phase_offset
        self._floor = spec.floor_qps

    @property
    def spec(self) -> DiurnalSpec:
        return self._spec

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * (t / self._period + self._phase_offset)
        return max(self._floor, self._mid + self._amplitude * math.cos(phase))

    def peak_in(self, start: float, end: float) -> float:
        # Peaks sit where t/period + phase_offset is an integer; if none
        # falls inside the window, the cosine is monotone towards/away from
        # the nearest trough and the maximum is at a window endpoint.
        first_peak = (
            math.ceil(start / self._period + self._phase_offset) - self._phase_offset
        ) * self._period
        if start <= first_peak <= end:
            return max(self._floor, self._spec.peak_qps)
        return max(self.rate_at(start), self.rate_at(end))


class BurstyArrival(ArrivalModel):
    """Two-state Markov-modulated Poisson process (normal <-> burst).

    The full state path over ``[0, horizon]`` is pre-drawn at construction
    from the named ``"arrival-model"`` stream — one exponential dwell draw per
    segment — so the rate function is pure thereafter and the arrival process
    is byte-identical no matter how the experiment is executed.  Past the
    horizon the last state persists.
    """

    kind = "bursty"

    def __init__(self, spec: BurstySpec, horizon: float, rng: np.random.Generator) -> None:
        if horizon <= 0:
            raise TenantError("bursty arrival horizon must be positive")
        self._spec = spec
        self._rates = (spec.base_qps, spec.burst_qps)
        means = (spec.mean_normal_seconds, spec.mean_burst_seconds)
        boundaries = []
        states = []
        state = 0
        now = 0.0
        while now < horizon:
            now += float(rng.exponential(means[state]))
            boundaries.append(now)
            states.append(state)
            state = 1 - state
        #: ``states[i]`` applies up to (not including) ``boundaries[i]``.
        self._boundaries = boundaries
        self._states = states

    @property
    def spec(self) -> BurstySpec:
        return self._spec

    @property
    def segments(self) -> int:
        return len(self._states)

    def rate_at(self, t: float) -> float:
        index = bisect_right(self._boundaries, t)
        if index >= len(self._states):
            index = len(self._states) - 1
        return self._rates[self._states[index]]

    def peak_in(self, start: float, end: float) -> float:
        first = min(bisect_right(self._boundaries, start), len(self._states) - 1)
        last = min(bisect_right(self._boundaries, end), len(self._states) - 1)
        if any(self._states[index] for index in range(first, last + 1)):
            return self._spec.burst_qps
        return self._spec.base_qps


class FlashCrowdArrival(ArrivalModel):
    """Base load with one linear ramp -> hold -> decay spike."""

    kind = "flash_crowd"

    def __init__(self, spec: FlashCrowdSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> FlashCrowdSpec:
        return self._spec

    def rate_at(self, t: float) -> float:
        spec = self._spec
        offset = t - spec.start
        if offset <= 0.0 or offset >= spec.end - spec.start:
            return spec.base_qps
        lift = spec.spike_qps - spec.base_qps
        if offset < spec.ramp:
            return spec.base_qps + lift * (offset / spec.ramp)
        offset -= spec.ramp
        if offset < spec.hold:
            return spec.spike_qps
        offset -= spec.hold
        return spec.base_qps + lift * (1.0 - offset / spec.decay)

    def peak_in(self, start: float, end: float) -> float:
        # The rate is piecewise linear, so the window maximum is attained at
        # a window endpoint or at a spike phase boundary inside the window.
        spec = self._spec
        candidates = [self.rate_at(start), self.rate_at(end)]
        for boundary in (
            spec.start + spec.ramp,
            spec.start + spec.ramp + spec.hold,
        ):
            if start <= boundary <= end:
                candidates.append(self.rate_at(boundary))
        return max(candidates)


class TraceArrival(ArrivalModel):
    """Cyclic piecewise-constant replay of a bucketed QPS trace."""

    kind = "trace"

    def __init__(self, spec: TraceSpec) -> None:
        self._spec = spec
        self._bucket_seconds = spec.bucket_seconds
        self._qps = spec.qps
        self._buckets = len(spec.qps)

    @property
    def spec(self) -> TraceSpec:
        return self._spec

    def rate_at(self, t: float) -> float:
        if t < 0.0:
            t = 0.0
        return self._qps[int(t / self._bucket_seconds) % self._buckets]

    def peak_in(self, start: float, end: float) -> float:
        first = int(max(0.0, start) / self._bucket_seconds)
        last = int(max(0.0, end) / self._bucket_seconds)
        if last - first + 1 >= self._buckets:
            return self._spec.peak_qps
        return max(self._qps[index % self._buckets] for index in range(first, last + 1))


def build_arrival_model(
    workload: WorkloadSpec,
    horizon: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> Optional[ArrivalModel]:
    """The runtime model for ``workload``'s arrival spec (``None`` = constant).

    ``horizon`` defaults to the workload's total time; ``rng`` (the named
    ``"arrival-model"`` stream) is only consumed by models that need draws —
    today the bursty state path — and is required for those.
    """
    spec = workload.arrival_model_spec
    if spec is None:
        return None
    if horizon is None:
        horizon = workload.total_time
    if isinstance(spec, DiurnalSpec):
        return DiurnalArrival(spec)
    if isinstance(spec, FlashCrowdSpec):
        return FlashCrowdArrival(spec)
    if isinstance(spec, TraceSpec):
        return TraceArrival(spec)
    if isinstance(spec, BurstySpec):
        if rng is None:
            raise TenantError(
                "bursty arrivals draw their state path from the "
                f"{ARRIVAL_MODEL_STREAM!r} stream; pass rng="
            )
        return BurstyArrival(spec, horizon=horizon, rng=rng)
    raise TenantError(f"unknown arrival model spec {type(spec).__name__}")


def synthesize_trace(
    model: ArrivalModel,
    duration: float,
    bucket_seconds: float,
    source: Optional[str] = None,
) -> TraceSpec:
    """Flatten ``model`` into a replayable bucketed trace.

    Each bucket records the model's rate at the bucket midpoint, so replaying
    the result through :class:`TraceArrival` reproduces the parametric model
    up to bucketing resolution — and reproduces *itself* exactly, which is
    what the round-trip tests pin down.
    """
    if duration <= 0 or bucket_seconds <= 0:
        raise TenantError("synthesize_trace needs positive duration and bucket size")
    # Enough buckets to cover the full duration (the last bucket may run a
    # fraction past it); rounding down would silently shorten the trace and
    # make exact-window replays wrap early.  The epsilon forgives float noise
    # in duration/bucket ratios that are exact by construction.
    buckets = max(1, math.ceil(duration / bucket_seconds - 1e-9))
    qps = tuple(float(model.rate_at((i + 0.5) * bucket_seconds)) for i in range(buckets))
    return TraceSpec(
        bucket_seconds=bucket_seconds,
        qps=qps,
        source=source if source is not None else f"synthetic:{model.kind}",
    )
