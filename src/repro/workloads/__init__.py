"""Workload generation: query traces, open-loop clients and arrival models."""

from .arrival import OpenLoopClient, VariableRateClient
from .arrival_models import (
    ArrivalModel,
    BurstyArrival,
    ConstantArrival,
    DiurnalArrival,
    FlashCrowdArrival,
    TraceArrival,
    build_arrival_model,
    synthesize_trace,
)
from .query_trace import QueryDescriptor, QueryTrace
from .service_time import WorkerFanoutModel, WorkerServiceTimeModel

__all__ = [
    "OpenLoopClient",
    "VariableRateClient",
    "ArrivalModel",
    "ConstantArrival",
    "DiurnalArrival",
    "BurstyArrival",
    "FlashCrowdArrival",
    "TraceArrival",
    "build_arrival_model",
    "synthesize_trace",
    "QueryDescriptor",
    "QueryTrace",
    "WorkerFanoutModel",
    "WorkerServiceTimeModel",
]
