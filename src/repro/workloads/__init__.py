"""Workload generation: synthetic query traces and open-loop clients."""

from .arrival import OpenLoopClient, VariableRateClient
from .query_trace import QueryDescriptor, QueryTrace
from .service_time import WorkerFanoutModel, WorkerServiceTimeModel

__all__ = [
    "OpenLoopClient",
    "VariableRateClient",
    "QueryDescriptor",
    "QueryTrace",
    "WorkerFanoutModel",
    "WorkerServiceTimeModel",
]
