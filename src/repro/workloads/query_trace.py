"""Synthetic query traces.

The paper replays a trace of 500k real user queries from early 2017.  That
trace is proprietary, so we generate a synthetic one: each query carries the
properties that actually influence the simulation — worker fan-out, per-worker
CPU demand, and which workers miss the in-memory index cache (and therefore
read from the SSD volume).  Traces are fully determined by ``(spec, seed)``
and can be replayed any number of times at any arrival rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..config.schema import IndexServeSpec
from ..errors import TenantError
from ..units import millis

__all__ = ["QueryDescriptor", "QueryTrace"]


@dataclass(frozen=True)
class QueryDescriptor:
    """The immutable description of one query in the trace."""

    query_id: int
    worker_demands: Tuple[float, ...]
    cache_misses: Tuple[bool, ...]

    @property
    def worker_count(self) -> int:
        return len(self.worker_demands)

    @property
    def total_cpu_demand(self) -> float:
        return float(sum(self.worker_demands))

    @property
    def miss_count(self) -> int:
        return sum(1 for miss in self.cache_misses if miss)


class QueryTrace:
    """A replayable sequence of :class:`QueryDescriptor` objects."""

    def __init__(
        self,
        spec: IndexServeSpec,
        size: int,
        rng: np.random.Generator,
    ) -> None:
        if size < 1:
            raise TenantError("a query trace needs at least one query")
        if spec.workers_per_query_min > spec.workers_per_query_max:
            raise TenantError("worker fan-out bounds are inverted")
        self._spec = spec
        self._queries: List[QueryDescriptor] = []
        # The generation loop below draws from the RNG in exactly the order
        # the fan-out / service-time model objects do (one Poisson scalar,
        # one log-normal batch, one uniform batch per query), with the
        # per-query model-object method calls and attribute chases hoisted —
        # trace construction runs once per experiment and showed up in
        # profiles.  See WorkerFanoutModel / WorkerServiceTimeModel for the
        # reference formulation; the two must stay draw-for-draw identical.
        min_workers = spec.workers_per_query_min
        max_workers = spec.workers_per_query_max
        lam = max(0.1, spec.workers_per_query_mean - min_workers)
        mu = spec.worker_service_mu_ms
        sigma = spec.worker_service_sigma
        cap = spec.worker_service_cap
        scale = millis(1.0)
        miss_rate = spec.cache_miss_rate
        poisson = rng.poisson
        lognormal = rng.lognormal
        random = rng.random
        minimum = np.minimum
        append = self._queries.append
        for query_id in range(size):
            workers = int(min(max(min_workers + int(poisson(lam)), min_workers), max_workers))
            if workers < 1:
                raise TenantError("must sample at least one worker burst")
            draws = lognormal(mean=mu, sigma=sigma, size=workers)
            demands = tuple(float(d) for d in minimum(draws * scale, cap))
            misses = tuple(bool(m) for m in random(workers) < miss_rate)
            append(
                QueryDescriptor(query_id=query_id, worker_demands=demands, cache_misses=misses)
            )

    def __len__(self) -> int:
        return len(self._queries)

    def __getitem__(self, index: int) -> QueryDescriptor:
        return self._queries[index]

    @property
    def spec(self) -> IndexServeSpec:
        return self._spec

    def queries(self) -> Sequence[QueryDescriptor]:
        return tuple(self._queries)

    def cycle(self) -> Iterator[QueryDescriptor]:
        """Iterate over the trace forever, wrapping around at the end."""
        index = 0
        size = len(self._queries)
        while True:
            yield self._queries[index]
            index = (index + 1) % size

    # ------------------------------------------------------------ statistics
    def mean_worker_count(self) -> float:
        return float(np.mean([q.worker_count for q in self._queries]))

    def mean_cpu_demand(self) -> float:
        """Mean core-seconds of worker CPU per query."""
        return float(np.mean([q.total_cpu_demand for q in self._queries]))

    def mean_miss_rate(self) -> float:
        total_workers = sum(q.worker_count for q in self._queries)
        total_misses = sum(q.miss_count for q in self._queries)
        return total_misses / total_workers if total_workers else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTrace(size={len(self._queries)}, mean_workers={self.mean_worker_count():.2f})"
