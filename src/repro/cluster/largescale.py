"""The 650-machine production experiment (Figure 10).

The paper's final result shows one hour of a 650-machine IndexServe cluster
serving live user traffic while colocated with a machine-learning training
job: query load follows a diurnal pattern, the TLA-level P99 stays flat, and
average CPU utilisation across the fleet sits around 70 %.

Reproducing an hour of 650 machines with the detailed simulator is not
feasible in Python, so this harness composes previously-validated pieces:

* a small set of *calibration runs* of the detailed single-machine simulator
  (blind isolation + ML-training secondary) at a handful of load points gives,
  for each load, the local latency sample distribution and the CPU breakdown;
* the diurnal load curve maps each time bucket to a per-machine load, whose
  latency/CPU behaviour is interpolated from the calibration points;
* the cluster layer (max-over-partitions aggregation) is applied with the
  sampled model to produce the TLA-level P99 time series.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config.schema import ClusterSpec, ExperimentSpec, MlTrainingSpec, PerfIsoSpec, WorkloadSpec
from ..errors import ExperimentError
from ..metrics.timeseries import TimeSeriesSet
from .sampled import SampledClusterModel

__all__ = ["diurnal_load", "CalibrationPoint", "ProductionClusterSimulation", "ProductionResult"]


def diurnal_load(peak_qps: float = 4000.0, trough_qps: float = 1600.0,
                 period: float = 3600.0) -> Callable[[float], float]:
    """A smooth one-period diurnal per-machine load curve.

    The returned callable maps simulation time (seconds) to per-machine QPS;
    over ``period`` seconds the load falls from the peak to the trough and
    climbs back, approximating the hour-long window shown in Figure 10.
    """
    if peak_qps <= trough_qps:
        raise ExperimentError("peak_qps must exceed trough_qps")
    mid = (peak_qps + trough_qps) / 2.0
    amplitude = (peak_qps - trough_qps) / 2.0
    return lambda t: mid + amplitude * math.cos(2.0 * math.pi * t / period)


@dataclass
class CalibrationPoint:
    """Per-machine behaviour measured at one load level."""

    qps: float
    latency_samples: np.ndarray
    primary_cpu: float
    secondary_cpu: float
    os_cpu: float

    @property
    def busy_cpu(self) -> float:
        return self.primary_cpu + self.secondary_cpu + self.os_cpu


@dataclass
class ProductionResult:
    """Time series reproducing the three panels of Figure 10."""

    times: List[float]
    qps: List[float]
    tla_p99_ms: List[float]
    cpu_utilization_pct: List[float]
    mean_cpu_utilization_pct: float
    max_tla_p99_ms: float

    def as_timeseries(self) -> TimeSeriesSet:
        series = TimeSeriesSet()
        load = series.series("qps", "queries/s")
        p99 = series.series("tla_p99_ms", "ms")
        cpu = series.series("cpu_pct", "%")
        for t, q, lat, util in zip(self.times, self.qps, self.tla_p99_ms, self.cpu_utilization_pct):
            load.append(t, q)
            p99.append(t, lat)
            cpu.append(t, util)
        return series


class ProductionClusterSimulation:
    """Figure 10: an hour of a 650-machine cluster under diurnal live load."""

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        calibration_qps: Sequence[float] = (1500.0, 2500.0, 3500.0, 4000.0),
        calibration_duration: float = 3.0,
        calibration_warmup: float = 0.5,
        seed: int = 7,
        buffer_cores: int = 8,
        runner=None,
    ) -> None:
        if len(calibration_qps) < 2:
            raise ExperimentError("need at least two calibration load points to interpolate")
        self._runner = runner
        # 650 machines ~= 25 partitions x 2 rows of index servers plus TLAs.
        self._cluster = cluster if cluster is not None else ClusterSpec(
            partitions=25, rows=2, tla_machines=50
        )
        self._calibration_qps = sorted(calibration_qps)
        self._calibration_duration = calibration_duration
        self._calibration_warmup = calibration_warmup
        self._seed = seed
        self._buffer_cores = buffer_cores
        self._points: List[CalibrationPoint] = []

    # ------------------------------------------------------------ calibration
    def _calibration_spec(self, index: int, qps: float) -> ExperimentSpec:
        spec = ExperimentSpec(
            workload=WorkloadSpec(
                qps=qps,
                duration=self._calibration_duration,
                warmup=self._calibration_warmup,
            ),
            perfiso=PerfIsoSpec(cpu_policy="blind"),
            ml_training=MlTrainingSpec(),
            seed=self._seed + index,
        )
        return dataclasses.replace(
            spec,
            perfiso=dataclasses.replace(
                spec.perfiso,
                blind=dataclasses.replace(spec.perfiso.blind, buffer_cores=self._buffer_cores),
            ),
        )

    def calibrate(self) -> List[CalibrationPoint]:
        """Run the detailed single-machine simulator at each load point.

        The load points are submitted as one batch to the experiment runner:
        they execute across worker processes, and any point already measured —
        by a previous calibration, another harness, or an earlier process when
        a disk cache is configured — is served from the content-addressed
        cache instead of being re-simulated.
        """
        from ..runtime.runner import ExperimentTask, default_runner

        runner = self._runner if self._runner is not None else default_runner()
        tasks = [
            ExperimentTask(
                self._calibration_spec(index, qps),
                scenario=f"fig10-calibration-{int(qps)}",
            )
            for index, qps in enumerate(self._calibration_qps)
        ]
        points: List[CalibrationPoint] = []
        for qps, outcome in zip(self._calibration_qps, runner.run_batch(tasks)):
            samples = outcome.latency_samples
            if samples.size == 0:
                raise ExperimentError(f"calibration at {qps} QPS produced no latency samples")
            points.append(
                CalibrationPoint(
                    qps=qps,
                    latency_samples=samples,
                    primary_cpu=outcome.result.cpu.primary,
                    secondary_cpu=outcome.result.cpu.secondary,
                    os_cpu=outcome.result.cpu.os,
                )
            )
        self._points = points
        return points

    # -------------------------------------------------------------- execution
    def run(
        self,
        duration: float = 3600.0,
        bucket: float = 60.0,
        load_curve: Optional[Callable[[float], float]] = None,
        requests_per_bucket: int = 4000,
    ) -> ProductionResult:
        """Produce the Figure 10 time series."""
        if not self._points:
            self.calibrate()
        if load_curve is None:
            load_curve = diurnal_load()
        rng = np.random.default_rng(self._seed)
        times: List[float] = []
        qps_series: List[float] = []
        p99_series: List[float] = []
        cpu_series: List[float] = []
        buckets = int(duration / bucket)
        for index in range(buckets):
            t = index * bucket
            per_machine_qps = max(1.0, float(load_curve(t)))
            samples, busy = self._interpolate(per_machine_qps, bucket_index=index)
            model = SampledClusterModel(
                self._cluster, samples, seed=self._seed + index, machine_skew_sigma=0.03
            )
            layer = model.simulate(requests_per_bucket)
            # Small measurement noise so the series looks like a real fleet
            # rather than a smooth analytic curve.
            noise = float(rng.normal(0.0, 0.01))
            times.append(t)
            qps_series.append(per_machine_qps * self._cluster.rows)
            p99_series.append(layer.tla.as_millis()["p99_ms"])
            cpu_series.append(max(0.0, min(100.0, (busy + noise) * 100.0)))
        return ProductionResult(
            times=times,
            qps=qps_series,
            tla_p99_ms=p99_series,
            cpu_utilization_pct=cpu_series,
            mean_cpu_utilization_pct=float(np.mean(cpu_series)) if cpu_series else 0.0,
            max_tla_p99_ms=float(np.max(p99_series)) if p99_series else 0.0,
        )

    # ------------------------------------------------------------- internals
    def _interpolate(self, qps: float, bucket_index: int = 0) -> tuple:
        """Blend the two nearest calibration points for the requested load."""
        points = self._points
        if qps <= points[0].qps:
            return points[0].latency_samples, points[0].busy_cpu
        if qps >= points[-1].qps:
            return points[-1].latency_samples, points[-1].busy_cpu
        upper_index = next(i for i, p in enumerate(points) if p.qps >= qps)
        lower = points[upper_index - 1]
        upper = points[upper_index]
        weight = (qps - lower.qps) / (upper.qps - lower.qps)
        # Latency: mix samples from the two points in proportion to the weight.
        lower_count = int(round((1.0 - weight) * 1000))
        upper_count = 1000 - lower_count
        # Seeded from (experiment seed, bucket) — never from the load itself,
        # or two buckets at the same QPS would draw identical "mixed" samples.
        rng = np.random.default_rng((self._seed, bucket_index))
        mixed = np.concatenate(
            [
                rng.choice(lower.latency_samples, size=max(lower_count, 1)),
                rng.choice(upper.latency_samples, size=max(upper_count, 1)),
            ]
        )
        busy = (1.0 - weight) * lower.busy_cpu + weight * upper.busy_cpu
        return mixed, busy
