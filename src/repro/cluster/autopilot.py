"""A minimal Autopilot-like service management substrate (Section 4.2).

The real PerfIso is deployed as an Autopilot-managed service: Autopilot ships
cluster-wide configuration files to every machine, starts and stops services,
restarts them after crashes, and gives operators a kill switch.  The model
below provides just enough of that surface to exercise PerfIso's operational
behaviour — configuration distribution, crash recovery from persisted state,
and cluster-wide enable/disable — without pretending to be a full cluster
manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config.loader import dump_json, load_json
from ..config.schema import PerfIsoSpec
from ..errors import ClusterError, UnknownVersionError

__all__ = ["ManagedService", "ConfigStore", "Autopilot"]


@dataclass
class ManagedService:
    """One service instance registered with Autopilot on one machine."""

    name: str
    machine: str
    start: Callable[[], None]
    stop: Callable[[], None]
    #: Optional state persistence hooks (used by PerfIso for crash recovery).
    save_state: Optional[Callable[[], Dict[str, object]]] = None
    restore_state: Optional[Callable[[Dict[str, object]], None]] = None
    running: bool = False
    restarts: int = 0
    persisted_state: Dict[str, object] = field(default_factory=dict)


class ConfigStore:
    """Cluster-wide configuration files, keyed by file name and versioned.

    Configurations are stored as JSON text (exactly what would be shipped to
    machines), so the store also validates that every spec round-trips through
    the serialisation layer.

    Every ``publish`` appends a new immutable version and makes it active;
    the full history is retained so a staged rollout can roll back to the
    *exact* configuration that was live before it began, rather than to
    whatever happens to be in the store at halt time.
    """

    def __init__(self) -> None:
        self._versions: Dict[str, List[str]] = {}
        self._active: Dict[str, int] = {}
        self.pushes = 0

    def publish(self, name: str, spec: object) -> int:
        """Publish a new version of a configuration file and return its number.

        Versions are numbered from 1 in publication order; the newly
        published version becomes the active one.
        """
        history = self._versions.setdefault(name, [])
        history.append(dump_json(spec))
        version = len(history)
        self._active[name] = version
        self.pushes += 1
        return version

    def fetch(self, name: str, cls: type) -> object:
        """Return the *active* version of a configuration file."""
        return self.fetch_version(name, self.active_version(name), cls)

    def fetch_version(self, name: str, version: int, cls: type) -> object:
        history = self._require(name)
        if not 1 <= version <= len(history):
            raise UnknownVersionError(name, version, range(1, len(history) + 1))
        return load_json(cls, history[version - 1])

    def fetch_perfiso(self, name: str = "perfiso.json") -> PerfIsoSpec:
        return self.fetch(name, PerfIsoSpec)

    def active_version(self, name: str) -> int:
        self._require(name)
        return self._active[name]

    def version_count(self, name: str) -> int:
        return len(self._require(name))

    def rollback(self, name: str, version: Optional[int] = None) -> int:
        """Make an older version active again (default: the previous one).

        Rolling back is itself a configuration push (machines re-fetch), so it
        counts towards ``pushes``; the history is never rewritten.
        """
        history = self._require(name)
        target = self._active[name] - 1 if version is None else version
        if not 1 <= target <= len(history):
            raise UnknownVersionError(name, target, range(1, len(history) + 1))
        self._active[name] = target
        self.pushes += 1
        return target

    def files(self) -> List[str]:
        return sorted(self._versions)

    def _require(self, name: str) -> List[str]:
        if name not in self._versions:
            raise ClusterError(f"no configuration file named {name!r}")
        return self._versions[name]


class Autopilot:
    """Service lifecycle + configuration distribution for a fleet of machines."""

    def __init__(self) -> None:
        self.config = ConfigStore()
        self._services: Dict[str, ManagedService] = {}

    # ------------------------------------------------------------- services
    def register(self, service: ManagedService) -> None:
        key = self._key(service.machine, service.name)
        if key in self._services:
            raise ClusterError(f"service {service.name!r} already registered on {service.machine!r}")
        self._services[key] = service

    def service(self, machine: str, name: str) -> ManagedService:
        key = self._key(machine, name)
        try:
            return self._services[key]
        except KeyError:
            raise ClusterError(f"no service {name!r} on machine {machine!r}") from None

    def services_named(self, name: str) -> List[ManagedService]:
        return [s for s in self._services.values() if s.name == name]

    def start(self, machine: str, name: str) -> None:
        service = self.service(machine, name)
        if service.running:
            return
        service.start()
        service.running = True

    def stop(self, machine: str, name: str) -> None:
        service = self.service(machine, name)
        if not service.running:
            return
        service.stop()
        service.running = False

    def start_all(self, name: str) -> None:
        for service in self.services_named(name):
            self.start(service.machine, service.name)

    def stop_all(self, name: str) -> None:
        for service in self.services_named(name):
            self.stop(service.machine, service.name)

    # --------------------------------------------------------- crash recovery
    def checkpoint(self, machine: str, name: str) -> None:
        """Persist a service's state (PerfIso stores its parameters on disk)."""
        service = self.service(machine, name)
        if service.save_state is not None:
            service.persisted_state = dict(service.save_state())

    def crash_and_recover(self, machine: str, name: str) -> None:
        """Simulate a service crash followed by an Autopilot restart.

        The service is stopped, restarted, and handed back the last state it
        checkpointed — PerfIso resumes isolation without operator action.
        """
        service = self.service(machine, name)
        if service.running:
            service.stop()
            service.running = False
        service.restarts += 1
        service.start()
        service.running = True
        if service.restore_state is not None and service.persisted_state:
            service.restore_state(dict(service.persisted_state))

    @staticmethod
    def _key(machine: str, name: str) -> str:
        return f"{machine}/{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Autopilot(services={len(self._services)}, configs={len(self.config.files())})"
