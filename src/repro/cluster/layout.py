"""Cluster layout: which machine holds which index partition (Figure 3).

The index is split into ``partitions`` columns and replicated across ``rows``
rows; every (partition, row) pair lives on one IndexServe machine.  A separate
pool of machines runs the top-level aggregators (TLAs).  Mid-level aggregators
(MLAs) run *on* the IndexServe machines; the TLA picks one machine of the
chosen row to act as MLA for each request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config.schema import ClusterSpec
from ..errors import ClusterError

__all__ = ["IndexMachineInfo", "ClusterLayout"]


@dataclass(frozen=True)
class IndexMachineInfo:
    """Identity of one IndexServe machine in the cluster."""

    name: str
    partition: int
    row: int


class ClusterLayout:
    """Maps the abstract cluster spec onto named machines."""

    def __init__(self, spec: ClusterSpec) -> None:
        self._spec = spec
        self._index_machines: List[IndexMachineInfo] = []
        for row in range(spec.rows):
            for partition in range(spec.partitions):
                self._index_machines.append(
                    IndexMachineInfo(
                        name=f"index-r{row}-p{partition}",
                        partition=partition,
                        row=row,
                    )
                )
        self._tla_machines = [f"tla-{i}" for i in range(spec.tla_machines)]

    @property
    def spec(self) -> ClusterSpec:
        return self._spec

    @property
    def index_machines(self) -> List[IndexMachineInfo]:
        return list(self._index_machines)

    @property
    def tla_machines(self) -> List[str]:
        return list(self._tla_machines)

    def machines_in_row(self, row: int) -> List[IndexMachineInfo]:
        if not 0 <= row < self._spec.rows:
            raise ClusterError(f"row {row} out of range (0..{self._spec.rows - 1})")
        return [m for m in self._index_machines if m.row == row]

    def machine_for(self, partition: int, row: int) -> IndexMachineInfo:
        for machine in self._index_machines:
            if machine.partition == partition and machine.row == row:
                return machine
        raise ClusterError(f"no machine for partition={partition}, row={row}")

    @property
    def total_machines(self) -> int:
        return len(self._index_machines) + len(self._tla_machines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterLayout(partitions={self._spec.partitions}, rows={self._spec.rows}, "
            f"tlas={len(self._tla_machines)})"
        )
