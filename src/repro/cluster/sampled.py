"""Sampled-aggregation cluster model.

Running a full event-driven simulation of 75 (let alone 650) machines at
thousands of queries per second is prohibitively slow in Python, so the large
cluster figures use a hybrid model:

1. The *per-machine* behaviour (latency distribution, drop rate, CPU
   breakdown under a given colocation scenario) is measured once with the
   detailed single-machine simulation.
2. The *cluster-level* behaviour is then sampled: for every request, one local
   latency is drawn per partition, the MLA latency is the maximum of those
   draws plus network and aggregation overheads, and the TLA latency adds the
   final hop.  This captures the tail-at-scale amplification (max over
   servers) that dominates multi-layer serving systems, which is the property
   Figure 9 and Figure 10 exercise.

Machine-to-machine heterogeneity is modelled with a per-machine latency scale
factor so that one consistently slow machine drags the whole row, as in a real
fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..config.schema import ClusterSpec
from ..errors import ClusterError
from ..metrics.latency import LatencyStats

__all__ = ["SampledLayerStats", "SampledClusterModel"]


@dataclass(frozen=True)
class SampledLayerStats:
    """Per-layer latency statistics produced by the sampled model."""

    local: LatencyStats
    mla: LatencyStats
    tla: LatencyStats

    def summary(self) -> Dict[str, float]:
        return {
            "local_avg_ms": self.local.as_millis()["mean_ms"],
            "local_p95_ms": self.local.as_millis()["p95_ms"],
            "local_p99_ms": self.local.as_millis()["p99_ms"],
            "mla_avg_ms": self.mla.as_millis()["mean_ms"],
            "mla_p95_ms": self.mla.as_millis()["p95_ms"],
            "mla_p99_ms": self.mla.as_millis()["p99_ms"],
            "tla_avg_ms": self.tla.as_millis()["mean_ms"],
            "tla_p95_ms": self.tla.as_millis()["p95_ms"],
            "tla_p99_ms": self.tla.as_millis()["p99_ms"],
        }


def _stats(values: np.ndarray) -> LatencyStats:
    if values.size == 0:
        return LatencyStats.empty()
    p50, p95, p99, p999 = np.percentile(values, [50, 95, 99, 99.9])
    return LatencyStats(
        count=int(values.size),
        dropped=0,
        mean=float(values.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        p999=float(p999),
        maximum=float(values.max()),
    )


class SampledClusterModel:
    """Monte-Carlo aggregation of per-machine latency samples."""

    def __init__(
        self,
        cluster: ClusterSpec,
        local_latency_samples: Sequence[float],
        seed: int = 0,
        machine_skew_sigma: float = 0.03,
    ) -> None:
        samples = np.asarray(local_latency_samples, dtype=float)
        if samples.size < 10:
            raise ClusterError(
                "the sampled cluster model needs at least 10 per-machine latency samples"
            )
        if np.any(samples < 0):
            raise ClusterError("latency samples must be non-negative")
        self._cluster = cluster
        self._samples = samples
        self._rng = np.random.default_rng(seed)
        # Per-machine multiplicative skew (hardware generations, background
        # daemons): one factor per (row, partition) slot.
        skew = self._rng.lognormal(mean=0.0, sigma=machine_skew_sigma,
                                   size=(cluster.rows, cluster.partitions))
        self._machine_skew = skew

    @property
    def cluster(self) -> ClusterSpec:
        return self._cluster

    def simulate(self, num_requests: int) -> SampledLayerStats:
        """Sample ``num_requests`` requests through the aggregation tree."""
        if num_requests < 1:
            raise ClusterError("num_requests must be >= 1")
        cluster = self._cluster
        partitions = cluster.partitions
        rows = self._rng.integers(0, cluster.rows, size=num_requests)
        # Draw a (num_requests, partitions) matrix of local latencies.
        draws = self._rng.choice(self._samples, size=(num_requests, partitions), replace=True)
        draws = draws * self._machine_skew[rows, :]
        hop = cluster.network_hop_latency
        mla = draws.max(axis=1) + 2 * hop + cluster.mla_aggregation_cost
        tla = mla + 2 * hop + 2 * cluster.tla_aggregation_cost
        return SampledLayerStats(
            local=_stats(draws.ravel()),
            mla=_stats(mla),
            tla=_stats(tla),
        )

    def tail_at_scale_curve(
        self, partition_counts: Sequence[int], num_requests: int = 20_000
    ) -> Dict[int, float]:
        """P99 of the MLA layer as the fan-out width grows.

        Not a paper figure, but a useful ablation: it quantifies how the
        slowest-server effect amplifies the local tail, the phenomenon that
        makes per-machine isolation so critical in the first place.

        One latency matrix is drawn at the widest fan-out and every narrower
        width reuses its leading columns via a single running-max pass, so the
        whole curve costs one draw plus one batched percentile call — and the
        common random numbers make the curve monotone by construction.

        Each request samples a row and applies that row's per-machine skew to
        the leading ``widest`` columns, exactly as :meth:`simulate` does —
        the curve ablates the same heterogeneous fleet the full model serves,
        rather than an idealised skew-free one that understates the tail.
        """
        counts = list(partition_counts)
        if not counts:
            return {}
        if any(count < 1 for count in counts):
            raise ClusterError("partition counts must be >= 1")
        widest = max(counts)
        if widest > self._cluster.partitions:
            raise ClusterError(
                f"fan-out width {widest} exceeds the cluster's {self._cluster.partitions} "
                "partitions; the per-machine skew model only covers real partitions"
            )
        rows = self._rng.integers(0, self._cluster.rows, size=num_requests)
        draws = self._rng.choice(self._samples, size=(num_requests, widest), replace=True)
        draws = draws * self._machine_skew[rows, :widest]
        running_max = np.maximum.accumulate(draws, axis=1)
        overhead = 2 * self._cluster.network_hop_latency + self._cluster.mla_aggregation_cost
        columns = np.asarray([count - 1 for count in counts])
        p99s = np.percentile(running_max[:, columns] + overhead, 99.0, axis=0)
        return {count: float(p99) for count, p99 in zip(counts, p99s)}
