"""Event-driven multi-machine cluster simulation (Figure 3 / Section 6.2).

Every IndexServe machine is a full single-machine simulation (hardware,
kernel, primary, secondaries, PerfIso) sharing one event engine.  Requests
enter at a top-level aggregator (TLA), are load-balanced round-robin across
rows, forwarded to a mid-level aggregator (MLA, which is one of the row's
IndexServe machines), fanned out to every partition in the row, aggregated at
the MLA (a real CPU burst on that colocated machine), and returned via the
TLA.  Latency is measured at the three levels the paper reports: local
IndexServe, MLA, and TLA.

The TLA machines are dedicated (not colocated), so they are modelled as pure
processing delays rather than full machine simulations; the colocation
effects the experiment studies all live on the IndexServe machines.

Simulating 44 machines at 4,000 QPS each is expensive in pure Python, so the
harness defaults to a scaled-down cluster (fewer partitions).  Per-machine
load — what determines interference — is independent of the partition count,
because every machine of a row serves every request routed to that row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config.schema import (
    ClusterSpec,
    CpuBullySpec,
    DiskBullySpec,
    ExperimentSpec,
    HdfsSpec,
    PerfIsoSpec,
)
from ..config.validation import validate_cluster, validate_experiment
from ..core.controller import PerfIsoController
from ..errors import ClusterError
from ..hardware.machine import Machine
from ..hostos.syscalls import Kernel
from ..hostos.thread import cpu_phase
from ..metrics.cpu import CpuBreakdown, CpuUtilizationSampler
from ..metrics.latency import LatencyCollector, LatencyStats
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from ..simulation.randomness import RandomStreams
from ..tenants.base import SecondaryTenant
from ..tenants.cpu_bully import CpuBullyTenant
from ..tenants.disk_bully import DiskBullyTenant
from ..tenants.hdfs import HdfsTenant
from ..tenants.indexserve import IndexServeTenant, QueryOutcome
from ..workloads.arrival import OpenLoopClient
from ..workloads.query_trace import QueryTrace
from .layout import ClusterLayout, IndexMachineInfo

__all__ = ["ClusterScenario", "ClusterResult", "SimulatedCluster"]


@dataclass(frozen=True)
class ClusterScenario:
    """Configuration of one cluster experiment."""

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    node: ExperimentSpec = field(default_factory=ExperimentSpec)
    perfiso: Optional[PerfIsoSpec] = None
    cpu_bully: Optional[CpuBullySpec] = None
    disk_bully: Optional[DiskBullySpec] = None
    hdfs: Optional[HdfsSpec] = None
    total_qps: float = 8000.0
    duration: float = 5.0
    warmup: float = 1.0
    seed: int = 1


@dataclass
class ClusterResult:
    """Latency per layer plus fleet-averaged CPU utilisation."""

    scenario: str
    local_latency: LatencyStats
    mla_latency: LatencyStats
    tla_latency: LatencyStats
    cpu: CpuBreakdown
    requests_submitted: int
    requests_completed: int
    per_machine_p99: Dict[str, float]

    def summary(self) -> Dict[str, float]:
        return {
            "local_avg_ms": self.local_latency.as_millis()["mean_ms"],
            "local_p95_ms": self.local_latency.as_millis()["p95_ms"],
            "local_p99_ms": self.local_latency.as_millis()["p99_ms"],
            "mla_avg_ms": self.mla_latency.as_millis()["mean_ms"],
            "mla_p95_ms": self.mla_latency.as_millis()["p95_ms"],
            "mla_p99_ms": self.mla_latency.as_millis()["p99_ms"],
            "tla_avg_ms": self.tla_latency.as_millis()["mean_ms"],
            "tla_p95_ms": self.tla_latency.as_millis()["p95_ms"],
            "tla_p99_ms": self.tla_latency.as_millis()["p99_ms"],
            "primary_cpu_pct": self.cpu.primary * 100.0,
            "secondary_cpu_pct": self.cpu.secondary * 100.0,
            "idle_cpu_pct": self.cpu.idle * 100.0,
        }


class _IndexNode:
    """Runtime state of one IndexServe machine in the cluster."""

    def __init__(
        self,
        info: IndexMachineInfo,
        engine: SimulationEngine,
        scenario: ClusterScenario,
        streams: RandomStreams,
        warmup_end: float,
    ) -> None:
        self.info = info
        node_streams = streams.spawn(info.name)
        spec = scenario.node
        self.machine = Machine(engine, spec.machine, name=info.name, rng=node_streams.stream("disks"))
        self.kernel = Kernel(engine, self.machine, spec.scheduler)
        self.collector = LatencyCollector(warmup_end=warmup_end)
        self.primary = IndexServeTenant(
            self.kernel,
            spec.indexserve,
            rng=node_streams.stream("indexserve"),
            collector=self.collector,
            name=f"indexserve-{info.name}",
        )
        self.primary.start()
        self.sampler = CpuUtilizationSampler(engine, self.kernel, interval=1.0, warmup_end=warmup_end)
        self.sampler.start()
        self.secondaries: List[SecondaryTenant] = []
        if scenario.cpu_bully is not None:
            self.secondaries.append(CpuBullyTenant(self.kernel, scenario.cpu_bully))
        if scenario.disk_bully is not None:
            self.secondaries.append(
                DiskBullyTenant(self.kernel, scenario.disk_bully, rng=node_streams.stream("disk-bully"))
            )
        if scenario.hdfs is not None:
            self.secondaries.append(
                HdfsTenant(self.kernel, scenario.hdfs, rng=node_streams.stream("hdfs"))
            )
        self.controller: Optional[PerfIsoController] = None
        if scenario.perfiso is not None:
            self.controller = PerfIsoController(self.kernel, scenario.perfiso)
            self.controller.observe_primary(self.primary.process)
        for secondary in self.secondaries:
            secondary.start()
            if self.controller is not None:
                self.controller.manage(secondary)
        if self.controller is not None:
            self.controller.start()


class _RequestState:
    """Per-request fan-out bookkeeping at the MLA."""

    __slots__ = ("remaining", "mla_start", "tla_start", "mla_node", "request_id")

    def __init__(self, request_id: int, remaining: int, tla_start: float, mla_start: float, mla_node: _IndexNode) -> None:
        self.request_id = request_id
        self.remaining = remaining
        self.tla_start = tla_start
        self.mla_start = mla_start
        self.mla_node = mla_node


class SimulatedCluster:
    """Builds and runs the event-driven cluster experiment."""

    def __init__(self, scenario: ClusterScenario, name: str = "cluster") -> None:
        validate_cluster(scenario.cluster)
        validate_experiment(scenario.node)
        self._scenario = scenario
        self._name = name
        self.engine = SimulationEngine()
        self._streams = RandomStreams(scenario.seed)
        self._layout = ClusterLayout(scenario.cluster)
        warmup_end = scenario.warmup
        self._nodes: Dict[str, _IndexNode] = {
            info.name: _IndexNode(info, self.engine, scenario, self._streams, warmup_end)
            for info in self._layout.index_machines
        }
        self._mla_collector = LatencyCollector(warmup_end=warmup_end)
        self._tla_collector = LatencyCollector(warmup_end=warmup_end)
        self._trace = QueryTrace(
            scenario.node.indexserve,
            size=min(50_000, max(2000, int(scenario.total_qps * (scenario.duration + scenario.warmup) / 4))),
            rng=self._streams.stream("cluster-trace"),
        )
        self._next_row = 0
        self._next_mla = 0
        self._next_request = 0
        self.requests_submitted = 0
        self.requests_completed = 0

    @property
    def layout(self) -> ClusterLayout:
        return self._layout

    @property
    def nodes(self) -> Dict[str, _IndexNode]:
        return dict(self._nodes)

    # ------------------------------------------------------------------- run
    def run(self) -> ClusterResult:
        scenario = self._scenario
        client = OpenLoopClient(
            self.engine,
            self._trace,
            qps=scenario.total_qps,
            duration=scenario.duration + scenario.warmup,
            submit=self._submit_request,
            rng=self._streams.stream("cluster-arrivals"),
        )
        client.start()
        self.engine.run(until=scenario.duration + scenario.warmup)
        return self._collect()

    # ------------------------------------------------------------- internals
    def _submit_request(self, query, arrival_time: float) -> None:
        self.requests_submitted += 1
        request_id = self._next_request
        self._next_request += 1
        cluster = self._scenario.cluster
        # TLA receive + processing, then forward to the chosen row's MLA.
        row = self._next_row
        self._next_row = (self._next_row + 1) % cluster.rows
        row_machines = self._layout.machines_in_row(row)
        mla_info = row_machines[self._next_mla % len(row_machines)]
        self._next_mla += 1
        delay_to_mla = cluster.network_hop_latency + cluster.tla_aggregation_cost + cluster.network_hop_latency
        self.engine.schedule(
            delay_to_mla,
            self._mla_receive,
            query,
            request_id,
            arrival_time,
            row_machines,
            mla_info.name,
            priority=EventPriority.TENANT,
        )

    def _mla_receive(
        self,
        query,
        request_id: int,
        tla_start: float,
        row_machines: List[IndexMachineInfo],
        mla_name: str,
    ) -> None:
        cluster = self._scenario.cluster
        mla_node = self._nodes[mla_name]
        state = _RequestState(
            request_id=request_id,
            remaining=len(row_machines),
            tla_start=tla_start,
            mla_start=self.engine.now,
            mla_node=mla_node,
        )
        for info in row_machines:
            node = self._nodes[info.name]
            hop = 0.0 if info.name == mla_name else cluster.network_hop_latency
            self.engine.schedule(
                hop,
                self._local_submit,
                node,
                query,
                state,
                priority=EventPriority.TENANT,
            )

    def _local_submit(self, node: _IndexNode, query, state: _RequestState) -> None:
        node.primary.submit(
            query,
            callback=lambda outcome, s=state, n=node: self._local_done(n, s, outcome),
        )

    def _local_done(self, node: _IndexNode, state: _RequestState, outcome: QueryOutcome) -> None:
        cluster = self._scenario.cluster
        hop = 0.0 if node is state.mla_node else cluster.network_hop_latency
        self.engine.schedule(hop, self._mla_response, state, priority=EventPriority.TENANT)

    def _mla_response(self, state: _RequestState) -> None:
        state.remaining -= 1
        if state.remaining > 0:
            return
        # All partitions answered: run the aggregation burst on the MLA machine.
        mla_node = state.mla_node
        mla_node.kernel.spawn_thread(
            mla_node.primary.process,
            [cpu_phase(self._scenario.cluster.mla_aggregation_cost)],
            name=f"mla-agg-{state.request_id}",
            on_complete=lambda _t, s=state: self._mla_done(s),
        )

    def _mla_done(self, state: _RequestState) -> None:
        cluster = self._scenario.cluster
        now = self.engine.now
        self._mla_collector.record(now, now - state.mla_start)
        # Response travels MLA -> TLA, TLA aggregates, responds to the client.
        delay = cluster.network_hop_latency + cluster.tla_aggregation_cost
        self.engine.schedule(delay, self._tla_done, state, priority=EventPriority.TENANT)

    def _tla_done(self, state: _RequestState) -> None:
        now = self.engine.now
        self._tla_collector.record(now, now - state.tla_start)
        self.requests_completed += 1

    def _collect(self) -> ClusterResult:
        locals_stats = [node.collector.stats() for node in self._nodes.values()]
        # Pool every machine's post-warm-up samples for the "Local IndexServe"
        # bars, exactly as the paper averages across IndexServe machines.
        pooled = LatencyCollector()
        for node in self._nodes.values():
            pooled.extend(node.collector.samples())
        breakdowns = [node.sampler.overall() for node in self._nodes.values()]
        count = len(breakdowns) or 1
        cpu = CpuBreakdown(
            primary=sum(b.primary for b in breakdowns) / count,
            secondary=sum(b.secondary for b in breakdowns) / count,
            os=sum(b.os for b in breakdowns) / count,
            idle=sum(b.idle for b in breakdowns) / count,
        )
        per_machine_p99 = {
            name: node.collector.stats().p99 for name, node in self._nodes.items()
        }
        if not locals_stats:
            raise ClusterError("cluster produced no local latency statistics")
        return ClusterResult(
            scenario=self._name,
            local_latency=pooled.stats(),
            mla_latency=self._mla_collector.stats(),
            tla_latency=self._tla_collector.stats(),
            cpu=cpu,
            requests_submitted=self.requests_submitted,
            requests_completed=self.requests_completed,
            per_machine_p99=per_machine_p99,
        )
