"""Multi-machine serving cluster: layout, routing, Autopilot, large-scale models."""

from .autopilot import Autopilot, ConfigStore, ManagedService
from .largescale import (
    CalibrationPoint,
    ProductionClusterSimulation,
    ProductionResult,
    diurnal_load,
)
from .layout import ClusterLayout, IndexMachineInfo
from .sampled import SampledClusterModel, SampledLayerStats
from .simulated import ClusterResult, ClusterScenario, SimulatedCluster

__all__ = [
    "Autopilot",
    "ConfigStore",
    "ManagedService",
    "CalibrationPoint",
    "ProductionClusterSimulation",
    "ProductionResult",
    "diurnal_load",
    "ClusterLayout",
    "IndexMachineInfo",
    "SampledClusterModel",
    "SampledLayerStats",
    "ClusterResult",
    "ClusterScenario",
    "SimulatedCluster",
]
