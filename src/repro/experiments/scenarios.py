"""Scenario builders: one function per configuration evaluated in the paper.

Every scenario returns a fully-populated :class:`ExperimentSpec`; the figure
harnesses (:mod:`repro.experiments.figures`) and the benchmarks compose these
into the paper's tables.  All scenarios share the same machine, primary and
workload parameters so results are directly comparable — only the secondary
and the isolation policy change.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..config.schema import (
    BlindIsolationSpec,
    CpuBullySpec,
    CpuCycleSpec,
    DiskBullySpec,
    ExperimentSpec,
    HdfsSpec,
    IoThrottleSpec,
    PerfIsoSpec,
    StaticCoreSpec,
    WorkloadSpec,
)
from ..units import MB

__all__ = [
    "AVERAGE_LOAD_QPS",
    "PEAK_LOAD_QPS",
    "MID_BULLY_THREADS",
    "HIGH_BULLY_THREADS",
    "base_spec",
    "standalone",
    "no_isolation",
    "blind_isolation",
    "static_cores",
    "cpu_cycles",
    "disk_bound_with_throttling",
]

#: The paper's approximation of average and peak per-machine load (Section 5.3).
AVERAGE_LOAD_QPS = 2000.0
PEAK_LOAD_QPS = 4000.0
#: "mid" = 24 bully threads, "high" = 48 bully threads (Section 6.1.2).
MID_BULLY_THREADS = 24
HIGH_BULLY_THREADS = 48


def base_spec(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """The shared machine / primary / workload configuration."""
    return ExperimentSpec(
        workload=WorkloadSpec(qps=qps, duration=duration, warmup=warmup),
        seed=seed,
    )


def _with_workload(spec: ExperimentSpec, qps: float, duration: float, warmup: float, seed: int) -> ExperimentSpec:
    return dataclasses.replace(
        spec,
        workload=WorkloadSpec(qps=qps, duration=duration, warmup=warmup),
        seed=seed,
    )


def standalone(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """IndexServe running alone (the baseline of Section 6.1.1)."""
    return base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)


def no_isolation(
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Colocation with an unrestricted CPU bully (Section 6.1.2)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(spec, cpu_bully=CpuBullySpec(threads=bully_threads))


def blind_isolation(
    buffer_cores: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """CPU blind isolation with the given buffer (Section 6.1.3)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=buffer_cores),
    )
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


def static_cores(
    secondary_cores: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Static core restriction of the secondary (Section 6.1.4)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="static_cores",
        static_cores=StaticCoreSpec(secondary_cores=secondary_cores),
    )
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


def cpu_cycles(
    cpu_fraction: float = 0.05,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Static CPU cycle (duty-cycle) restriction of the secondary (Section 6.1.4)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="cpu_cycles",
        cpu_cycles=CpuCycleSpec(cpu_fraction=cpu_fraction),
    )
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


def disk_bound_with_throttling(
    qps: float = PEAK_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
    bandwidth_limit: Optional[float] = 100 * MB,
    iops_limit: float = 0.0,
    buffer_cores: int = 8,
) -> ExperimentSpec:
    """Disk-bound secondary (disk bully + HDFS) with PerfIso I/O throttling.

    Mirrors the cluster experiment's per-machine configuration (Section 6.2,
    Figure 9c): blind isolation for CPU plus disk throttling of the secondary
    on the shared HDD volume.
    """
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=buffer_cores),
        io_throttle=IoThrottleSpec(
            secondary_bandwidth_limit=bandwidth_limit if bandwidth_limit else 100 * MB,
            secondary_iops_limit=iops_limit,
        ),
    )
    return dataclasses.replace(
        spec,
        disk_bully=DiskBullySpec(),
        hdfs=HdfsSpec(),
        perfiso=perfiso,
    )
