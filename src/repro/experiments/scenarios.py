"""Scenario builders and the registered scenario catalog.

Every builder returns a fully-populated :class:`ExperimentSpec`; the figure
harnesses (:mod:`repro.experiments.figures`) and the benchmarks compose these
into the paper's tables.  All scenarios share the same machine, primary and
workload parameters so results are directly comparable — only the secondary
mix and the isolation policy change.

Each builder is additionally registered in the scenario matrix
(:mod:`repro.experiments.matrix`) via the ``@matrix.scenario`` decorator — a
scenario is the builder plus default sweep grids over its parameters — and
derived views (wider sweeps, 2-D grids over the same builders) are registered
explicitly at the bottom of the module.  ``python -m repro.experiments.matrix
--list`` prints the resulting catalog.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..config.schema import (
    BlindIsolationSpec,
    BurstySpec,
    ControllerCrashSpec,
    CpuBullySpec,
    CpuCycleSpec,
    DegradedCoreSpec,
    DiskBullySpec,
    DiurnalSpec,
    ExperimentSpec,
    FaultPlanSpec,
    FlashCrowdSpec,
    HdfsSpec,
    IndexServeSpec,
    IoThrottleSpec,
    MlTrainingSpec,
    PerfIsoSpec,
    PidControlSpec,
    SchedulerSpec,
    SecondaryJobSpec,
    StaticCoreSpec,
    TelemetryFaultSpec,
    TraceSpec,
    WorkloadSpec,
)
from ..errors import ConfigError
from ..simulation.randomness import RandomStreams
from ..units import MB
from ..workloads.arrival_models import (
    ARRIVAL_MODEL_STREAM,
    BurstyArrival,
    DiurnalArrival,
    synthesize_trace,
)
from . import matrix

__all__ = [
    "AVERAGE_LOAD_QPS",
    "PEAK_LOAD_QPS",
    "MID_BULLY_THREADS",
    "HIGH_BULLY_THREADS",
    "DIURNAL_PHASES",
    "base_spec",
    "standalone",
    "standalone_peak",
    "no_isolation",
    "blind_isolation",
    "static_cores",
    "cpu_cycles",
    "disk_bound_with_throttling",
    "policy_showdown",
    "burst_storm",
    "diurnal",
    "adaptive_parallelism_off",
    "global_queue_ablation",
    "hdfs_colocation",
    "ml_training_colocation",
    "mixed_bully",
    "full_house",
    "dual_cpu_bully",
    "bully_storm",
    "diurnal_cycle",
    "diurnal_trough_reclamation",
    "flash_crowd_blind_isolation",
    "flash_crowd_no_isolation",
    "bursty_blind_isolation",
    "bursty_no_isolation",
    "replayed_trace_showdown",
    "replayed_trace_standalone",
    "bursty_replay_trace",
    "diurnal_replay_trace",
    "CONTROLLER_POLICIES",
    "SHOWDOWN_WORKLOADS",
    "controller_showdown",
    "chaos_controller_crash",
    "chaos_telemetry_dropout",
    "chaos_degraded_cores",
]

#: The paper's approximation of average and peak per-machine load (Section 5.3).
AVERAGE_LOAD_QPS = 2000.0
PEAK_LOAD_QPS = 4000.0
#: "mid" = 24 bully threads, "high" = 48 bully threads (Section 6.1.2).
MID_BULLY_THREADS = 24
HIGH_BULLY_THREADS = 48

#: Per-machine QPS of the four diurnal phases used by the ``diurnal`` scenario
#: (the trough-to-peak swing of the paper's Figure 10 live traffic).
DIURNAL_PHASES = {
    "night": 600.0,
    "morning": 1800.0,
    "midday": 2800.0,
    "evening": PEAK_LOAD_QPS,
}


def base_spec(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """The shared machine / primary / workload configuration."""
    return ExperimentSpec(
        workload=WorkloadSpec(qps=qps, duration=duration, warmup=warmup),
        seed=seed,
    )


def _with_workload(spec: ExperimentSpec, qps: float, duration: float, warmup: float, seed: int) -> ExperimentSpec:
    return dataclasses.replace(
        spec,
        workload=WorkloadSpec(qps=qps, duration=duration, warmup=warmup),
        seed=seed,
    )


def _blind_perfiso(buffer_cores: int = 8, io_throttle: Optional[IoThrottleSpec] = None) -> PerfIsoSpec:
    kwargs = {"io_throttle": io_throttle} if io_throttle is not None else {}
    return PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=buffer_cores),
        **kwargs,
    )


# ------------------------------------------------------------------ paper core
@matrix.scenario(
    "standalone",
    "IndexServe alone at average load (the Section 6.1.1 baseline)",
    tags=("paper", "baseline"),
)
def standalone(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """IndexServe running alone (the baseline of Section 6.1.1)."""
    return base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)


@matrix.scenario(
    "standalone-peak",
    "IndexServe alone at provisioned peak load",
    tags=("paper", "baseline"),
)
def standalone_peak(
    qps: float = PEAK_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """IndexServe running alone at the provisioned peak (4,000 QPS)."""
    return base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)


@matrix.scenario(
    "no-isolation",
    "Unrestricted CPU bully colocated at mid/high intensity (Section 6.1.2)",
    axes={"bully_threads": (MID_BULLY_THREADS, HIGH_BULLY_THREADS)},
    tags=("paper",),
)
def no_isolation(
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Colocation with an unrestricted CPU bully (Section 6.1.2)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(spec, cpu_bully=CpuBullySpec(threads=bully_threads))


@matrix.scenario(
    "blind-isolation",
    "CPU blind isolation with 4/8 buffer cores under a high bully (Section 6.1.3)",
    axes={"buffer_cores": (4, 8)},
    tags=("paper",),
)
def blind_isolation(
    buffer_cores: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """CPU blind isolation with the given buffer (Section 6.1.3)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = _blind_perfiso(buffer_cores)
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


@matrix.scenario(
    "static-cores",
    "Static core restriction of the secondary (Section 6.1.4)",
    axes={"secondary_cores": (24, 16, 8)},
    tags=("paper",),
)
def static_cores(
    secondary_cores: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Static core restriction of the secondary (Section 6.1.4)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="static_cores",
        static_cores=StaticCoreSpec(secondary_cores=secondary_cores),
    )
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


@matrix.scenario(
    "cpu-cycles",
    "Duty-cycle (CPU rate) restriction of the secondary (Section 6.1.4)",
    axes={"cpu_fraction": (0.45, 0.25, 0.05)},
    tags=("paper",),
)
def cpu_cycles(
    cpu_fraction: float = 0.05,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Static CPU cycle (duty-cycle) restriction of the secondary (Section 6.1.4)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="cpu_cycles",
        cpu_cycles=CpuCycleSpec(cpu_fraction=cpu_fraction),
    )
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


@matrix.scenario(
    "disk-bound-throttled",
    "Disk bully + HDFS under blind isolation and DWRR I/O throttling (Figure 9c)",
    tags=("paper", "multi-secondary", "io"),
)
def disk_bound_with_throttling(
    qps: float = PEAK_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
    bandwidth_limit: Optional[float] = 100 * MB,
    iops_limit: float = 0.0,
    buffer_cores: int = 8,
) -> ExperimentSpec:
    """Disk-bound secondary (disk bully + HDFS) with PerfIso I/O throttling.

    Mirrors the cluster experiment's per-machine configuration (Section 6.2,
    Figure 9c): blind isolation for CPU plus disk throttling of the secondary
    on the shared HDD volume.
    """
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = _blind_perfiso(
        buffer_cores,
        io_throttle=IoThrottleSpec(
            secondary_bandwidth_limit=bandwidth_limit if bandwidth_limit else 100 * MB,
            secondary_iops_limit=iops_limit,
        ),
    )
    return dataclasses.replace(
        spec,
        disk_bully=DiskBullySpec(),
        hdfs=HdfsSpec(),
        perfiso=perfiso,
    )


# ------------------------------------------------------------------- ablations
@matrix.scenario(
    "policy-showdown",
    "Every CPU policy against the same high bully at average load (Figure 8)",
    axes={"policy": ("none", "blind", "static_cores", "cpu_cycles")},
    tags=("paper", "comparison"),
)
def policy_showdown(
    policy: str = "blind",
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """One spec per isolation policy, all else equal (the Figure 8 matchup)."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = None if policy == "none" else PerfIsoSpec(cpu_policy=policy)
    return dataclasses.replace(
        spec, cpu_bully=CpuBullySpec(threads=bully_threads), perfiso=perfiso
    )


@matrix.scenario(
    "burst-storm",
    "Load surges above provisioned peak under blind isolation",
    axes={"surge_qps": (4000.0, 5000.0, 6000.0)},
    tags=("stress",),
    tier="slow",
)
def burst_storm(
    surge_qps: float = 5000.0,
    buffer_cores: int = 8,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Poisson burst storms past the provisioned peak, bully still attached."""
    spec = base_spec(qps=surge_qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(
        spec,
        cpu_bully=CpuBullySpec(threads=HIGH_BULLY_THREADS),
        perfiso=_blind_perfiso(buffer_cores),
    )


@matrix.scenario(
    "diurnal",
    "The four phases of a diurnal load cycle under blind isolation",
    axes={"phase": tuple(DIURNAL_PHASES)},
    tags=("production",),
)
def diurnal(
    phase: str = "midday",
    buffer_cores: int = 8,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """One diurnal phase: trough/ramp/midday/peak QPS with a colocated bully."""
    spec = base_spec(
        qps=DIURNAL_PHASES[phase], duration=duration, warmup=warmup, seed=seed
    )
    return dataclasses.replace(
        spec,
        cpu_bully=CpuBullySpec(threads=HIGH_BULLY_THREADS),
        perfiso=_blind_perfiso(buffer_cores),
    )


@matrix.scenario(
    "adaptive-parallelism-off",
    "No-isolation colocation with IndexServe's adaptive parallelism disabled",
    tags=("ablation",),
)
def adaptive_parallelism_off(
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Ablation: the primary cannot compensate by splitting work wider."""
    spec = no_isolation(
        bully_threads=bully_threads, qps=qps, duration=duration, warmup=warmup, seed=seed
    )
    return dataclasses.replace(
        spec, indexserve=IndexServeSpec(adaptive_parallelism=False)
    )


@matrix.scenario(
    "global-queue",
    "No-isolation colocation on an idealised single ready queue",
    tags=("ablation",),
)
def global_queue_ablation(
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Ablation: global ready queue instead of per-core queues."""
    spec = no_isolation(
        bully_threads=bully_threads, qps=qps, duration=duration, warmup=warmup, seed=seed
    )
    return dataclasses.replace(spec, scheduler=SchedulerSpec(placement="global"))


# ----------------------------------------------------------- other secondaries
@matrix.scenario(
    "hdfs-colo",
    "HDFS DataNode + client colocated under blind isolation (Section 5.3)",
    tags=("io",),
)
def hdfs_colocation(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """The cluster machines' always-on HDFS footprint, isolated."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(spec, hdfs=HdfsSpec(), perfiso=_blind_perfiso())


@matrix.scenario(
    "ml-training-colo",
    "ML training batch job colocated under blind isolation (Figure 10)",
    tags=("production",),
)
def ml_training_colocation(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """The production experiment's training job on one machine."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(
        spec, ml_training=MlTrainingSpec(), perfiso=_blind_perfiso()
    )


# ----------------------------------------------------- multi-secondary mixes
@matrix.scenario(
    "mixed-bully",
    "CPU bully + disk bully at once under blind isolation and I/O throttling",
    axes={"bully_threads": (MID_BULLY_THREADS, HIGH_BULLY_THREADS)},
    tags=("multi-secondary",),
)
def mixed_bully(
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Both micro-benchmark bullies sharing the machine with the primary."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(
        spec,
        cpu_bully=CpuBullySpec(threads=bully_threads),
        disk_bully=DiskBullySpec(),
        perfiso=_blind_perfiso(io_throttle=IoThrottleSpec()),
    )


@matrix.scenario(
    "full-house",
    "CPU bully + disk bully + HDFS + ML training colocated at once",
    tags=("multi-secondary", "stress"),
    tier="slow",
)
def full_house(
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Every batch tenant the repo models, on one machine, under PerfIso.

    This is the production-cluster story in miniature: blind isolation does
    not care *what* the secondaries are, only how many cores stay idle.
    """
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(
        spec,
        cpu_bully=CpuBullySpec(threads=MID_BULLY_THREADS),
        disk_bully=DiskBullySpec(),
        hdfs=HdfsSpec(),
        ml_training=MlTrainingSpec(threads=24),
        perfiso=_blind_perfiso(io_throttle=IoThrottleSpec()),
    )


@matrix.scenario(
    "dual-cpu-bully",
    "A large and a small CPU bully as independent jobs under blind isolation",
    axes={"small_threads": (8, 24)},
    tags=("multi-secondary",),
)
def dual_cpu_bully(
    small_threads: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Two separately-sized CPU bullies via ``extra_secondaries``."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(
        spec,
        cpu_bully=CpuBullySpec(threads=bully_threads),
        extra_secondaries=(
            SecondaryJobSpec(
                "cpu-bully-small", cpu_bully=CpuBullySpec(threads=small_threads)
            ),
        ),
        perfiso=_blind_perfiso(),
    )


@matrix.scenario(
    "bully-storm",
    "N independent small CPU bullies arriving as separate jobs",
    axes={"num_bullies": (2, 4, 8)},
    tags=("multi-secondary", "stress"),
    tier="slow",
)
def bully_storm(
    num_bullies: int = 4,
    threads_each: int = 6,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Many small batch jobs instead of one big one — same aggregate demand."""
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    return dataclasses.replace(
        spec,
        extra_secondaries=tuple(
            SecondaryJobSpec(
                f"storm-bully-{index}", cpu_bully=CpuBullySpec(threads=threads_each)
            )
            for index in range(num_bullies)
        ),
        perfiso=_blind_perfiso(),
    )


# ------------------------------------------------------- trace-driven workloads
def bursty_replay_trace(
    base_qps: float,
    burst_qps: float,
    total_time: float,
    trace_seed: int = 20170104,
) -> TraceSpec:
    """A replayable trace flattened from a seeded MMPP burst process.

    The trace is a pure function of its arguments — ``trace_seed`` is
    deliberately independent of the experiment seed, so every policy variant
    of a showdown replays the *same* recorded traffic.  Dwell times and the
    bucket width scale with the window, so short golden/CI runs still contain
    several bursts.
    """
    model = BurstyArrival(
        _scaled_bursty(base_qps, burst_qps, total_time),
        horizon=total_time,
        rng=RandomStreams(trace_seed).stream(ARRIVAL_MODEL_STREAM),
    )
    return synthesize_trace(
        model, duration=total_time, bucket_seconds=total_time / 44.0
    )


def _scaled_bursty(base_qps: float, burst_qps: float, total_time: float) -> BurstySpec:
    """MMPP dwell means proportional to the window (~4 bursts per run)."""
    return BurstySpec(
        base_qps=base_qps,
        burst_qps=burst_qps,
        mean_normal_seconds=0.18 * total_time,
        mean_burst_seconds=0.07 * total_time,
    )


def diurnal_replay_trace(
    peak_qps: float,
    trough_qps: float,
    total_time: float,
    bucket_seconds: float = 0.25,
) -> TraceSpec:
    """One full diurnal cycle flattened into a replayable trace."""
    model = DiurnalArrival(
        DiurnalSpec(peak_qps=peak_qps, trough_qps=trough_qps, period=total_time)
    )
    return synthesize_trace(model, duration=total_time, bucket_seconds=bucket_seconds)


@matrix.scenario(
    "diurnal-cycle",
    "A full compressed diurnal cycle under blind isolation with a high bully",
    axes={"phase_offset": (0.0, 0.5)},
    tags=("production", "trace-driven"),
)
def diurnal_cycle(
    phase_offset: float = 0.0,
    peak_qps: float = PEAK_LOAD_QPS,
    trough_qps: float = 600.0,
    buffer_cores: int = 8,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """One whole trough-to-peak cycle in a single run (period == the run)."""
    total = warmup + duration
    workload = WorkloadSpec(
        qps=(peak_qps + trough_qps) / 2.0,
        duration=duration,
        warmup=warmup,
        diurnal=DiurnalSpec(
            peak_qps=peak_qps,
            trough_qps=trough_qps,
            period=total,
            phase_offset=phase_offset,
        ),
    )
    return ExperimentSpec(
        workload=workload,
        seed=seed,
        cpu_bully=CpuBullySpec(threads=HIGH_BULLY_THREADS),
        perfiso=_blind_perfiso(buffer_cores),
    )


@matrix.scenario(
    "diurnal-trough-reclamation",
    "Harvesting at the diurnal trough: how much batch work fits the night",
    axes={"buffer_cores": (4, 8)},
    tags=("production", "trace-driven"),
)
def diurnal_trough_reclamation(
    buffer_cores: int = 8,
    peak_qps: float = PEAK_LOAD_QPS,
    trough_qps: float = 1600.0,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """A short window pinned at the trough of a long diurnal period.

    ``phase_offset=0.5`` puts the cosine minimum at t=0; with the period much
    longer than the run, the whole window sits near the trough — the regime
    where blind isolation reclaims the most cores for the ML training job.
    """
    workload = WorkloadSpec(
        qps=trough_qps,
        duration=duration,
        warmup=warmup,
        diurnal=DiurnalSpec(
            peak_qps=peak_qps,
            trough_qps=trough_qps,
            period=3600.0,
            phase_offset=0.5,
        ),
    )
    return ExperimentSpec(
        workload=workload,
        seed=seed,
        ml_training=MlTrainingSpec(),
        perfiso=_blind_perfiso(buffer_cores),
    )


@matrix.scenario(
    "flash-crowd-blind-isolation",
    "A flash crowd spiking past peak while blind isolation defends the buffer",
    axes={"spike_qps": (PEAK_LOAD_QPS, 6000.0)},
    tags=("stress", "trace-driven"),
)
def flash_crowd_blind_isolation(
    spike_qps: float = 6000.0,
    base_qps: float = AVERAGE_LOAD_QPS,
    buffer_cores: int = 8,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Base load, then a mid-run ramp/hold/decay spike, bully colocated."""
    total = warmup + duration
    workload = WorkloadSpec(
        qps=base_qps,
        duration=duration,
        warmup=warmup,
        flash_crowd=FlashCrowdSpec(
            base_qps=base_qps,
            spike_qps=spike_qps,
            start=warmup + 0.3 * duration,
            ramp=0.05 * total,
            hold=0.2 * total,
            decay=0.1 * total,
        ),
    )
    return ExperimentSpec(
        workload=workload,
        seed=seed,
        cpu_bully=CpuBullySpec(threads=HIGH_BULLY_THREADS),
        perfiso=_blind_perfiso(buffer_cores),
    )


@matrix.scenario(
    "flash-crowd-no-isolation",
    "The same flash crowd with the bully unrestricted (the blind spot)",
    tags=("stress", "trace-driven"),
)
def flash_crowd_no_isolation(
    spike_qps: float = 6000.0,
    base_qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Ablation twin of ``flash-crowd-blind-isolation`` without PerfIso."""
    spec = flash_crowd_blind_isolation(
        spike_qps=spike_qps,
        base_qps=base_qps,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    return dataclasses.replace(spec, perfiso=None)


@matrix.scenario(
    "bursty-blind-isolation",
    "Markov-modulated burst traffic under blind isolation with a high bully",
    axes={"burst_qps": (PEAK_LOAD_QPS, 6000.0)},
    tags=("stress", "trace-driven"),
)
def bursty_blind_isolation(
    burst_qps: float = 6000.0,
    base_qps: float = AVERAGE_LOAD_QPS,
    buffer_cores: int = 8,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """MMPP arrivals: calm stretches punctuated by seconds-long bursts."""
    workload = WorkloadSpec(
        qps=base_qps,
        duration=duration,
        warmup=warmup,
        bursty=_scaled_bursty(base_qps, burst_qps, warmup + duration),
    )
    return ExperimentSpec(
        workload=workload,
        seed=seed,
        cpu_bully=CpuBullySpec(threads=HIGH_BULLY_THREADS),
        perfiso=_blind_perfiso(buffer_cores),
    )


@matrix.scenario(
    "bursty-no-isolation",
    "The same burst traffic with the bully unrestricted",
    tags=("stress", "trace-driven"),
)
def bursty_no_isolation(
    burst_qps: float = 6000.0,
    base_qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Ablation twin of ``bursty-blind-isolation`` without PerfIso."""
    spec = bursty_blind_isolation(
        burst_qps=burst_qps,
        base_qps=base_qps,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    return dataclasses.replace(spec, perfiso=None)


@matrix.scenario(
    "replayed-trace-showdown",
    "Every CPU policy replaying the identical recorded burst trace",
    axes={"policy": ("none", "blind", "static_cores", "cpu_cycles")},
    tags=("comparison", "trace-driven"),
)
def replayed_trace_showdown(
    policy: str = "blind",
    base_qps: float = AVERAGE_LOAD_QPS,
    burst_qps: float = 6000.0,
    bully_threads: int = HIGH_BULLY_THREADS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """Figure 8 rerun on recorded traffic: same trace file, four policies."""
    workload = WorkloadSpec(
        qps=base_qps,
        duration=duration,
        warmup=warmup,
        trace=bursty_replay_trace(base_qps, burst_qps, total_time=warmup + duration),
    )
    perfiso = None if policy == "none" else PerfIsoSpec(cpu_policy=policy)
    return ExperimentSpec(
        workload=workload,
        seed=seed,
        cpu_bully=CpuBullySpec(threads=bully_threads),
        perfiso=perfiso,
    )


@matrix.scenario(
    "replayed-trace-standalone",
    "IndexServe alone replaying a recorded diurnal trace",
    tags=("baseline", "trace-driven"),
)
def replayed_trace_standalone(
    peak_qps: float = PEAK_LOAD_QPS,
    trough_qps: float = 1600.0,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """The trace round-trip in scenario form: synthesize -> replay -> measure."""
    workload = WorkloadSpec(
        qps=(peak_qps + trough_qps) / 2.0,
        duration=duration,
        warmup=warmup,
        trace=diurnal_replay_trace(peak_qps, trough_qps, total_time=warmup + duration),
    )
    return ExperimentSpec(workload=workload, seed=seed)


# ------------------------------------------------------- controller showdown
#: Every registered CPU policy, legacy and challenger, in showdown order.
CONTROLLER_POLICIES = (
    "blind",
    "static_cores",
    "cpu_cycles",
    "none",
    "pid",
    "mpc",
    "utilization",
    "oracle",
)

#: The PR-5 trace-driven workload shapes the controllers are raced across.
SHOWDOWN_WORKLOADS = ("diurnal", "bursty", "flash_crowd", "trace")


@matrix.scenario(
    "controller-showdown",
    "Every dynamic CPU controller raced across the trace-driven workloads",
    axes={"policy": CONTROLLER_POLICIES, "workload": SHOWDOWN_WORKLOADS},
    tags=("comparison", "trace-driven", "controller"),
    tier="slow",
)
def controller_showdown(
    policy: str = "blind",
    workload: str = "flash_crowd",
    base_qps: float = AVERAGE_LOAD_QPS,
    peak_qps: float = 6000.0,
    slo_ms: float = 15.0,
    bully_threads: int = HIGH_BULLY_THREADS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """One (controller, workload-shape) cell of the controller arena.

    Every cell at one workload shape shares the identical seed, trace and
    bully, so the only degree of freedom is the CPU policy — the controllers
    see the same traffic and their rankings are attributable to the policy
    alone.  ``slo_ms`` feeds both the PID controller's set point and the
    showdown harness's pass/fail column.
    """
    total = warmup + duration
    if workload == "diurnal":
        workload_spec = WorkloadSpec(
            qps=(peak_qps + base_qps) / 2.0,
            duration=duration,
            warmup=warmup,
            diurnal=DiurnalSpec(peak_qps=peak_qps, trough_qps=base_qps, period=total),
        )
    elif workload == "bursty":
        workload_spec = WorkloadSpec(
            qps=base_qps,
            duration=duration,
            warmup=warmup,
            bursty=_scaled_bursty(base_qps, peak_qps, total),
        )
    elif workload == "flash_crowd":
        workload_spec = WorkloadSpec(
            qps=base_qps,
            duration=duration,
            warmup=warmup,
            flash_crowd=FlashCrowdSpec(
                base_qps=base_qps,
                spike_qps=peak_qps,
                start=warmup + 0.3 * duration,
                ramp=0.05 * total,
                hold=0.2 * total,
                decay=0.1 * total,
            ),
        )
    elif workload == "trace":
        workload_spec = WorkloadSpec(
            qps=base_qps,
            duration=duration,
            warmup=warmup,
            trace=bursty_replay_trace(base_qps, peak_qps, total_time=total),
        )
    else:
        raise ConfigError(
            f"unknown showdown workload {workload!r}; expected one of {SHOWDOWN_WORKLOADS}"
        )
    perfiso = (
        None
        if policy == "none"
        else PerfIsoSpec(
            cpu_policy=policy,
            pid=PidControlSpec(slo_p99=slo_ms / 1000.0),
        )
    )
    return ExperimentSpec(
        workload=workload_spec,
        seed=seed,
        cpu_bully=CpuBullySpec(threads=bully_threads),
        perfiso=perfiso,
    )


# ------------------------------------------------------------ chaos scenarios
# Deterministic fault injection: the same experiment as the healthy scenario,
# plus a fault plan drawn from the named "faults" stream.  Every window scales
# with warmup/duration, so the golden-tier runs exercise the same phases as
# the full-length ones.
@matrix.scenario(
    "chaos-controller-crash",
    "Blind isolation with the controller crashing and recovering mid-run",
    tags=("chaos", "controller"),
)
def chaos_controller_crash(
    recovery_delay: float = 0.05,
    buffer_cores: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """``blind-isolation`` with a mid-run controller crash.

    The controller checkpoints periodically, dies at 40% of the measured
    window, and restarts ``recovery_delay`` seconds later from its last
    checkpoint — while it is down the secondary keeps whatever core count
    the last decision granted.
    """
    spec = blind_isolation(
        buffer_cores=buffer_cores,
        bully_threads=bully_threads,
        qps=qps,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    faults = FaultPlanSpec(
        controller_crash=ControllerCrashSpec(
            at=warmup + 0.4 * duration,
            recovery_delay=recovery_delay,
        )
    )
    return dataclasses.replace(spec, faults=faults)


@matrix.scenario(
    "chaos-telemetry-dropout",
    "The PID controller flying blind through a telemetry dropout window",
    axes={"mode": ("missing", "frozen")},
    tags=("chaos", "controller"),
)
def chaos_telemetry_dropout(
    mode: str = "missing",
    slo_ms: float = 15.0,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """A latency-feedback controller whose telemetry degrades mid-run.

    ``"missing"`` makes P99 reads return nothing (the policy must hold);
    ``"frozen"`` serves the last healthy value (a stale cache that keeps
    answering).  The window covers 30%..60% of the measured run.
    """
    spec = base_spec(qps=qps, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="pid", pid=PidControlSpec(slo_p99=slo_ms / 1000.0)
    )
    faults = FaultPlanSpec(
        telemetry=TelemetryFaultSpec(
            mode=mode, start=warmup + 0.3 * duration, duration=0.3 * duration
        )
    )
    return dataclasses.replace(
        spec,
        cpu_bully=CpuBullySpec(threads=bully_threads),
        perfiso=perfiso,
        faults=faults,
    )


@matrix.scenario(
    "chaos-degraded-cores",
    "A mid-run straggler window slowing every core under blind isolation",
    axes={"slowdown": (1.5, 3.0)},
    tags=("chaos",),
)
def chaos_degraded_cores(
    slowdown: float = 1.5,
    buffer_cores: int = 8,
    bully_threads: int = HIGH_BULLY_THREADS,
    qps: float = AVERAGE_LOAD_QPS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> ExperimentSpec:
    """``blind-isolation`` on a machine that straggles for half the run.

    Every core dispatches at ``1/slowdown`` speed from 20% to 70% of the
    measured window — the thermal-throttle / noisy-VM shape the degraded-core
    fault models — then recovers.
    """
    spec = blind_isolation(
        buffer_cores=buffer_cores,
        bully_threads=bully_threads,
        qps=qps,
        duration=duration,
        warmup=warmup,
        seed=seed,
    )
    faults = FaultPlanSpec(
        degraded=DegradedCoreSpec(
            slowdown=slowdown, start=warmup + 0.2 * duration, duration=0.5 * duration
        )
    )
    return dataclasses.replace(spec, faults=faults)


# ------------------------------------------------------------- derived views
# Wider sweeps and 2-D grids over the builders above.  Registered explicitly
# (not via decorators) because they reuse a builder that already anchors a
# scenario.
matrix.register(
    matrix.Scenario(
        name="bully-sweep",
        description="Unrestricted bully intensity swept from 8 to 48 threads",
        builder=no_isolation,
        axes=(("bully_threads", (8, 16, 24, 32, 40, 48)),),
        tags=("sweep",),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="blind-buffer-sweep",
        description="Blind isolation buffer swept from 2 to 16 cores",
        builder=blind_isolation,
        axes=(("buffer_cores", (2, 4, 6, 8, 12, 16)),),
        tags=("sweep",),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="load-sweep",
        description="Standalone latency-vs-load curve from trough to past peak",
        builder=standalone,
        axes=(("qps", (500.0, 1000.0, 2000.0, 3000.0, 4000.0)),),
        tags=("sweep", "baseline"),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="isolated-load-sweep",
        description="Blind isolation (8 buffers, high bully) across load levels",
        builder=blind_isolation,
        axes=(("qps", (1000.0, 2000.0, 3000.0, 4000.0)),),
        tags=("sweep",),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="colocation-grid",
        description="2-D grid: load level x bully intensity, no isolation",
        builder=no_isolation,
        axes=(
            ("qps", (AVERAGE_LOAD_QPS, PEAK_LOAD_QPS)),
            ("bully_threads", (MID_BULLY_THREADS, HIGH_BULLY_THREADS)),
        ),
        tags=("sweep", "grid"),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="flash-crowd-buffer-sweep",
        description="Flash crowd absorbed by buffers swept from 2 to 12 cores",
        builder=flash_crowd_blind_isolation,
        axes=(("buffer_cores", (2, 4, 8, 12)),),
        tags=("sweep", "trace-driven"),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="diurnal-phase-grid",
        description="2-D grid: diurnal phase offset x buffer size",
        builder=diurnal_cycle,
        axes=(
            ("phase_offset", (0.0, 0.25, 0.5)),
            ("buffer_cores", (4, 8)),
        ),
        tags=("sweep", "grid", "trace-driven"),
        tier="slow",
    )
)
matrix.register(
    matrix.Scenario(
        name="controller-arena",
        description="The dynamic challengers vs blind vs nothing on a flash crowd",
        builder=controller_showdown,
        axes=(("policy", ("blind", "pid", "mpc", "utilization", "oracle", "none")),),
        tags=("comparison", "trace-driven", "controller"),
    )
)
matrix.register(
    matrix.Scenario(
        name="buffer-load-grid",
        description="2-D grid: buffer size x load level under blind isolation",
        builder=blind_isolation,
        axes=(
            ("buffer_cores", (4, 8)),
            ("qps", (AVERAGE_LOAD_QPS, PEAK_LOAD_QPS)),
        ),
        tags=("sweep", "grid"),
        tier="slow",
    )
)
