"""One harness per paper figure.

Every function reproduces one figure/table of the paper's evaluation: it runs
the required scenarios, assembles the same rows/series the paper plots, and
returns a :class:`FigureResult` that the benchmarks print and
``EXPERIMENTS.md`` records.  Durations are parameters so tests can use short
runs while the benchmark harness uses longer, lower-variance ones.

Execution goes through :class:`repro.runtime.ExperimentRunner`: each harness
builds the full batch of ``ExperimentSpec`` runs it needs up front and submits
it at once, so independent scenarios fan out across worker processes and
results shared between figures (every figure re-runs the standalone baseline)
are served from the content-addressed cache instead of being re-simulated.
Because the runner returns results in task order and every run is a pure
function of its spec, figure rows are bit-identical whether a batch executed
serially or across N workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.largescale import ProductionClusterSimulation
from ..cluster.simulated import ClusterScenario, SimulatedCluster
from ..config.schema import (
    BlindIsolationSpec,
    ClusterSpec,
    CpuBullySpec,
    DiskBullySpec,
    HdfsSpec,
    IoThrottleSpec,
    PerfIsoSpec,
)
from . import scenarios
from .comparison import IsolationComparison
from .single_machine import SingleMachineResult

__all__ = [
    "FigureResult",
    "figure_from_scenario",
    "fig4_no_isolation",
    "fig5_blind_isolation",
    "fig6_static_cores",
    "fig7_cpu_cycles",
    "fig8_comparison",
    "fig9_cluster",
    "fig10_production",
    "headline_utilization",
]


@dataclass
class FigureResult:
    """Rows reproducing one figure, plus free-form notes."""

    figure_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def row(self, **filters: object) -> Dict[str, object]:
        """Return the first row matching every ``key=value`` filter."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in filters.items()):
                return row
        raise KeyError(f"no row matching {filters!r} in {self.figure_id}")

    def column(self, name: str) -> List[object]:
        return [row[name] for row in self.rows]


def _batch(runner, labeled_specs) -> List[SingleMachineResult]:
    """Run ``[(label, spec), ...]`` as one batch, results in input order."""
    from ..runtime.runner import ExperimentTask, default_runner

    active = runner if runner is not None else default_runner()
    tasks = [ExperimentTask(spec, scenario=label) for label, spec in labeled_specs]
    return [outcome.result for outcome in active.run_batch(tasks)]


def _latency_row(label: str, qps: float, result: SingleMachineResult,
                 baseline: Optional[SingleMachineResult] = None) -> Dict[str, object]:
    summary = result.summary()
    row: Dict[str, object] = {
        "workload": label,
        "qps": qps,
        "p50_ms": summary["p50_ms"],
        "p95_ms": summary["p95_ms"],
        "p99_ms": summary["p99_ms"],
        "drop_rate_pct": summary["drop_rate_pct"],
        "primary_cpu_pct": summary["primary_cpu_pct"],
        "secondary_cpu_pct": summary["secondary_cpu_pct"],
        "os_cpu_pct": summary["os_cpu_pct"],
        "idle_cpu_pct": summary["idle_cpu_pct"],
    }
    if baseline is not None:
        base = baseline.summary()
        row["p50_delta_ms"] = summary["p50_ms"] - base["p50_ms"]
        row["p95_delta_ms"] = summary["p95_ms"] - base["p95_ms"]
        row["p99_delta_ms"] = summary["p99_ms"] - base["p99_ms"]
    return row


def _level_sweep(
    figure: FigureResult,
    runner,
    qps_levels: Sequence[float],
    levels: Sequence,
    common_for,
    build_scenario,
    task_label,
    row_label,
    extra_column,
) -> None:
    """Shared shape of figures 5–7: per QPS, a standalone baseline plus one
    run per swept level, batched together and regrouped positionally.

    ``build_scenario(level, **common)`` builds the spec, ``task_label`` /
    ``row_label`` name a level's run, and ``extra_column(level)`` yields the
    figure-specific ``(column, value)`` annotation.
    """
    labeled = []
    for qps in qps_levels:
        common = common_for(qps)
        labeled.append(("standalone", scenarios.standalone(**common)))
        for level in levels:
            labeled.append((task_label(level), build_scenario(level, **common)))
    results = _batch(runner, labeled)
    stride = 1 + len(levels)
    for index, qps in enumerate(qps_levels):
        group = results[stride * index: stride * (index + 1)]
        base = group[0]
        for level, run in zip(levels, group[1:]):
            row = _latency_row(row_label(level), qps, run, baseline=base)
            column, value = extra_column(level)
            row[column] = value
            figure.rows.append(row)


def figure_from_scenario(
    name: str,
    grid: Optional[Dict[str, Sequence]] = None,
    runner=None,
    **common,
) -> FigureResult:
    """Render any registered matrix scenario as a figure table.

    Bridges the declarative catalog (:mod:`repro.experiments.matrix`) into the
    same :class:`FigureResult` shape the per-paper-figure harnesses return, so
    benchmarks and examples can print matrix scenarios with
    :func:`repro.experiments.reporting.print_figure`.
    """
    from .matrix import run_scenario

    result = run_scenario(name, runner=runner, grid=grid, **common)
    figure = FigureResult(
        figure_id=f"matrix/{name}",
        title=result.scenario.description,
        rows=result.rows(),
    )
    if result.scenario.tags:
        figure.notes.append(f"tags: {', '.join(result.scenario.tags)}")
    return figure


# --------------------------------------------------------------------- Fig 4
def fig4_no_isolation(
    qps_levels: Sequence[float] = (scenarios.AVERAGE_LOAD_QPS, scenarios.PEAK_LOAD_QPS),
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 1,
    runner=None,
) -> FigureResult:
    """Figure 4: standalone vs unrestricted mid/high secondary (latency + CPU)."""
    figure = FigureResult(
        figure_id="fig4",
        title="Standalone vs colocation with an unrestricted secondary",
    )
    labeled = []
    for qps in qps_levels:
        common = dict(qps=qps, duration=duration, warmup=warmup, seed=seed)
        labeled.append(("standalone", scenarios.standalone(**common)))
        labeled.append(
            ("mid-secondary", scenarios.no_isolation(scenarios.MID_BULLY_THREADS, **common))
        )
        labeled.append(
            ("high-secondary", scenarios.no_isolation(scenarios.HIGH_BULLY_THREADS, **common))
        )
    results = _batch(runner, labeled)
    for index, qps in enumerate(qps_levels):
        base, mid, high = results[3 * index: 3 * index + 3]
        figure.rows.append(_latency_row("standalone", qps, base))
        figure.rows.append(_latency_row("mid-secondary", qps, mid, baseline=base))
        figure.rows.append(_latency_row("high-secondary", qps, high, baseline=base))
    figure.notes.append(
        "paper: mid raises P99 by up to 42%, high by up to 29x with 11-32% of queries dropped"
    )
    return figure


# --------------------------------------------------------------------- Fig 5
def fig5_blind_isolation(
    buffer_levels: Sequence[int] = (4, 8),
    qps_levels: Sequence[float] = (scenarios.AVERAGE_LOAD_QPS, scenarios.PEAK_LOAD_QPS),
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 1,
    runner=None,
) -> FigureResult:
    """Figure 5: blind isolation with 4 and 8 buffer cores (degradation + CPU)."""
    figure = FigureResult(
        figure_id="fig5",
        title="CPU blind isolation: latency degradation vs buffer size",
    )
    _level_sweep(
        figure,
        runner,
        qps_levels,
        buffer_levels,
        lambda qps: dict(qps=qps, duration=duration, warmup=warmup, seed=seed),
        scenarios.blind_isolation,
        lambda cores: f"blind-{cores}",
        lambda cores: f"blind-{cores}-buffers",
        lambda cores: ("buffer_cores", cores),
    )
    figure.notes.append("paper: 8 buffer cores keep the P99 within 1 ms of standalone")
    return figure


# --------------------------------------------------------------------- Fig 6
def fig6_static_cores(
    core_levels: Sequence[int] = (24, 16, 8),
    qps_levels: Sequence[float] = (scenarios.AVERAGE_LOAD_QPS, scenarios.PEAK_LOAD_QPS),
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 1,
    runner=None,
) -> FigureResult:
    """Figure 6: statically restricting the secondary's CPU cores."""
    figure = FigureResult(
        figure_id="fig6",
        title="Static core restriction of the secondary",
    )
    _level_sweep(
        figure,
        runner,
        qps_levels,
        core_levels,
        lambda qps: dict(qps=qps, duration=duration, warmup=warmup, seed=seed),
        scenarios.static_cores,
        lambda cores: f"cores-{cores}",
        lambda cores: f"{cores}-cores",
        lambda cores: ("secondary_cores", cores),
    )
    figure.notes.append(
        "paper: 8 cores protect the SLO even at peak but cap the secondary at ~17% of CPU time"
    )
    return figure


# --------------------------------------------------------------------- Fig 7
def fig7_cpu_cycles(
    fractions: Sequence[float] = (0.45, 0.25, 0.05),
    qps_levels: Sequence[float] = (scenarios.AVERAGE_LOAD_QPS, scenarios.PEAK_LOAD_QPS),
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 1,
    runner=None,
) -> FigureResult:
    """Figure 7: restricting the secondary's CPU cycles (latency, CPU, drops)."""
    figure = FigureResult(
        figure_id="fig7",
        title="CPU cycle (duty-cycle) restriction of the secondary",
    )
    _level_sweep(
        figure,
        runner,
        qps_levels,
        fractions,
        lambda qps: dict(qps=qps, duration=duration, warmup=warmup, seed=seed),
        scenarios.cpu_cycles,
        lambda fraction: f"cycles-{int(fraction * 100)}",
        lambda fraction: f"{int(fraction * 100)}%-cycles",
        lambda fraction: ("cpu_fraction_pct", fraction * 100.0),
    )
    figure.notes.append(
        "paper: cycle throttling always degrades latency and always drops some queries"
    )
    return figure


# --------------------------------------------------------------------- Fig 8
def fig8_comparison(
    qps: float = scenarios.AVERAGE_LOAD_QPS,
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 1,
    buffer_cores: int = 8,
    static_secondary_cores: int = 8,
    cycle_fraction: float = 0.05,
    runner=None,
) -> FigureResult:
    """Figure 8: P99 latency, idle CPU and secondary progress per approach."""
    comparison = IsolationComparison(
        qps=qps,
        duration=duration,
        warmup=warmup,
        seed=seed,
        buffer_cores=buffer_cores,
        static_secondary_cores=static_secondary_cores,
        cycle_fraction=cycle_fraction,
        runner=runner,
    )
    result = comparison.run()
    figure = FigureResult(
        figure_id="fig8",
        title="Comparison of isolation approaches (high secondary, 2,000 QPS)",
        rows=result.as_table(),
    )
    figure.notes.append(
        "paper: blind isolation and CPU cores both protect tail latency; blind leaves ~13% "
        "less CPU idle and gives the secondary ~17% more work; CPU cycles fails"
    )
    return figure


def _run_cluster_case(label: str, scenario: ClusterScenario):
    """Module-level worker entry point so cluster cases can cross processes."""
    return SimulatedCluster(scenario, name=label).run()


# --------------------------------------------------------------------- Fig 9
def fig9_cluster(
    partitions: int = 5,
    rows: int = 2,
    tla_machines: int = 4,
    total_qps: float = 8000.0,
    duration: float = 2.0,
    warmup: float = 0.5,
    seed: int = 1,
    buffer_cores: int = 8,
    runner=None,
) -> FigureResult:
    """Figure 9: per-layer latency on the cluster for three colocation modes.

    The default uses a scaled-down partition count (per-machine load is
    unchanged — every machine of a row serves every request routed to that
    row); pass ``partitions=22, rows=2, tla_machines=31`` for the paper's full
    75-machine layout if you can afford the run time.
    """
    from ..runtime.runner import default_runner
    from ..runtime.spec_hash import versioned_namespace

    cluster = ClusterSpec(partitions=partitions, rows=rows, tla_machines=tla_machines)
    node = scenarios.base_spec(qps=total_qps / rows, duration=duration, warmup=warmup, seed=seed)
    perfiso = PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=buffer_cores),
        io_throttle=IoThrottleSpec(),
    )
    figure = FigureResult(
        figure_id="fig9",
        title="Cluster latency per layer (standalone / CPU-bound / disk-bound secondary)",
    )
    cases = {
        "standalone": ClusterScenario(
            cluster=cluster, node=node, perfiso=None, hdfs=HdfsSpec(),
            total_qps=total_qps, duration=duration, warmup=warmup, seed=seed,
        ),
        "cpu-bound secondary": ClusterScenario(
            cluster=cluster, node=node, perfiso=perfiso, cpu_bully=CpuBullySpec(),
            hdfs=HdfsSpec(), total_qps=total_qps, duration=duration, warmup=warmup, seed=seed,
        ),
        "disk-bound secondary": ClusterScenario(
            cluster=cluster, node=node, perfiso=perfiso, disk_bully=DiskBullySpec(),
            hdfs=HdfsSpec(), total_qps=total_qps, duration=duration, warmup=warmup, seed=seed,
        ),
    }
    active = runner if runner is not None else default_runner()
    results = active.map(
        _run_cluster_case,
        [(label, scenario) for label, scenario in cases.items()],
        cache_namespace=versioned_namespace("cluster"),
    )
    for label, result in zip(cases, results):
        row: Dict[str, object] = {"scenario": label}
        row.update(result.summary())
        figure.rows.append(row)
    figure.notes.append(
        "paper: with PerfIso the per-layer P99 stays within ~1.2 ms of the standalone cluster"
    )
    return figure


# -------------------------------------------------------------------- Fig 10
def fig10_production(
    duration: float = 3600.0,
    bucket: float = 120.0,
    calibration_duration: float = 2.5,
    seed: int = 7,
    runner=None,
) -> FigureResult:
    """Figure 10: an hour of the 650-machine cluster under diurnal live load."""
    simulation = ProductionClusterSimulation(
        calibration_duration=calibration_duration, seed=seed, runner=runner
    )
    result = simulation.run(duration=duration, bucket=bucket)
    figure = FigureResult(
        figure_id="fig10",
        title="Production cluster: load, TLA P99 and CPU utilisation over one hour",
    )
    for t, qps, p99, cpu in zip(result.times, result.qps, result.tla_p99_ms,
                                result.cpu_utilization_pct):
        figure.rows.append(
            {"time_s": t, "row_qps": qps, "tla_p99_ms": p99, "cpu_utilization_pct": cpu}
        )
    figure.notes.append(
        f"mean CPU utilisation {result.mean_cpu_utilization_pct:.1f}% "
        f"(paper: ~70% averaged over the hour); max TLA P99 {result.max_tla_p99_ms:.1f} ms"
    )
    return figure


# ----------------------------------------------------------------- headline
def headline_utilization(
    qps: float = scenarios.AVERAGE_LOAD_QPS,
    duration: float = 5.0,
    warmup: float = 1.0,
    seed: int = 1,
    runner=None,
) -> FigureResult:
    """The abstract's headline: average CPU utilisation 21% -> 66% at off-peak load."""
    common = dict(qps=qps, duration=duration, warmup=warmup, seed=seed)
    base, colocated = _batch(
        runner,
        [
            ("standalone", scenarios.standalone(**common)),
            ("blind-8", scenarios.blind_isolation(8, **common)),
        ],
    )
    figure = FigureResult(
        figure_id="headline",
        title="Average CPU utilisation with and without colocation (off-peak load)",
    )
    for label, result in (("standalone", base), ("colocated+blind-isolation", colocated)):
        summary = result.summary()
        figure.rows.append(
            {
                "configuration": label,
                "busy_cpu_pct": 100.0 - summary["idle_cpu_pct"],
                "primary_cpu_pct": summary["primary_cpu_pct"],
                "secondary_cpu_pct": summary["secondary_cpu_pct"],
                "p99_ms": summary["p99_ms"],
            }
        )
    figure.notes.append("paper: 21% -> 66% average CPU utilisation without impacting tail latency")
    return figure
