"""The controller showdown: every CPU controller raced on shared traffic.

PR 6 promotes ``CpuIsolationPolicy`` into a dynamic-controller interface and
adds four challengers (PID, MPC, utilization-target, oracle) next to the
paper's blind/static/cycles policies.  This harness answers the obvious next
question — *which controller wins?* — by racing every controller across the
PR-5 trace-driven workload shapes (diurnal, bursty, flash crowd, replayed
trace) under identical seeds, traces and bully pressure, then ranking them
on SLO attainment, tail latency and harvested secondary throughput.

All execution goes through the shared :class:`ExperimentRunner`, so repeated
invocations are served from the content-addressed cache and the emitted
table is byte-identical at any worker count.

Run it directly::

    python -m repro.experiments.showdown --controllers blind,pid,oracle \
        --workloads flash_crowd --duration 2 --out table
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...config.schema import (
    ControllerCrashSpec,
    DegradedCoreSpec,
    FaultPlanSpec,
    TelemetryFaultSpec,
)
from ...errors import ConfigError
from ...reporting.rows import rows_to_csv, rows_to_jsonl
from ...runtime import ExperimentRunner, ExperimentTask, spec_hash
from ..reporting import format_table
from ..scenarios import CONTROLLER_POLICIES, SHOWDOWN_WORKLOADS, controller_showdown

__all__ = ["ShowdownResult", "default_chaos_plan", "run_showdown", "main"]

#: Columns of the per-run detail table, in emission order.
DETAIL_COLUMNS = (
    "workload",
    "controller",
    "p99_ms",
    "slo_ms",
    "p99_over_slo",
    "slo_met",
    "drop_rate_pct",
    "secondary_progress",
    "updates_applied",
    "polls",
)

#: Columns of the aggregated ranking table.
RANKING_COLUMNS = (
    "rank",
    "controller",
    "slo_met",
    "workloads",
    "mean_p99_over_slo",
    "worst_p99_ms",
    "secondary_progress",
    "updates_applied",
)


@dataclass
class ShowdownResult:
    """Everything the showdown measured, already flattened for reporting."""

    #: One row per (workload, controller) run, in deterministic order.
    rows: List[Dict[str, object]] = field(default_factory=list)
    #: One row per controller, best first.
    ranking: List[Dict[str, object]] = field(default_factory=list)
    #: Content hash of every cell spec that ran, in grid order.
    spec_hashes: List[str] = field(default_factory=list)

    def winner(self) -> str:
        if not self.ranking:
            raise ConfigError("showdown produced no ranking")
        return str(self.ranking[0]["controller"])


def default_chaos_plan(duration: float = 10.0, warmup: float = 1.0) -> FaultPlanSpec:
    """The chaos-showdown fault plan, scaled to the run window.

    Three sequential, non-overlapping incidents: a degraded-core straggler
    window early, a telemetry dropout mid-run, and a controller crash late —
    so a controller's ranking reflects how it rides out each failure mode,
    not just how it performs while everything is healthy.
    """
    return FaultPlanSpec(
        degraded=DegradedCoreSpec(
            slowdown=1.5, start=warmup + 0.1 * duration, duration=0.25 * duration
        ),
        telemetry=TelemetryFaultSpec(
            mode="missing", start=warmup + 0.45 * duration, duration=0.2 * duration
        ),
        controller_crash=ControllerCrashSpec(
            at=warmup + 0.75 * duration, recovery_delay=min(0.05, 0.02 * duration)
        ),
    )


def run_showdown(
    controllers: Sequence[str] = CONTROLLER_POLICIES,
    workloads: Sequence[str] = SHOWDOWN_WORKLOADS,
    duration: float = 10.0,
    warmup: float = 1.0,
    seed: int = 1,
    slo_ms: float = 15.0,
    base_qps: Optional[float] = None,
    peak_qps: Optional[float] = None,
    runner: Optional[ExperimentRunner] = None,
    telemetry=None,
    faults: Optional[FaultPlanSpec] = None,
) -> ShowdownResult:
    """Race ``controllers`` across ``workloads`` and rank them.

    Every cell of the (workload, controller) grid is built by
    :func:`~repro.experiments.scenarios.controller_showdown` from the same
    ``seed``, so within one workload shape the controllers replay identical
    traffic — the ranking isolates the policy, nothing else.

    ``faults`` injects the identical fault plan into every cell (the chaos
    showdown): same degraded windows, same telemetry dropouts, same crash
    times, so resilience differences are attributable to the controller.
    The ``"none"`` policy has no controller to crash, so any
    ``controller_crash`` entry is stripped from its cells.

    ``telemetry`` (a :class:`~repro.telemetry.stream.TelemetrySession`) runs
    the grid serially in this process so probes can stream — snapshots and
    controller-decide spans are labelled per cell; measured results are
    identical to the fanned-out run.
    """
    if not controllers:
        raise ConfigError("showdown needs at least one controller")
    if not workloads:
        raise ConfigError("showdown needs at least one workload")
    for name in controllers:
        if name not in CONTROLLER_POLICIES:
            raise ConfigError(
                f"unknown controller {name!r}; expected one of {CONTROLLER_POLICIES}"
            )
    for name in workloads:
        if name not in SHOWDOWN_WORKLOADS:
            raise ConfigError(
                f"unknown workload {name!r}; expected one of {SHOWDOWN_WORKLOADS}"
            )

    extra = {}
    if base_qps is not None:
        extra["base_qps"] = base_qps
    if peak_qps is not None:
        extra["peak_qps"] = peak_qps

    tasks = []
    for workload in workloads:
        for controller in controllers:
            spec = controller_showdown(
                policy=controller,
                workload=workload,
                slo_ms=slo_ms,
                duration=duration,
                warmup=warmup,
                seed=seed,
                **extra,
            )
            label = f"showdown/{workload}/{controller}"
            if faults is not None:
                cell_faults = faults
                if spec.perfiso is None and faults.controller_crash is not None:
                    cell_faults = dataclasses.replace(faults, controller_crash=None)
                spec = dataclasses.replace(spec, faults=cell_faults)
                label += "+chaos"
            tasks.append(ExperimentTask(spec, scenario=label))
    hashes = [spec_hash(task.spec) for task in tasks]
    if telemetry is not None:
        from ..single_machine import SingleMachineExperiment

        runs = [
            SingleMachineExperiment(task.spec, scenario=task.scenario).run(
                telemetry=telemetry
            )
            for task in tasks
        ]
    else:
        runner = runner if runner is not None else ExperimentRunner()
        runs = [outcome.result for outcome in runner.run_batch(tasks)]

    result = ShowdownResult(spec_hashes=hashes)
    labels = [
        (workload, controller)
        for workload in workloads
        for controller in controllers
    ]
    for (workload, controller), run in zip(labels, runs):
        p99_ms = run.latency.as_millis()["p99_ms"]
        result.rows.append(
            {
                "workload": workload,
                "controller": controller,
                "p99_ms": p99_ms,
                "slo_ms": slo_ms,
                "p99_over_slo": p99_ms / slo_ms,
                "slo_met": p99_ms <= slo_ms,
                "drop_rate_pct": run.drop_rate * 100.0,
                "secondary_progress": run.secondary_progress,
                "updates_applied": run.controller_updates,
                "polls": run.controller_polls,
            }
        )

    result.ranking = _rank(result.rows, controllers)
    return result


def _rank(
    rows: Sequence[Dict[str, object]], controllers: Sequence[str]
) -> List[Dict[str, object]]:
    """Aggregate per-run rows into one ranked row per controller.

    Primary objective is SLO attainment (how many workloads stayed under the
    SLO), then mean normalised tail latency, then harvested secondary
    throughput — the paper's "protect the primary first, harvest second"
    ordering.  Ties break on the controller name so the ranking is total.
    """
    ranking: List[Dict[str, object]] = []
    for controller in controllers:
        mine = [row for row in rows if row["controller"] == controller]
        if not mine:
            continue
        ratios = [float(row["p99_over_slo"]) for row in mine]
        ranking.append(
            {
                "controller": controller,
                "slo_met": sum(1 for row in mine if row["slo_met"]),
                "workloads": len(mine),
                "mean_p99_over_slo": sum(ratios) / len(ratios),
                "worst_p99_ms": max(float(row["p99_ms"]) for row in mine),
                "secondary_progress": sum(
                    float(row["secondary_progress"]) for row in mine
                ),
                "updates_applied": sum(int(row["updates_applied"]) for row in mine),
            }
        )
    ranking.sort(
        key=lambda row: (
            -int(row["slo_met"]),
            float(row["mean_p99_over_slo"]),
            -float(row["secondary_progress"]),
            str(row["controller"]),
        )
    )
    for position, row in enumerate(ranking, start=1):
        row["rank"] = position
    return ranking


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _render_showdown(result: ShowdownResult, fmt: str) -> str:
    """Render the two-table showdown output in any shared format.

    The legacy stdout bytes of table/json/csv are load-bearing (CI and the
    README examples diff them), so each branch reproduces exactly what the
    old ``print`` pipeline emitted.
    """
    if fmt == "json":
        return (
            json.dumps(
                {"rows": result.rows, "ranking": result.ranking}, indent=2, sort_keys=True
            )
            + "\n"
        )
    if fmt == "jsonl":
        return rows_to_jsonl(result.rows) + rows_to_jsonl(result.ranking)
    if fmt == "csv":
        return (
            rows_to_csv(result.rows, columns=list(DETAIL_COLUMNS))
            + "\n"
            + rows_to_csv(result.ranking, columns=list(RANKING_COLUMNS))
            + "\n"
        )
    return (
        "Per-run results\n"
        + format_table(result.rows, columns=list(DETAIL_COLUMNS))
        + "\n\nController ranking (best first)\n"
        + format_table(result.ranking, columns=list(RANKING_COLUMNS))
        + f"\n\nwinner: {result.winner()}\n"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ...cli import (
        EXIT_OK,
        EXIT_USAGE,
        add_bundle_option,
        add_output_options,
        add_profile_option,
        add_seed_option,
        add_telemetry_option,
        add_workers_option,
        resolve_output,
        write_output,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.showdown",
        description="Race every CPU controller across trace-driven workloads.",
    )
    parser.add_argument(
        "--controllers",
        default=",".join(CONTROLLER_POLICIES),
        help=f"comma-separated controllers (default: all of {','.join(CONTROLLER_POLICIES)})",
    )
    parser.add_argument(
        "--workloads",
        default=",".join(SHOWDOWN_WORKLOADS),
        help=f"comma-separated workload shapes (default: {','.join(SHOWDOWN_WORKLOADS)})",
    )
    parser.add_argument("--duration", type=float, default=10.0, help="measured seconds per run")
    parser.add_argument("--warmup", type=float, default=1.0, help="warm-up seconds per run")
    add_seed_option(parser, default=1, help="experiment seed shared by every cell")
    parser.add_argument("--slo-ms", type=float, default=15.0, help="P99 SLO in milliseconds")
    parser.add_argument("--base-qps", type=float, default=None, help="override the base load")
    parser.add_argument("--peak-qps", type=float, default=None, help="override the peak load")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="inject the default chaos fault plan (degraded cores, telemetry "
        "dropout, controller crash) into every cell",
    )
    add_workers_option(parser)
    add_output_options(parser)
    add_profile_option(parser)
    add_telemetry_option(
        parser, detail="cells run serially in-process while instrumented"
    )
    add_bundle_option(parser)
    args = parser.parse_args(argv)

    telemetry = None
    if args.telemetry:
        from ...telemetry import TelemetrySession

        telemetry = TelemetrySession.to_path(args.telemetry, source="showdown")

    def _execute():
        return run_showdown(
            controllers=_csv_list(args.controllers),
            workloads=_csv_list(args.workloads),
            duration=args.duration,
            warmup=args.warmup,
            seed=args.seed,
            slo_ms=args.slo_ms,
            base_qps=args.base_qps,
            peak_qps=args.peak_qps,
            runner=ExperimentRunner(max_workers=args.workers),
            telemetry=telemetry,
            faults=(
                default_chaos_plan(args.duration, args.warmup) if args.chaos else None
            ),
        )

    try:
        fmt, out_path = resolve_output(args.out, args.format)
        if args.profile:
            from ...telemetry.profiling import run_profiled

            result = run_profiled(_execute, args.profile)
        else:
            result = _execute()
    except ConfigError as exc:
        from ...telemetry.log import get_logger

        get_logger("repro.experiments.showdown").error("command failed", error=str(exc))
        return EXIT_USAGE
    finally:
        if telemetry is not None:
            telemetry.close()

    write_output(_render_showdown(result, fmt), out_path)
    if args.bundle:
        from ...reporting.bundle import write_bundle

        write_bundle(
            args.bundle,
            kind="showdown",
            name="controller-showdown" + ("+chaos" if args.chaos else ""),
            rows=result.rows,
            fmt=fmt if fmt in ("json", "jsonl", "csv") else "json",
            summary=result.ranking,
            seeds=[args.seed],
            spec_hashes=result.spec_hashes,
            meta={
                "controllers": _csv_list(args.controllers),
                "workloads": _csv_list(args.workloads),
                "chaos": args.chaos,
                "winner": result.winner(),
            },
        )
    return EXIT_OK
