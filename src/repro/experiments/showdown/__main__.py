"""``python -m repro.experiments.showdown`` entry point."""

import sys

from . import main

sys.exit(main())
