"""``python -m repro.experiments.matrix`` entry point."""

import sys

from . import main

sys.exit(main())
