"""Declarative scenario matrix over the parallel experiment runtime.

PR 1 made single-machine experiments cheap to run in bulk (process fan-out,
content-addressed caching); this module makes them cheap to *describe*.  A
:class:`Scenario` is data — a builder returning an :class:`ExperimentSpec`,
plus named axes whose value grids are expanded into labelled spec batches —
and every scenario lives in a process-wide registry populated by the
``@scenario`` decorators in :mod:`repro.experiments.scenarios`.

The registry feeds three consumers:

* :func:`run_scenario` / :func:`run_matrix` — expand a scenario (optionally
  with overridden axis grids) and execute the batch on an
  :class:`~repro.runtime.runner.ExperimentRunner`, returning one summary row
  per variant in deterministic order.
* the ``python -m repro.experiments.matrix`` CLI — ``--list`` the catalog,
  ``--run`` any scenario, override grids with ``--grid axis=v1,v2``, and emit
  ``--out json|csv``.
* the golden-metrics regression suite — seeded runs of the core paper
  scenarios compared against checked-in JSON.

Because execution goes through the shared runner, identical variants are
simulated once, repeat invocations are served from the cache, and row order
is independent of the worker count.
"""

from __future__ import annotations

import argparse
import difflib
import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ...config.schema import ExperimentSpec
from ...config.validation import validate_experiment, validate_fleet
from ...errors import ConfigError
from ..reporting import format_table
from ..single_machine import SingleMachineResult

__all__ = [
    "Scenario",
    "ScenarioVariant",
    "MatrixResult",
    "scenario",
    "register",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "expand",
    "run_scenario",
    "run_matrix",
    "load_catalog",
    "main",
]

#: Builder parameters every scenario accepts (forwarded only when the builder
#: signature declares them, so e.g. a diurnal scenario may own its QPS).
COMMON_PARAMS = ("qps", "duration", "warmup", "seed")

_REGISTRY: Dict[str, "Scenario"] = {}


@dataclass(frozen=True)
class Scenario:
    """One registered scenario: a spec builder plus its sweep axes.

    ``axes`` maps builder keyword arguments to their default value grids; the
    cartesian product of the grids is the scenario's variant matrix.  A
    scenario without axes has exactly one variant.  ``tier`` records which
    pytest tier the scenario's regression test lives in (``fast`` scenarios
    are cheap enough for the inner loop; ``slow`` ones run nightly).
    ``kind`` selects the execution engine: ``"experiment"`` builders return
    an :class:`ExperimentSpec` run on the single-machine simulator;
    ``"fleet"`` builders return a :class:`~repro.config.schema.FleetSpec`
    run by :class:`~repro.fleet.simulate.FleetSimulation`.
    """

    name: str
    description: str
    builder: Callable[..., ExperimentSpec]
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    tags: Tuple[str, ...] = ()
    tier: str = "fast"
    kind: str = "experiment"

    def __post_init__(self) -> None:
        if self.tier not in ("fast", "slow"):
            raise ConfigError(f"scenario tier must be 'fast' or 'slow', got {self.tier!r}")
        if self.kind not in ("experiment", "fleet"):
            raise ConfigError(
                f"scenario kind must be 'experiment' or 'fleet', got {self.kind!r}"
            )
        parameters = inspect.signature(self.builder).parameters
        for axis, values in self.axes:
            if axis not in parameters:
                raise ConfigError(
                    f"scenario {self.name!r} declares axis {axis!r} but its builder "
                    f"does not accept that parameter"
                )
            if not values:
                raise ConfigError(f"scenario {self.name!r} axis {axis!r} has no values")

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(axis for axis, _ in self.axes)

    @property
    def multi_secondary(self) -> bool:
        """Whether any variant co-locates more than one secondary job."""
        return "multi-secondary" in self.tags

    def variant_count(self, grid: Optional[Mapping[str, Sequence[Any]]] = None) -> int:
        merged = self._merged_axes(grid)
        count = 1
        for _, values in merged:
            count *= len(values)
        return count

    def _merged_axes(
        self, grid: Optional[Mapping[str, Sequence[Any]]]
    ) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        if not grid:
            return self.axes
        known = dict(self.axes)
        for axis in grid:
            if axis not in known:
                raise ConfigError(
                    f"scenario {self.name!r} has no axis {axis!r} "
                    f"(axes: {list(known) or 'none'})"
                )
        return tuple(
            (axis, tuple(grid[axis]) if axis in grid else values)
            for axis, values in self.axes
        )

    def expand(
        self,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        **common: Any,
    ) -> List["ScenarioVariant"]:
        """Expand the (optionally overridden) axis grids into labelled specs.

        Keys outside :data:`COMMON_PARAMS` are errors.  A common value is
        forwarded to the builder only when its signature accepts it and it is
        not one of the scenario's axes — scenarios that own a knob (diurnal
        owns its QPS, sweeps own their swept parameter) deliberately ignore
        the common override; use ``grid`` to reshape an axis instead.
        """
        parameters = inspect.signature(self.builder).parameters
        for key in common:
            if key not in COMMON_PARAMS:
                raise ConfigError(f"unknown common parameter {key!r}")
        merged = self._merged_axes(grid)
        # A parameter that is also an axis is owned by the grid; override its
        # values with --grid rather than with a common parameter.
        axis_names = {axis for axis, _ in merged}
        forwarded = {
            key: value
            for key, value in common.items()
            if value is not None and key in parameters and key not in axis_names
        }
        variants: List[ScenarioVariant] = []
        for combo in itertools.product(*(values for _, values in merged)):
            axis_values = dict(zip((axis for axis, _ in merged), combo))
            spec = self.builder(**axis_values, **forwarded)
            if self.kind == "fleet":
                validate_fleet(spec)
            else:
                validate_experiment(spec)
            variants.append(
                ScenarioVariant(
                    scenario=self.name,
                    label=_variant_label(self.name, axis_values),
                    axis_values=tuple(axis_values.items()),
                    spec=spec,
                )
            )
        return variants


@dataclass(frozen=True)
class ScenarioVariant:
    """One point of a scenario's grid: a label and its fully-built spec."""

    scenario: str
    label: str
    axis_values: Tuple[Tuple[str, Any], ...]
    spec: ExperimentSpec


@dataclass
class MatrixResult:
    """Executed variants of one scenario, in grid order."""

    scenario: Scenario
    variants: List[ScenarioVariant]
    results: List[SingleMachineResult]
    cache_hits: int = 0

    def rows(self) -> List[Dict[str, Any]]:
        """One flat row per variant: axes, then the summary metrics.

        Rows are a pure function of the variant specs (cache-hit status is
        deliberately excluded), so repeat runs and runs at different worker
        counts emit byte-identical tables.
        """
        rows: List[Dict[str, Any]] = []
        for variant, result in zip(self.variants, self.results):
            row: Dict[str, Any] = {"scenario": variant.scenario, "label": variant.label}
            row.update(variant.axis_values)
            row.update(result.summary())
            breakdown = getattr(result, "secondary_breakdown", None) or {}
            for name in sorted(breakdown):
                row[f"progress:{name}"] = breakdown[name]["progress"]
            rows.append(row)
        return rows


def _variant_label(name: str, axis_values: Mapping[str, Any]) -> str:
    if not axis_values:
        return name
    rendered = ",".join(f"{axis}={_render(value)}" for axis, value in axis_values.items())
    return f"{name}[{rendered}]"


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# ------------------------------------------------------------------- registry
def register(scenario_obj: Scenario) -> Scenario:
    """Add a scenario to the process-wide registry (name collisions are errors)."""
    if scenario_obj.name in _REGISTRY:
        raise ConfigError(f"scenario {scenario_obj.name!r} is already registered")
    _REGISTRY[scenario_obj.name] = scenario_obj
    return scenario_obj


def scenario(
    name: str,
    description: str,
    axes: Optional[Mapping[str, Sequence[Any]]] = None,
    tags: Iterable[str] = (),
    tier: str = "fast",
    kind: str = "experiment",
) -> Callable[[Callable[..., ExperimentSpec]], Callable[..., ExperimentSpec]]:
    """Decorator registering a builder function as a named scenario.

    The builder itself is returned unchanged, so decorated functions remain
    ordinary spec builders for the figure harnesses.
    """

    def decorate(builder: Callable[..., ExperimentSpec]) -> Callable[..., ExperimentSpec]:
        register(
            Scenario(
                name=name,
                description=description,
                builder=builder,
                axes=tuple((axis, tuple(values)) for axis, values in (axes or {}).items()),
                tags=tuple(tags),
                tier=tier,
                kind=kind,
            )
        )
        return builder

    return decorate


def load_catalog() -> None:
    """Populate the registry with the built-in catalog (idempotent)."""
    from .. import scenarios  # noqa: F401 — importing runs the decorators
    from ...fleet import scenarios as fleet_scenarios  # noqa: F401


def get_scenario(name: str) -> Scenario:
    load_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        close = difflib.get_close_matches(name, sorted(_REGISTRY), n=3, cutoff=0.5)
        hint = f"; did you mean {', '.join(repr(match) for match in close)}?" if close else ""
        raise ConfigError(
            f"unknown scenario {name!r}{hint} (run with --list to see the catalog)"
        ) from None


def scenario_names() -> List[str]:
    load_catalog()
    return sorted(_REGISTRY)


def iter_scenarios() -> List[Scenario]:
    load_catalog()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def expand(
    name: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    **common: Any,
) -> List[ScenarioVariant]:
    """Expand a registered scenario into labelled specs without running it."""
    return get_scenario(name).expand(grid=grid, **common)


# ------------------------------------------------------------------ execution
def run_scenario(
    name: str,
    runner=None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    telemetry=None,
    **common: Any,
) -> MatrixResult:
    """Expand and execute one scenario as a single runner batch.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.stream.TelemetrySession`.  Because the process
    fan-out cannot stream probes back from worker processes, an instrumented
    experiment-kind run executes its variants serially in this process (and
    bypasses the result cache — a cache hit would have no snapshots to
    publish).  Fleet-kind scenarios keep their shard fan-out; their
    per-bucket snapshots are produced in the parent.  Results are identical
    either way.
    """
    from ...runtime.runner import ExperimentTask, default_runner

    scenario_obj = get_scenario(name)
    variants = scenario_obj.expand(grid=grid, **common)
    active = runner if runner is not None else default_runner()
    if scenario_obj.kind == "fleet":
        from ...fleet.simulate import FleetSimulation

        hits_before = active.cache.hits
        results = [
            FleetSimulation(variant.spec, runner=active, telemetry=telemetry).run()
            for variant in variants
        ]
        return MatrixResult(
            scenario=scenario_obj,
            variants=variants,
            results=results,
            cache_hits=active.cache.hits - hits_before,
        )
    if telemetry is not None:
        from ..single_machine import SingleMachineExperiment

        results = [
            SingleMachineExperiment(variant.spec, scenario=variant.label).run(
                telemetry=telemetry
            )
            for variant in variants
        ]
        return MatrixResult(
            scenario=scenario_obj, variants=variants, results=results, cache_hits=0
        )
    outcomes = active.run_batch(
        [ExperimentTask(variant.spec, scenario=variant.label) for variant in variants]
    )
    return MatrixResult(
        scenario=scenario_obj,
        variants=variants,
        results=[outcome.result for outcome in outcomes],
        cache_hits=sum(outcome.from_cache for outcome in outcomes),
    )


def run_matrix(
    names: Sequence[str],
    runner=None,
    telemetry=None,
    **common: Any,
) -> List[MatrixResult]:
    """Run several scenarios, sharing the runner's cache across them."""
    from ...runtime.runner import default_runner

    active = runner if runner is not None else default_runner()
    return [
        run_scenario(name, runner=active, telemetry=telemetry, **common)
        for name in names
    ]


# ------------------------------------------------------------------------ CLI
def _catalog_table() -> str:
    rows = []
    for item in iter_scenarios():
        axes = "; ".join(
            f"{axis}={','.join(_render(v) for v in values)}" for axis, values in item.axes
        )
        rows.append(
            {
                "scenario": item.name,
                "kind": item.kind,
                "tier": item.tier,
                "variants": item.variant_count(),
                "axes": axes or "-",
                "tags": ",".join(item.tags) or "-",
                "description": item.description,
            }
        )
    return format_table(
        rows, columns=["scenario", "kind", "tier", "variants", "axes", "tags", "description"]
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ...cli import (
        EXIT_FAILURES,
        EXIT_OK,
        EXIT_USAGE,
        add_bundle_option,
        add_output_options,
        add_profile_option,
        add_seed_option,
        add_telemetry_option,
        add_workers_option,
        parse_grid,
        render_output,
        resolve_output,
        write_output,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.matrix",
        description="List and run the registered experiment scenario catalog.",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument("--list", action="store_true", help="print the scenario catalog")
    action.add_argument(
        "--run",
        metavar="NAME[,NAME...]",
        help="expand and run one or more scenarios (comma separated); a "
        "failing scenario is reported in an error table, the rest still run",
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="AXIS=V1,V2",
        help="override one axis grid (repeatable)",
    )
    add_workers_option(parser)
    add_output_options(parser)
    add_profile_option(parser)
    add_telemetry_option(
        parser, detail="experiment variants run serially in-process while instrumented"
    )
    parser.add_argument("--qps", type=float, default=None, help="override workload QPS")
    parser.add_argument("--duration", type=float, default=None, help="override duration (s)")
    parser.add_argument("--warmup", type=float, default=None, help="override warmup (s)")
    add_seed_option(parser, default=None, help="override the seed")
    add_bundle_option(parser)
    args = parser.parse_args(argv)

    if args.list:
        print(_catalog_table())
        count = len(scenario_names())
        composites = sum(item.multi_secondary for item in iter_scenarios())
        fleet = sum(item.kind == "fleet" for item in iter_scenarios())
        print(
            f"\n{count} scenarios "
            f"({composites} multi-secondary composites, {fleet} fleet)"
        )
        return 0

    from ...runtime.runner import ExperimentRunner
    from ...telemetry.log import get_logger

    log = get_logger("repro.experiments.matrix")
    names = [name.strip() for name in args.run.split(",") if name.strip()]

    # 0 forces serial (the runner clamps to >= 1), matching REPRO_RUNNER_WORKERS.
    runner = (
        ExperimentRunner(max_workers=args.workers) if args.workers is not None else None
    )
    telemetry = None
    if args.telemetry:
        from ...telemetry import TelemetrySession

        telemetry = TelemetrySession.to_path(
            args.telemetry, source="matrix", meta={"scenario": args.run}
        )

    def _execute():
        # One scenario blowing up mid-run must not take the batch down with
        # it: the failure is recorded, the remaining scenarios still run, and
        # every completed result is still flushed below.
        from ...runtime.runner import default_runner

        active = runner if runner is not None else default_runner()
        grid = parse_grid(args.grid)
        results: List[MatrixResult] = []
        failures: List[Dict[str, str]] = []
        for name in names:
            try:
                results.append(
                    run_scenario(
                        name,
                        runner=active,
                        grid=grid,
                        telemetry=telemetry,
                        qps=args.qps,
                        duration=args.duration,
                        warmup=args.warmup,
                        seed=args.seed,
                    )
                )
            except Exception as error:
                log.error("scenario failed", scenario=name, error=str(error))
                failures.append(
                    {"scenario": name, "error": f"{type(error).__name__}: {error}"}
                )
        return results, failures

    try:
        if not names:
            raise ConfigError("--run expects at least one scenario name")
        # Malformed grids, unknown names and unusable output flags are caller
        # mistakes, not run failures: reject the whole invocation (exit 2)
        # before running anything rather than burning a batch on a typo.
        fmt, out_path = resolve_output(args.out, args.format)
        parse_grid(args.grid)
        for name in names:
            get_scenario(name)
        if args.profile:
            from ...telemetry.profiling import run_profiled

            results, failures = run_profiled(_execute, args.profile)
        else:
            results, failures = _execute()
    except ConfigError as error:
        log.error("command failed", error=str(error))
        return EXIT_USAGE
    finally:
        if telemetry is not None:
            telemetry.close()

    rows = [row for result in results for row in result.rows()]
    if fmt == "table" and out_path is None:
        for result in results:
            print(f"== {result.scenario.name}: {result.scenario.description} ==")
            print(format_table(result.rows()))
            print(f"\n{len(result.rows())} variants, {result.cache_hits} served from cache")
    else:
        write_output(render_output(rows, fmt), out_path)
    if args.bundle:
        from ...reporting.bundle import write_bundle
        from ...runtime import spec_hash

        write_bundle(
            args.bundle,
            kind="matrix",
            name=",".join(names),
            rows=rows,
            fmt=fmt if fmt != "table" else "json",
            seeds=sorted(
                {variant.spec.seed for result in results for variant in result.variants}
            ),
            spec_hashes=[
                spec_hash(variant.spec)
                for result in results
                for variant in result.variants
            ],
            meta={"scenarios": names, "grid": args.grid},
        )
    if failures:
        print(f"\n== {len(failures)} of {len(names)} scenarios failed ==")
        print(format_table(failures, columns=["scenario", "error"]))
        return EXIT_FAILURES
    return EXIT_OK


