"""Head-to-head comparison of isolation approaches (Figure 8, Section 6.1.4).

Runs the same primary workload and the same "high" CPU bully under every
isolation mechanism and reports the three panels of Figure 8: the 99th
percentile query latency, the idle CPU fraction, and the secondary's absolute
progress — plus the relative-progress numbers quoted in the text
(progress as a percentage of the unrestricted run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config.schema import ExperimentSpec
from . import scenarios
from .single_machine import SingleMachineResult

__all__ = ["ComparisonRow", "ComparisonResult", "IsolationComparison"]


@dataclass(frozen=True)
class ComparisonRow:
    """One bar group of Figure 8."""

    approach: str
    p99_ms: float
    p50_ms: float
    idle_cpu_pct: float
    secondary_progress: float
    secondary_cpu_pct: float
    drop_rate_pct: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "p99_ms": self.p99_ms,
            "p50_ms": self.p50_ms,
            "idle_cpu_pct": self.idle_cpu_pct,
            "secondary_progress": self.secondary_progress,
            "secondary_cpu_pct": self.secondary_cpu_pct,
            "drop_rate_pct": self.drop_rate_pct,
        }


@dataclass
class ComparisonResult:
    """All approaches at one load level."""

    qps: float
    rows: List[ComparisonRow] = field(default_factory=list)

    def row(self, approach: str) -> ComparisonRow:
        for row in self.rows:
            if row.approach == approach:
                return row
        raise KeyError(f"no approach named {approach!r}")

    def relative_progress(self) -> Dict[str, float]:
        """Secondary progress as a fraction of the unrestricted (no isolation) run."""
        baseline = self.row("no_isolation").secondary_progress
        if baseline <= 0:
            return {row.approach: 0.0 for row in self.rows}
        return {row.approach: row.secondary_progress / baseline for row in self.rows}

    def as_table(self) -> List[Dict[str, float]]:
        relative = self.relative_progress()
        table = []
        for row in self.rows:
            entry: Dict[str, float] = {"approach": row.approach}
            entry.update(row.as_dict())
            entry["relative_progress_pct"] = relative[row.approach] * 100.0
            table.append(entry)
        return table


class IsolationComparison:
    """Runs standalone / no-isolation / blind / static-cores / cpu-cycles."""

    APPROACHES = ("standalone", "no_isolation", "blind_isolation", "cpu_cores", "cpu_cycles")

    def __init__(
        self,
        qps: float = scenarios.AVERAGE_LOAD_QPS,
        duration: float = 5.0,
        warmup: float = 1.0,
        seed: int = 1,
        buffer_cores: int = 8,
        static_secondary_cores: int = 8,
        cycle_fraction: float = 0.05,
        bully_threads: int = scenarios.HIGH_BULLY_THREADS,
        runner=None,
    ) -> None:
        self._runner = runner
        self._qps = qps
        self._duration = duration
        self._warmup = warmup
        self._seed = seed
        self._buffer_cores = buffer_cores
        self._static_cores = static_secondary_cores
        self._cycle_fraction = cycle_fraction
        self._bully_threads = bully_threads
        self.results: Dict[str, SingleMachineResult] = {}

    def _spec_for(self, approach: str) -> ExperimentSpec:
        common = dict(
            qps=self._qps, duration=self._duration, warmup=self._warmup, seed=self._seed
        )
        if approach == "standalone":
            return scenarios.standalone(**common)
        if approach == "no_isolation":
            return scenarios.no_isolation(self._bully_threads, **common)
        if approach == "blind_isolation":
            return scenarios.blind_isolation(self._buffer_cores, self._bully_threads, **common)
        if approach == "cpu_cores":
            return scenarios.static_cores(self._static_cores, self._bully_threads, **common)
        if approach == "cpu_cycles":
            return scenarios.cpu_cycles(self._cycle_fraction, self._bully_threads, **common)
        raise KeyError(f"unknown approach {approach!r}")

    def run(self, approaches: Optional[List[str]] = None) -> ComparisonResult:
        """Run the selected approaches (all of Figure 8 by default).

        All approaches are submitted as one batch to the experiment runner, so
        they execute across worker processes and cached runs are reused.
        """
        from ..runtime.runner import ExperimentTask, default_runner

        runner = self._runner if self._runner is not None else default_runner()
        selected = list(approaches) if approaches is not None else list(self.APPROACHES)
        result = ComparisonResult(qps=self._qps)
        tasks = [
            ExperimentTask(self._spec_for(approach), scenario=approach)
            for approach in selected
        ]
        outcomes = runner.run_batch(tasks)
        for approach, outcome in zip(selected, outcomes):
            run = outcome.result
            self.results[approach] = run
            summary = run.summary()
            result.rows.append(
                ComparisonRow(
                    approach=approach,
                    p99_ms=summary["p99_ms"],
                    p50_ms=summary["p50_ms"],
                    idle_cpu_pct=summary["idle_cpu_pct"],
                    secondary_progress=run.secondary_progress,
                    secondary_cpu_pct=summary["secondary_cpu_pct"],
                    drop_rate_pct=summary["drop_rate_pct"],
                )
            )
        return result
