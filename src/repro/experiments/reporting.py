"""Plain-text table rendering for experiment results.

The benchmark harness prints the same rows/series the paper's figures plot;
this module owns the formatting so benchmarks, examples and tests all produce
identical, diff-friendly output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_figure", "print_figure"]

Number = Union[int, float]
Row = Mapping[str, Union[str, Number]]


def _format_value(value: Union[str, Number]) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def format_table(rows: Sequence[Row], columns: Sequence[str] = None) -> str:
    """Render rows as an aligned fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_format_value(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_figure(title: str, rows: Sequence[Row], columns: Sequence[str] = None,
                  notes: Iterable[str] = ()) -> str:
    """Render a titled figure table plus free-form notes."""
    parts = [f"== {title} =="]
    parts.append(format_table(rows, columns))
    for note in notes:
        parts.append(f"  note: {note}")
    return "\n".join(parts)


def print_figure(title: str, rows: Sequence[Row], columns: Sequence[str] = None,
                 notes: Iterable[str] = ()) -> None:
    """Print a figure table (used by the benchmark harness)."""
    print()
    print(format_figure(title, rows, columns, notes))


def rows_from_dicts(dicts: Sequence[Dict[str, Number]], label_key: str = "label") -> List[Row]:
    """Helper for turning keyed summaries into printable rows."""
    return [dict(d) for d in dicts]
