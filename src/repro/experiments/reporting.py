"""Plain-text table rendering for experiment results.

The benchmark harness prints the same rows/series the paper's figures plot;
this module owns the formatting so benchmarks, examples and tests all produce
identical, diff-friendly output.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_figure", "print_figure", "rows_to_csv", "rows_to_json"]

Number = Union[int, float]
Row = Mapping[str, Union[str, Number]]


def _format_value(value: Union[str, Number]) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def format_table(rows: Sequence[Row], columns: Sequence[str] = None) -> str:
    """Render rows as an aligned fixed-width text table.

    When ``columns`` is omitted, the union of all rows' keys is used (in
    first-appearance order), so ragged rows — e.g. per-job progress columns
    that only exist for the larger variants of a sweep — are never dropped.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = _all_columns(rows)
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_format_value(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for index, line in enumerate(rendered):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_figure(title: str, rows: Sequence[Row], columns: Sequence[str] = None,
                  notes: Iterable[str] = ()) -> str:
    """Render a titled figure table plus free-form notes."""
    parts = [f"== {title} =="]
    parts.append(format_table(rows, columns))
    for note in notes:
        parts.append(f"  note: {note}")
    return "\n".join(parts)


def print_figure(title: str, rows: Sequence[Row], columns: Sequence[str] = None,
                 notes: Iterable[str] = ()) -> None:
    """Print a figure table (used by the benchmark harness)."""
    print()
    print(format_figure(title, rows, columns, notes))


def rows_from_dicts(dicts: Sequence[Dict[str, Number]], label_key: str = "label") -> List[Row]:
    """Helper for turning keyed summaries into printable rows."""
    return [dict(d) for d in dicts]


def _all_columns(rows: Sequence[Row]) -> List[str]:
    """Union of row keys, in first-appearance order (rows may be ragged)."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_to_csv(rows: Sequence[Row], columns: Sequence[str] = None) -> str:
    """Deprecated alias of :func:`repro.reporting.rows.rows_to_csv`.

    The renderings moved to :mod:`repro.reporting.rows` so the CLIs, the
    bundle writer and this legacy import all share one byte-level
    implementation.  This shim delegates (output is byte-identical) and will
    be removed in a future release.
    """
    warnings.warn(
        "repro.experiments.reporting.rows_to_csv moved to "
        "repro.reporting.rows.rows_to_csv",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..reporting.rows import rows_to_csv as _rows_to_csv

    return _rows_to_csv(rows, columns=columns)


def rows_to_json(rows: Sequence[Row], indent: int = 2) -> str:
    """Deprecated alias of :func:`repro.reporting.rows.rows_to_json`.

    Delegates to the shared renderer (output is byte-identical) and will be
    removed in a future release.
    """
    warnings.warn(
        "repro.experiments.reporting.rows_to_json moved to "
        "repro.reporting.rows.rows_to_json",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..reporting.rows import rows_to_json as _rows_to_json

    return _rows_to_json(rows, indent=indent)
