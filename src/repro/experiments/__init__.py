"""Experiment harnesses reproducing the paper's evaluation."""

from . import figures, matrix, scenarios, showdown
from .comparison import ComparisonResult, ComparisonRow, IsolationComparison
from .matrix import MatrixResult, Scenario, ScenarioVariant, run_matrix, run_scenario
from .reporting import format_figure, format_table, print_figure, rows_to_csv, rows_to_json
from .showdown import ShowdownResult, run_showdown
from .single_machine import SingleMachineExperiment, SingleMachineResult

__all__ = [
    "figures",
    "matrix",
    "scenarios",
    "showdown",
    "ShowdownResult",
    "run_showdown",
    "ComparisonResult",
    "ComparisonRow",
    "IsolationComparison",
    "MatrixResult",
    "Scenario",
    "ScenarioVariant",
    "run_matrix",
    "run_scenario",
    "format_figure",
    "format_table",
    "print_figure",
    "rows_to_csv",
    "rows_to_json",
    "SingleMachineExperiment",
    "SingleMachineResult",
]
