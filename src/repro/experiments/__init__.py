"""Experiment harnesses reproducing the paper's evaluation."""

from . import figures, scenarios
from .comparison import ComparisonResult, ComparisonRow, IsolationComparison
from .reporting import format_figure, format_table, print_figure
from .single_machine import SingleMachineExperiment, SingleMachineResult

__all__ = [
    "figures",
    "scenarios",
    "ComparisonResult",
    "ComparisonRow",
    "IsolationComparison",
    "format_figure",
    "format_table",
    "print_figure",
    "SingleMachineExperiment",
    "SingleMachineResult",
]
