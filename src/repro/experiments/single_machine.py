"""Single-machine colocation experiments (Section 6.1).

This module assembles one machine — hardware, kernel, primary, secondaries,
optionally PerfIso — replays an open-loop query workload against it, and
returns the measurements the paper reports: query latency percentiles, the
Primary/Secondary/OS/Idle CPU breakdown, dropped queries and the secondary's
progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config.schema import ExperimentSpec
from ..config.validation import validate_experiment
from ..core.controller import PerfIsoController
from ..errors import ExperimentError
from ..faults.injector import (
    DegradedForecast,
    DegradedLatencyWindow,
    SingleMachineFaultInjector,
)
from ..hardware.machine import Machine
from ..hostos.syscalls import Kernel
from ..core.policies import policy_class
from ..metrics.cpu import CpuBreakdown, CpuUtilizationSampler
from ..metrics.latency import LatencyCollector, LatencyStats, SlidingLatencyWindow
from ..simulation.engine import SimulationEngine
from ..simulation.randomness import RandomStreams
from ..tenants.base import SecondaryTenant
from ..tenants.cpu_bully import CpuBullyTenant
from ..tenants.disk_bully import DiskBullyTenant
from ..tenants.hdfs import HdfsTenant
from ..tenants.indexserve import IndexServeTenant
from ..tenants.ml_training import MlTrainingTenant
from ..metrics.timeseries import TimeSeries
from ..workloads.arrival import OpenLoopClient, VariableRateClient
from ..workloads.arrival_models import (
    ARRIVAL_MODEL_STREAM,
    ConstantArrival,
    build_arrival_model,
)
from ..workloads.query_trace import QueryTrace

__all__ = ["SingleMachineResult", "SingleMachineExperiment"]

#: In-process memo of generated query traces.  A trace is a pure function of
#: ``(indexserve spec, size, seed)`` — the "trace" random stream it consumes
#: is derived from the experiment seed and used for nothing else — so
#: experiments sharing those three (every Figure 8 scenario at one load, every
#: fleet calibration point per group) can replay one generated trace instead
#: of regenerating it.  Sharing is sound because traces are immutable after
#: construction and reuse leaves every other random stream untouched.
_TRACE_MEMO: Dict[str, QueryTrace] = {}
_TRACE_MEMO_MAX = 32


def _trace_for(spec: ExperimentSpec, size: int, streams: RandomStreams) -> QueryTrace:
    from ..runtime.spec_hash import spec_hash

    key = spec_hash([spec.indexserve, size, spec.seed], namespace="query-trace")
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = QueryTrace(spec.indexserve, size=size, rng=streams.stream("trace"))
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


@dataclass
class SingleMachineResult:
    """Measurements from one single-machine run."""

    scenario: str
    qps: float
    duration: float
    latency: LatencyStats
    cpu: CpuBreakdown
    cpu_timeseries: List[Dict[str, float]]
    queries_submitted: int
    queries_completed: int
    queries_dropped: int
    secondary_progress: float
    secondary_cpu_seconds: float
    controller_polls: int = 0
    controller_updates: int = 0
    secondary_core_history: List[int] = field(default_factory=list)
    #: Per-secondary ``{job name: {"progress": ..., "cpu_seconds": ...}}``.
    secondary_breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        total = self.queries_completed + self.queries_dropped
        return self.queries_dropped / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dictionary used by the benchmark harness tables."""
        row: Dict[str, float] = {
            "qps": self.qps,
            "p50_ms": self.latency.as_millis()["p50_ms"],
            "p95_ms": self.latency.as_millis()["p95_ms"],
            "p99_ms": self.latency.as_millis()["p99_ms"],
            "drop_rate_pct": self.drop_rate * 100.0,
            "primary_cpu_pct": self.cpu.primary * 100.0,
            "secondary_cpu_pct": self.cpu.secondary * 100.0,
            "os_cpu_pct": self.cpu.os * 100.0,
            "idle_cpu_pct": self.cpu.idle * 100.0,
            "secondary_progress": self.secondary_progress,
        }
        row.update(self.extra)
        return row


class SingleMachineExperiment:
    """Builds and runs one single-machine colocation experiment."""

    def __init__(self, spec: ExperimentSpec, scenario: str = "custom") -> None:
        validate_experiment(spec)
        self._spec = spec
        self._scenario = scenario
        # Assembled on run(); kept as attributes so tests can inspect them.
        self.engine: Optional[SimulationEngine] = None
        self.kernel: Optional[Kernel] = None
        self.primary: Optional[IndexServeTenant] = None
        self.controller: Optional[PerfIsoController] = None
        self.secondaries: List[SecondaryTenant] = []
        self.arrival_model = None
        self.fault_injector: Optional[SingleMachineFaultInjector] = None

    @property
    def spec(self) -> ExperimentSpec:
        return self._spec

    # ------------------------------------------------------------------- run
    def run(self, telemetry=None) -> SingleMachineResult:
        """Run the experiment; ``telemetry`` optionally instruments it.

        ``telemetry`` is a :class:`~repro.telemetry.stream.TelemetrySession`.
        Instrumentation is strictly observational — probes draw from no
        random stream and a sliding latency window only *tees* samples the
        collector already took — so the result is byte-identical with or
        without it (pinned by ``tests/telemetry``).
        """
        spec = self._spec
        streams = RandomStreams(spec.seed)
        engine = SimulationEngine()
        machine = Machine(engine, spec.machine, name="node-0", rng=streams.stream("disks"))
        kernel = Kernel(engine, machine, spec.scheduler)
        self.engine, self.kernel = engine, kernel

        warmup_end = spec.workload.warmup
        # Latency-feedback policies (capability flag ``uses_latency``) read a
        # sliding P99 window; the collector tees every served sample into it.
        # For every other policy the collector runs its unchanged hot path.
        latency_window = None
        if spec.perfiso is not None and policy_class(spec.perfiso.cpu_policy).uses_latency:
            latency_window = SlidingLatencyWindow(window=spec.perfiso.pid.window)
        # Telemetry without a latency-feedback policy reads its windowed P99
        # straight off the collector's sample buffer at probe time (see
        # TelemetrySession.attach_single_machine) — maintaining a second
        # window structure just for probes taxed every served query and blew
        # the telemetry-overhead benchmark budget.
        collector = LatencyCollector(warmup_end=warmup_end, observer=latency_window)
        primary = IndexServeTenant(
            kernel, spec.indexserve, rng=streams.stream("indexserve"), collector=collector
        )
        primary.start()
        self.primary = primary

        # Time-varying workloads size the query trace by their mean offered
        # rate; for the stationary client mean_qps == qps, so legacy specs
        # draw the identical trace they always did.
        trace = _trace_for(
            spec,
            size=min(spec.workload.trace_queries, max(1000, int(spec.workload.mean_qps * spec.workload.total_time))),
            streams=streams,
        )
        # Arrival models draw only from their own named stream (the bursty
        # state path), so a trace-driven workload cannot perturb the draws of
        # any other component; constant-rate specs never touch the stream and
        # keep the PR-4 batched-gap fast path through OpenLoopClient.
        arrival_model = build_arrival_model(
            spec.workload,
            horizon=spec.workload.total_time,
            rng=streams.stream(ARRIVAL_MODEL_STREAM),
        )
        self.arrival_model = arrival_model
        if arrival_model is None:
            client = OpenLoopClient(
                engine,
                trace,
                qps=spec.workload.qps,
                duration=spec.workload.total_time,
                submit=lambda query, arrival: primary.submit(query, arrival),
                rng=streams.stream("arrivals"),
                arrival_process=spec.workload.arrival_process,
            )
        else:
            client = VariableRateClient(
                engine,
                trace,
                rate_fn=arrival_model.rate_at,
                duration=spec.workload.total_time,
                submit=lambda query, arrival: primary.submit(query, arrival),
                rng=streams.stream("arrivals"),
                # The client's default floor of 1 qps would silently drive
                # traffic through zero-QPS trace buckets.  A near-zero floor
                # plus the idle-recheck poll keeps idle windows genuinely
                # idle while still noticing when the rate comes back.
                min_rate=1e-9,
                idle_recheck=spec.workload.duration / 256.0,
            )

        secondaries = self._build_secondaries(kernel, streams)
        self.secondaries = secondaries

        # An all-disabled fault plan is exactly no plan: nothing is wrapped,
        # nothing is scheduled, and the run is byte-identical to a faultless
        # spec (fault schedules draw only from the reserved "faults" stream).
        faults = spec.faults if spec.faults is not None and not spec.faults.is_noop else None
        telemetry_fault = (
            faults.telemetry
            if faults is not None and faults.telemetry is not None and faults.telemetry.enabled
            else None
        )
        latency_proxy: Optional[DegradedLatencyWindow] = None
        forecast_proxy: Optional[DegradedForecast] = None

        controller: Optional[PerfIsoController] = None
        if spec.perfiso is not None:
            controller = PerfIsoController(kernel, spec.perfiso)
            controller.observe_primary(primary.process)
            # Forecast-driven policies ask the arrival model for the exact
            # peak over their horizon; constant workloads forecast trivially.
            forecast = (
                arrival_model
                if arrival_model is not None
                else ConstantArrival(spec.workload.qps)
            )
            controller_window = latency_window
            if telemetry_fault is not None:
                # The controller reads its signals through fault proxies; the
                # real window still receives every collector sample and the
                # telemetry session still reads the raw sources.
                forecast_proxy = DegradedForecast(forecast)
                forecast = forecast_proxy
                if latency_window is not None:
                    latency_proxy = DegradedLatencyWindow(latency_window)
                    controller_window = latency_proxy
            controller.attach_telemetry(forecast=forecast, latency_window=controller_window)
            self.controller = controller

        sampler = CpuUtilizationSampler(engine, kernel, interval=0.5, warmup_end=warmup_end)
        sampler.start()

        # Start everything: secondaries first (they are immediately placed
        # under the controller), then the controller, then the load.
        for secondary in secondaries:
            secondary.start()
            if controller is not None:
                controller.manage(secondary)
        if controller is not None:
            controller.start()
        client.start()

        if faults is not None:
            injector = SingleMachineFaultInjector(
                faults,
                engine=engine,
                kernel=kernel,
                controller=controller,
                latency_proxy=latency_proxy,
                forecast_proxy=forecast_proxy,
            )
            injector.install()
            self.fault_injector = injector

        if telemetry is not None:
            telemetry.attach_single_machine(
                engine,
                kernel,
                collector,
                client,
                primary,
                spec,
                controller=controller,
                arrival_model=arrival_model,
                latency_window=latency_window,
                label=self._scenario,
            )

        engine.run(until=spec.workload.total_time)

        return self._collect(collector, sampler, client)

    # ------------------------------------------------------------- internals
    def _build_secondaries(self, kernel: Kernel, streams: RandomStreams) -> List[SecondaryTenant]:
        # Random streams are keyed by job name, so the singleton jobs (whose
        # names match the historical stream names) simulate bit-identically
        # and additional jobs cannot perturb anyone else's draws.
        secondaries: List[SecondaryTenant] = []
        for job in self._spec.secondary_jobs():
            if job.kind == "cpu_bully":
                secondaries.append(CpuBullyTenant(kernel, job.tenant_spec, name=job.name))
            elif job.kind == "disk_bully":
                secondaries.append(
                    DiskBullyTenant(
                        kernel, job.tenant_spec, rng=streams.stream(job.name), name=job.name
                    )
                )
            elif job.kind == "hdfs":
                secondaries.append(
                    HdfsTenant(kernel, job.tenant_spec, rng=streams.stream(job.name), name=job.name)
                )
            else:
                secondaries.append(
                    MlTrainingTenant(
                        kernel, job.tenant_spec, rng=streams.stream(job.name), name=job.name
                    )
                )
        return secondaries

    def _collect(
        self,
        collector: LatencyCollector,
        sampler: CpuUtilizationSampler,
        client,
    ) -> SingleMachineResult:
        if self.kernel is None or self.primary is None:
            raise ExperimentError("experiment has not been run")
        spec = self._spec
        breakdown = {
            secondary.name: {
                "progress": secondary.progress(),
                "cpu_seconds": sum(p.cpu_time for p in secondary.processes()),
            }
            for secondary in self.secondaries
        }
        secondary_cpu = sum(entry["cpu_seconds"] for entry in breakdown.values())
        progress = sum(entry["progress"] for entry in breakdown.values())
        result = SingleMachineResult(
            scenario=self._scenario,
            qps=spec.workload.qps,
            duration=spec.workload.duration,
            latency=collector.stats(),
            cpu=sampler.overall(),
            cpu_timeseries=sampler.timeseries(),
            queries_submitted=client.submitted,
            queries_completed=self.primary.completed,
            queries_dropped=self.primary.dropped,
            secondary_progress=progress,
            secondary_cpu_seconds=secondary_cpu,
            secondary_breakdown=breakdown,
        )
        if self.controller is not None:
            result.controller_polls = self.controller.polls
            result.controller_updates = self.controller.updates_applied
            result.secondary_core_history = list(self.controller.core_count_history)
        if self.arrival_model is not None:
            # The offered-load curve over the measured window, summarised so
            # trace-driven goldens pin the *shape* of the workload too.  The
            # mean is a 128-point sample of the curve; the peak is computed
            # analytically (sampling would miss a burst narrower than a
            # step).
            offered = TimeSeries.from_function(
                "offered_qps",
                self.arrival_model.rate_at,
                start=spec.workload.warmup,
                stop=spec.workload.total_time,
                step=spec.workload.duration / 128.0,
                unit="qps",
            )
            result.extra["offered_mean_qps"] = offered.mean()
            result.extra["offered_peak_qps"] = self.arrival_model.peak_in(
                spec.workload.warmup, spec.workload.total_time
            )
        if self.fault_injector is not None:
            # Only fault-bearing specs gain these keys, so zero-fault results
            # (and their pinned goldens) keep their exact historical shape.
            result.extra["fault_events"] = float(len(self.fault_injector.events))
            result.extra["controller_restarts"] = float(
                self.fault_injector.controller_restarts
            )
        return result
