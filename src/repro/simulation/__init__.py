"""Discrete-event simulation kernel used by every substrate in the library."""

from .engine import SimulationEngine
from .events import Event, EventPriority, EventQueue
from .process import Delay, SimProcess, WaitFor
from .randomness import RandomStreams

__all__ = [
    "SimulationEngine",
    "Event",
    "EventPriority",
    "EventQueue",
    "Delay",
    "SimProcess",
    "WaitFor",
    "RandomStreams",
]
