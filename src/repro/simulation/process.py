"""Generator-based simulated processes.

Most of the simulator is callback driven for speed, but higher-level tenant
logic (e.g. the HDFS replication loop or the PerfIso controller's poll loop)
reads much more naturally as a sequential coroutine.  :class:`SimProcess`
wraps a Python generator: the generator yields *commands* and the process
driver turns each command into engine events.

Supported yield values
----------------------
``Delay(seconds)``
    Suspend the process for a fixed simulated duration.
``WaitFor(condition_poll, interval)``
    Poll ``condition_poll()`` every ``interval`` seconds until it is truthy.
``float``
    Shorthand for ``Delay(float)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Union

from ..errors import SimulationError
from .engine import SimulationEngine
from .events import EventPriority

__all__ = ["Delay", "WaitFor", "SimProcess"]


@dataclass(frozen=True)
class Delay:
    """Suspend the generator for ``duration`` simulated seconds."""

    duration: float


@dataclass(frozen=True)
class WaitFor:
    """Suspend until ``predicate()`` is truthy, polling every ``interval`` s."""

    predicate: Callable[[], bool]
    interval: float = 1e-3


Command = Union[Delay, WaitFor, float, int]


class SimProcess:
    """Drive a generator as a cooperative simulated process."""

    def __init__(
        self,
        engine: SimulationEngine,
        generator: Generator[Command, None, None],
        name: str = "process",
        priority: int = EventPriority.TENANT,
    ) -> None:
        self._engine = engine
        self._generator = generator
        self._name = name
        self._priority = priority
        self._finished = False
        self._started = False
        self._on_finish: Optional[Callable[[], None]] = None

    # ----------------------------------------------------------- public API
    @property
    def name(self) -> str:
        return self._name

    @property
    def finished(self) -> bool:
        return self._finished

    def on_finish(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked when the generator completes."""
        self._on_finish = callback

    def start(self, delay: float = 0.0) -> "SimProcess":
        """Begin executing the generator after ``delay`` seconds."""
        if self._started:
            raise SimulationError(f"process {self._name!r} started twice")
        self._started = True
        self._engine.schedule(delay, self._step, priority=self._priority)
        return self

    def stop(self) -> None:
        """Terminate the process; the generator's ``close()`` is invoked."""
        if not self._finished:
            self._finished = True
            self._generator.close()

    # ------------------------------------------------------------- internals
    def _step(self) -> None:
        if self._finished:
            return
        try:
            command = next(self._generator)
        except StopIteration:
            self._finish()
            return
        self._dispatch(command)

    def _dispatch(self, command: Command) -> None:
        if isinstance(command, (int, float)):
            command = Delay(float(command))
        if isinstance(command, Delay):
            if command.duration < 0:
                raise SimulationError(
                    f"process {self._name!r} yielded a negative delay ({command.duration})"
                )
            self._engine.schedule(command.duration, self._step, priority=self._priority)
        elif isinstance(command, WaitFor):
            self._poll(command)
        else:
            raise SimulationError(
                f"process {self._name!r} yielded unsupported command {command!r}"
            )

    def _poll(self, command: WaitFor) -> None:
        if self._finished:
            return
        if command.predicate():
            self._engine.schedule(0.0, self._step, priority=self._priority)
        else:
            self._engine.schedule(command.interval, self._poll, command, priority=self._priority)

    def _finish(self) -> None:
        self._finished = True
        if self._on_finish is not None:
            self._on_finish()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else ("running" if self._started else "new")
        return f"SimProcess({self._name!r}, {state})"
