"""Named, reproducible random-number streams.

Every stochastic component of the simulator (query arrivals, service times,
cache misses, disk seeks, ...) draws from its own named stream derived from a
single experiment seed.  This guarantees that adding a new consumer of
randomness does not perturb the draws seen by existing components, which keeps
experiments comparable across library versions.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "BatchedDraws"]


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed for the experiment.  Two :class:`RandomStreams` built from
        the same seed hand out identical streams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._derive(name))
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of this one.

        Used by multi-machine simulations so every machine gets its own family
        of streams while remaining a pure function of the master seed.
        """
        return RandomStreams(self._derive(name) % (2**63))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"


class BatchedDraws:
    """Batched draws from one RNG stream, served one value at a time.

    ``draw(size)`` must pull ``size`` values from the generator exactly as
    ``size`` successive scalar draws would (true for every numpy
    ``Generator`` distribution method), so consumers receive the identical
    value sequence they would have seen drawing per use — only the
    per-draw Python/numpy call overhead is amortised.  The first batch is
    drawn lazily, so merely constructing the wrapper consumes no RNG state.

    Consumers that used to share one generator must share one wrapper too
    (see the machine-wide disk-jitter source): the wrapper hands values out
    in call order, which then matches the old global draw order exactly.
    """

    __slots__ = ("_draw", "_batch", "_index")

    BATCH = 256

    def __init__(self, draw) -> None:
        #: ``draw(size) -> ndarray`` pulling ``size`` values from the stream.
        self._draw = draw
        self._batch = None
        self._index = 0

    def next(self) -> float:
        batch = self._batch
        index = self._index
        if batch is None or index == batch.shape[0]:
            batch = self._draw(self.BATCH)
            self._batch = batch
            index = 0
        self._index = index + 1
        return batch[index]
