"""The discrete-event simulation engine.

The engine owns the virtual clock and the event queue.  Everything else in the
simulator — the multicore scheduler, disks, tenants, the PerfIso controller —
is expressed as callbacks scheduled on a single :class:`SimulationEngine`.

Design notes
------------
* The clock only moves when an event is executed; there is no fixed tick.
* Same-timestamp ordering is deterministic (priority, then insertion order),
  which makes every experiment exactly reproducible for a given seed.
* The engine is deliberately ignorant of the domain: it knows nothing about
  cores, queries or isolation.  That keeps it small and easy to test
  exhaustively (see ``tests/simulation``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .events import Event, EventPriority, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """A minimal, deterministic discrete-event simulation kernel."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._stop_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed since construction."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} s in the past")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, which is before now={self._now:.9f}"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is None or event.cancelled:
            return
        event.cancel()
        self._queue.notify_cancel()

    def add_stop_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked once when :meth:`run` finishes."""
        self._stop_hooks.append(hook)

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        Returns the simulation time at which execution stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even if
        the last event fired earlier, so repeated ``run(until=...)`` calls
        compose naturally.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        executed_this_run = 0
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed_this_run >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event is None:  # pragma: no cover - defensive
                    break
                if event.time < self._now:  # pragma: no cover - defensive
                    raise SimulationError("event queue produced an event in the past")
                self._now = event.time
                event.callback(*event.args)
                self._events_executed += 1
                executed_this_run += 1
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        for hook in self._stop_hooks:
            hook()
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def drain(self, horizon: float) -> None:
        """Advance to ``horizon`` discarding nothing — convenience wrapper."""
        self.run(until=horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(now={self._now:.6f}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
