"""The discrete-event simulation engine.

The engine owns the virtual clock and the event queue.  Everything else in the
simulator — the multicore scheduler, disks, tenants, the PerfIso controller —
is expressed as callbacks scheduled on a single :class:`SimulationEngine`.

Design notes
------------
* The clock only moves when an event is executed; there is no fixed tick.
* Same-timestamp ordering is deterministic (priority, then insertion order),
  which makes every experiment exactly reproducible for a given seed.
* The engine is deliberately ignorant of the domain: it knows nothing about
  cores, queries or isolation.  That keeps it small and easy to test
  exhaustively (see ``tests/simulation``).
* :meth:`run` is the hottest loop in the simulator: it works directly on the
  queue's heap of ``(time, priority, seq, event)`` tuples, executes
  same-timestamp events as one batch (checking ``until``/cancellation once
  per batch), and pushes the unexecuted tail back verbatim whenever a
  callback stops the engine or schedules a same-timestamp event that must
  sort earlier — so batching is observationally identical to a single-pop
  loop.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .events import Event, EventPriority, EventQueue

__all__ = ["ProbeSubscription", "SimulationEngine"]


class ProbeSubscription:
    """One telemetry observer: ``callback(now)`` every ``interval`` seconds.

    Handed out by :meth:`SimulationEngine.subscribe`; pass it back to
    :meth:`SimulationEngine.unsubscribe` to stop probing.  ``fired`` counts
    deliveries (a cheap liveness signal for tests and the console).
    """

    __slots__ = ("callback", "interval", "event", "fired")

    def __init__(self, callback: Callable[[float], None], interval: float) -> None:
        self.callback = callback
        self.interval = interval
        self.event: Optional[Event] = None
        self.fired = 0


class SimulationEngine:
    """A minimal, deterministic discrete-event simulation kernel."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._stop_hooks: List[Callable[[], None]] = []
        # Telemetry probe seam.  ``None`` (the default) is the zero-cost
        # disabled state: run() performs a single ``is None`` check and the
        # hot loop below is untouched.  Probes are ordinary TELEMETRY-priority
        # events, so subscribing changes nothing about how domain events
        # sort relative to each other.
        self._probes: Optional[List[ProbeSubscription]] = None
        self._probe_pending = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed since construction."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} s in the past")
        return self._queue.push(self._now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f}, which is before now={self._now:.9f}"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is None or event.cancelled:
            return
        event.cancel()
        # Only adjust the live count while the event is actually pending;
        # cancelling an event that already popped (or fired) must not skew it.
        if event.in_queue:
            self._queue.notify_cancel()

    def add_stop_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked once when :meth:`run` finishes."""
        self._stop_hooks.append(hook)

    # ------------------------------------------------------- telemetry seam
    @property
    def subscriber_count(self) -> int:
        """Number of active telemetry probe subscriptions."""
        return len(self._probes) if self._probes is not None else 0

    def subscribe(
        self, callback: Callable[[float], None], interval: float
    ) -> ProbeSubscription:
        """Register a telemetry probe: ``callback(now)`` every ``interval``.

        Probes are ordinary events at :data:`EventPriority.TELEMETRY` (the
        lowest priority, so a probe observes the settled state of its
        timestamp).  A probe only stays scheduled while domain events remain
        pending — it can never keep an otherwise-drained engine alive — and
        :meth:`run` re-arms any probe that went dormant, so repeated
        ``run(until=...)`` calls keep probing.  Probes draw from no random
        stream and must not mutate simulation state; with zero subscribers
        the engine's hot loop is byte-identical to the unsubscribed build.
        """
        if interval <= 0:
            raise SimulationError(f"probe interval must be positive, got {interval}")
        subscription = ProbeSubscription(callback, float(interval))
        if self._probes is None:
            self._probes = []
        self._probes.append(subscription)
        self._schedule_probe(subscription)
        return subscription

    def unsubscribe(self, subscription: ProbeSubscription) -> None:
        """Remove a probe registered with :meth:`subscribe` (idempotent)."""
        if self._probes is None or subscription not in self._probes:
            return
        self._probes.remove(subscription)
        if subscription.event is not None:
            self.cancel(subscription.event)
            subscription.event = None
            self._probe_pending -= 1
        if not self._probes:
            self._probes = None

    def _schedule_probe(self, subscription: ProbeSubscription) -> None:
        subscription.event = self._queue.push(
            self._now + subscription.interval,
            self._fire_probe,
            (subscription,),
            EventPriority.TELEMETRY,
        )
        self._probe_pending += 1

    def _fire_probe(self, subscription: ProbeSubscription) -> None:
        self._probe_pending -= 1
        subscription.event = None
        subscription.fired += 1
        subscription.callback(self._now)
        # Reschedule only while non-probe work remains; a drained queue must
        # stay drained so run() terminates exactly as it always has.
        if len(self._queue) - self._probe_pending > 0:
            self._schedule_probe(subscription)

    def _rearm_probes(self) -> None:
        for subscription in self._probes or ():
            if subscription.event is None:
                self._schedule_probe(subscription)

    # --------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        Returns the simulation time at which execution stopped.  When
        ``until`` is given the clock is advanced to exactly ``until`` even if
        the last event fired earlier, so repeated ``run(until=...)`` calls
        compose naturally.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        # Telemetry seam: the sole disabled-path cost is this None check.  A
        # probe that went dormant when a previous run() drained the queue is
        # re-armed here so composed run(until=...) calls keep probing.
        if self._probes is not None:
            self._rearm_probes()
        self._running = True
        self._stopped = False
        executed_this_run = 0
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        # The loop allocates heavily (events, threads, closures) and keeps
        # everything reachable until it returns, so cyclic-GC passes during
        # execution are pure overhead — suspend collection and restore the
        # caller's setting on the way out (cycles are reclaimed then).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not self._stopped:
                if max_events is not None and executed_this_run >= max_events:
                    break
                while heap and heap[0][3].cancelled:
                    heappop(heap)[3].in_queue = False
                if not heap:
                    break
                now = heap[0][0]
                if until is not None and now > until:
                    break
                self._now = now
                first = heappop(heap)
                if not heap or heap[0][0] != now:
                    # Singleton fast path: no same-timestamp companions, so
                    # no batch bookkeeping (the overwhelmingly common case).
                    event = first[3]
                    event.in_queue = False
                    queue._live -= 1
                    event.callback(*event.args)
                    self._events_executed += 1
                    executed_this_run += 1
                    continue
                # Timer-coalescing fast path: pop the whole same-timestamp
                # batch, then execute it in (priority, seq) order.
                entries = [first]
                while heap and heap[0][0] == now:
                    entries.append(heappop(heap))
                index = 0
                count = len(entries)
                while index < count:
                    entry = entries[index]
                    event = entry[3]
                    if event.cancelled:
                        # Cancelled by an earlier batch member; its live-count
                        # adjustment already happened at cancel time.
                        event.in_queue = False
                        index += 1
                        continue
                    if self._stopped or (
                        max_events is not None and executed_this_run >= max_events
                    ):
                        for tail in range(index, count):
                            heappush(heap, entries[tail])
                        break
                    if heap:
                        top = heap[0]
                        if top[0] == now and top < entry:
                            # A callback scheduled a same-timestamp event that
                            # sorts before the rest of this batch; requeue the
                            # tail (original seqs keep its order) and let the
                            # outer loop re-merge.
                            for tail in range(index, count):
                                heappush(heap, entries[tail])
                            break
                    event.in_queue = False
                    queue._live -= 1
                    index += 1
                    event.callback(*event.args)
                    self._events_executed += 1
                    executed_this_run += 1
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        for hook in self._stop_hooks:
            hook()
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def drain(self, horizon: float) -> None:
        """Advance to ``horizon`` discarding nothing — convenience wrapper."""
        self.run(until=horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(now={self._now:.6f}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
