"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a callback scheduled at an absolute simulation time.
Events are ordered by ``(time, priority, sequence)`` so that ties at the same
timestamp are resolved first by priority (lower runs earlier) and then by
insertion order, which keeps the simulation fully deterministic.

Performance notes
-----------------
The heap holds ``(time, priority, seq, event)`` tuples rather than bare
:class:`Event` objects: ``seq`` is unique, so heap comparisons resolve
entirely inside the C tuple-comparison fast path and never call back into
``Event.__lt__``.  Cancellation stays lazy (O(1) ``cancel`` + skip-on-pop).
:meth:`EventQueue.pop_batch` is the public same-timestamp batch-pop API; its
ordering contract (identical to a naive single-pop loop) is pinned by a
hypothesis property test.  The engine's run loop keeps its own inlined
variant of the same batching because it additionally needs the raw heap
entries to requeue an unexecuted tail (stop/max_events mid-batch, or a
callback scheduling a same-timestamp event that sorts earlier); any change
to one batching must be mirrored in the other.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "EventPriority"]


class EventPriority:
    """Well-known priorities for same-timestamp ordering.

    Lower values run first.  The defaults are chosen so that hardware
    completions are observed before the OS scheduler reacts, and the PerfIso
    controller observes a settled system state.
    """

    HARDWARE = 0
    KERNEL = 10
    DEFAULT = 20
    TENANT = 30
    CONTROLLER = 40
    MEASUREMENT = 50
    #: Telemetry probes run last at any shared timestamp: observers see the
    #: settled state every other same-instant event produced.
    TELEMETRY = 60


class Event:
    """A single scheduled callback.

    Events should not be constructed directly; use
    :meth:`repro.simulation.engine.SimulationEngine.schedule`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "in_queue")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # True while the event is counted in its queue's live total; cleared
        # when the event is popped (or its cancellation is acknowledged) so a
        # late cancel of an already-popped event cannot skew the live count.
        self.in_queue = True

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"Event(t={self.time:.6f}, prio={self.priority}, {name}, {state})"


#: One heap entry: ``(time, priority, seq, event)``.
_Entry = Tuple[float, int, int, Event]


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Cancelled events are skipped lazily when popped, which keeps cancellation
    O(1) at the cost of occasionally holding dead entries in the heap.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = EventPriority.DEFAULT,
    ) -> Event:
        """Insert a new event and return it (so callers may cancel it later)."""
        seq = self._seq
        event = Event(time, priority, seq, callback, args)
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                # Its cancellation already adjusted the live count.
                event.in_queue = False
                continue
            event.in_queue = False
            self._live -= 1
            return event
        self._live = 0
        return None

    def pop_batch(self) -> List[Event]:
        """Remove and return every live event at the earliest timestamp.

        The returned list is in exactly the order :meth:`pop` would have
        produced — ``(priority, insertion order)`` within the shared
        timestamp — so batch consumers observe identical semantics to a
        single-pop loop.  Returns an empty list when the queue is empty.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][3].cancelled:
            heappop(heap)[3].in_queue = False
        if not heap:
            self._live = 0
            return []
        time = heap[0][0]
        batch: List[Event] = []
        while heap and heap[0][0] == time:
            event = heappop(heap)[3]
            event.in_queue = False
            if not event.cancelled:
                self._live -= 1
                batch.append(event)
        return batch

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3].in_queue = False
        if not heap:
            self._live = 0
            return None
        return heap[0][0]

    def notify_cancel(self) -> None:
        """Record that one previously-pushed event has been cancelled."""
        if self._live > 0:
            self._live -= 1

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
