"""Streaming telemetry for the simulated fleet (the observability layer).

PerfIso's operating story is *watching* interactive P99 against its SLO in
real time while secondaries harvest the slack.  This package makes every
simulation in the repo — a single machine, a controller showdown, a
50k-machine staged rollout — observable while it runs:

* :mod:`repro.telemetry.registry` — counters, gauges and histograms with
  per-component namespaces, bridging the existing
  :class:`~repro.metrics.latency.LatencyDigest` /
  :class:`~repro.metrics.timeseries.TimeSeries` types;
* :mod:`repro.telemetry.spans` — lightweight span tracing around controller
  ``decide()`` calls, rollout stages and runner fan-outs;
* :mod:`repro.telemetry.schema` — the versioned JSONL record schema plus
  validators (also used by the ``BENCH_*.json`` drift guard);
* :mod:`repro.telemetry.stream` — the snapshot publisher: a
  :class:`TelemetrySession` wires a metrics registry, a span tracer and a
  JSONL writer onto a running simulation through the engine's probe seam;
* :mod:`repro.telemetry.serve` — a stdlib-only local HTTP console that
  streams live snapshots (``python -m repro.telemetry.serve run.jsonl``);
* :mod:`repro.telemetry.log` — the structured stderr logger the CLIs use;
* :mod:`repro.telemetry.profiling` — the one profiling entry point (both the
  offline buffer-core profiler and the ``--profile`` cProfile wrapper).

The seam costs nothing when unused: an engine with zero subscribers runs the
exact hot loop it always did (pinned by the determinism suites and the
``REPRO_PERF_GUARD`` benchmark gate), and telemetry draws from no random
stream, so enabling it never perturbs simulation results.
"""

from .log import StructuredLogger, get_logger
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .schema import (
    SCHEMA_VERSION,
    StreamSummary,
    validate_bench_file,
    validate_bench_record,
    validate_record,
    validate_stream,
    validate_stream_file,
)
from .spans import Span, SpanTracer
from .stream import SnapshotWriter, TelemetrySession, read_records

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "SCHEMA_VERSION",
    "StreamSummary",
    "SnapshotWriter",
    "StructuredLogger",
    "TelemetrySession",
    "get_logger",
    "read_records",
    "validate_bench_file",
    "validate_bench_record",
    "validate_record",
    "validate_stream",
    "validate_stream_file",
]
