"""A small structured logger for CLI and library diagnostics.

Until this module existed, diagnostics were bare ``print(..., file=
sys.stderr)`` calls scattered across the fleet/matrix/workloads CLIs and the
:mod:`logging` module was used exactly nowhere.  ``get_logger`` returns a
:class:`StructuredLogger` that renders one logfmt-style line per event::

    level=error logger=repro.fleet event="command failed" error="unknown scenario"

Lines go to stderr through the standard :mod:`logging` machinery (so host
applications can re-route or silence them), values are quoted only when they
need to be, and the log level honours ``REPRO_LOG_LEVEL``.  A telemetry
session may tee log events into its JSONL stream as ``log`` records.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Callable, Dict, Optional

__all__ = ["StructuredLogger", "get_logger", "format_fields"]

_HANDLER_FLAG = "_repro_structured_handler"

#: Environment variable selecting the minimum level (debug/info/warning/error).
LEVEL_ENV = "REPRO_LOG_LEVEL"


def _quote(value: object) -> str:
    text = str(value)
    if text == "" or any(ch in text for ch in (" ", '"', "=", "\n", "\t")):
        escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    return text


def format_fields(fields: Dict[str, object]) -> str:
    """Render ``fields`` as ``key=value`` pairs in insertion order."""
    return " ".join(f"{key}={_quote(value)}" for key, value in fields.items())


class StructuredLogger:
    """Key=value structured logging over a stdlib :class:`logging.Logger`.

    Every method takes an ``event`` (what happened, not a formatted sentence)
    plus arbitrary keyword fields.  An optional ``sink`` receives the
    structured payload of each emitted event — the telemetry stream uses it
    to mirror diagnostics into the JSONL record stream.
    """

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger
        self._sink: Optional[Callable[[str, str, Dict[str, object]], None]] = None

    @property
    def name(self) -> str:
        return self._logger.name

    @property
    def logger(self) -> logging.Logger:
        return self._logger

    def set_sink(self, sink: Optional[Callable[[str, str, Dict[str, object]], None]]) -> None:
        """Tee every emitted event into ``sink(level, event, fields)``."""
        self._sink = sink

    def _emit(self, level: int, event: str, fields: Dict[str, object]) -> None:
        level_name = logging.getLevelName(level).lower()
        if self._logger.isEnabledFor(level):
            line = format_fields(
                {"level": level_name, "logger": self._logger.name, "event": event, **fields}
            )
            self._logger.log(level, "%s", line)
        if self._sink is not None:
            self._sink(level_name, event, fields)

    def debug(self, event: str, **fields: object) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit(logging.ERROR, event, fields)


def _resolve_level(default: str = "info") -> int:
    name = os.environ.get(LEVEL_ENV, default).strip().lower()
    return {
        "debug": logging.DEBUG,
        "info": logging.INFO,
        "warning": logging.WARNING,
        "error": logging.ERROR,
    }.get(name, logging.INFO)


class _DynamicStderrHandler(logging.StreamHandler):
    """A stderr handler that resolves ``sys.stderr`` at emit time.

    The handler is installed once and cached on the ``repro`` root logger; a
    conventional ``StreamHandler(sys.stderr)`` would freeze whichever stream
    object existed at first use — stale under pytest's capture machinery or
    any host that swaps ``sys.stderr``.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # pragma: no cover - API compatibility
        pass


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for ``name``, wired to stderr exactly once.

    The underlying :class:`logging.Logger` is the ordinary hierarchical one,
    so applications embedding the package can attach their own handlers; the
    stderr handler added here is marked and never duplicated.
    """
    logger = logging.getLogger(name)
    root = logging.getLogger("repro")
    if not any(getattr(handler, _HANDLER_FLAG, False) for handler in root.handlers):
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter("%(message)s"))
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
        root.setLevel(_resolve_level())
        root.propagate = False
    return StructuredLogger(logger)
