"""``python -m repro.telemetry`` — validate a JSONL telemetry stream.

The CI smoke step runs a scenario with ``--telemetry`` and then checks the
stream with::

    python -m repro.telemetry --validate run.jsonl --min-snapshots 10 \\
        --min-spans 1

Exit code 0 means every record validated against the versioned schema and the
floors held; 2 reports the first schema violation or a floor breach.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .log import get_logger
from .registry import TelemetryError
from .schema import validate_stream_file


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Validate a JSONL telemetry stream against the schema.",
    )
    parser.add_argument("--validate", metavar="PATH", required=True, help="stream to check")
    parser.add_argument(
        "--min-snapshots", type=int, default=0, help="fail below this many snapshots"
    )
    parser.add_argument(
        "--min-spans", type=int, default=0, help="fail below this many spans"
    )
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one span with this name (repeatable)",
    )
    args = parser.parse_args(argv)

    logger = get_logger("repro.telemetry")
    try:
        summary = validate_stream_file(args.validate)
    except (OSError, TelemetryError) as error:
        logger.error("stream invalid", path=args.validate, error=str(error))
        return 2
    problems = []
    if summary.snapshots < args.min_snapshots:
        problems.append(
            f"snapshots {summary.snapshots} < required {args.min_snapshots}"
        )
    if summary.spans < args.min_spans:
        problems.append(f"spans {summary.spans} < required {args.min_spans}")
    for name in args.require_span:
        if not summary.span_names.get(name):
            problems.append(f"no span named {name!r}")
    if problems:
        logger.error("stream below floors", path=args.validate, problems="; ".join(problems))
        return 2
    print(
        f"{args.validate}: {summary.records} records ok "
        f"({summary.snapshots} snapshots, {summary.spans} spans, "
        f"{summary.logs} logs, source={summary.meta.get('source', '?')})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
