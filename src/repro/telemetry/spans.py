"""Lightweight span tracing for structured simulation events.

A span marks one named unit of work — a controller ``decide()`` call, a
rollout stage, a runner shard fan-out — with its simulation-time position,
its wall-clock cost and free-form attributes.  Spans stream to a sink the
moment they close (normally a :class:`~repro.telemetry.stream.SnapshotWriter`),
so a long fleet run never accumulates them in memory; a bounded tail is kept
for tests and interactive inspection.

Simulation time and wall time are deliberately both recorded: ``time`` (and
``sim_duration``) are deterministic functions of the spec, while
``wall_ms`` measures what the span actually cost the host — the number the
profiling workflow cares about.
"""

from __future__ import annotations

import time as _time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, Optional

from .log import get_logger

__all__ = ["Span", "SpanTracer"]


@dataclass
class Span:
    """One closed span, ready for serialisation."""

    name: str
    #: Simulation time at which the span opened (seconds).
    time: float
    #: Simulation seconds covered (0.0 for an instantaneous span).
    sim_duration: float = 0.0
    #: Wall-clock milliseconds the spanned work took on the host.
    wall_ms: float = 0.0
    status: str = "ok"
    attributes: Dict[str, object] = field(default_factory=dict)

    def as_record(self) -> Dict[str, object]:
        return {
            "type": "span",
            "name": self.name,
            "time": self.time,
            "sim_duration": self.sim_duration,
            "wall_ms": round(self.wall_ms, 4),
            "status": self.status,
            "attributes": self.attributes,
        }


class SpanTracer:
    """Creates spans against a simulation clock and streams them to a sink.

    ``clock`` supplies the simulation time (``engine.now`` for engine-driven
    runs, a bucket cursor for the analytic fleet tier).  ``sink`` receives
    each closed :class:`Span`; when ``None`` spans are only retained in the
    bounded :attr:`tail`.
    """

    TAIL_SPANS = 256

    def __init__(
        self,
        clock: Callable[[], float],
        sink: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self._clock = clock
        self._sink = sink
        self.tail: Deque[Span] = deque(maxlen=self.TAIL_SPANS)
        self.count = 0

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    def _emit(self, span: Span) -> None:
        self.count += 1
        self.tail.append(span)
        if self._sink is not None:
            try:
                self._sink(span)
            except OSError as error:
                # Tracing observes the simulation; it must not kill it.  A
                # sink whose I/O died (writers already degrade themselves,
                # but a raw file sink raises here) is dropped with one
                # structured warning, and spans keep accumulating in the
                # bounded tail.
                self._sink = None
                get_logger("repro.telemetry.spans").warning(
                    "span sink disabled",
                    span=span.name,
                    error=f"{type(error).__name__}: {error}",
                )

    def record(
        self,
        name: str,
        wall_ms: float = 0.0,
        sim_duration: float = 0.0,
        status: str = "ok",
        **attributes: object,
    ) -> Span:
        """Record an already-finished (often instantaneous) span."""
        span = Span(
            name=name,
            time=float(self._clock()),
            sim_duration=sim_duration,
            wall_ms=wall_ms,
            status=status,
            attributes=attributes,
        )
        self._emit(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span around a block of work.

        The span's ``time`` is the simulation time at entry, ``sim_duration``
        the simulation time that elapsed inside the block, and ``wall_ms``
        the wall-clock cost.  An exception marks the span ``error`` (with the
        exception type attached) and propagates.
        """
        started_sim = float(self._clock())
        started_wall = _time.perf_counter()
        span = Span(name=name, time=started_sim, attributes=dict(attributes))
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault("exception", type(exc).__name__)
            raise
        finally:
            span.wall_ms = (_time.perf_counter() - started_wall) * 1e3
            span.sim_duration = max(0.0, float(self._clock()) - started_sim)
            self._emit(span)

    def named(self, name: str) -> list:
        """The retained tail spans with the given name (testing aid)."""
        return [span for span in self.tail if span.name == name]
