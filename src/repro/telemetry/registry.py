"""The metrics registry: counters, gauges and histograms by namespace.

The registry is the in-memory state the snapshot stream publishes.  It
deliberately reuses the repo's existing measurement types instead of growing
parallel ones: a :class:`Histogram` is a thin facade over the exactly-
mergeable :class:`~repro.metrics.latency.LatencyDigest`, and a tracked
:class:`Gauge` records its history into a
:class:`~repro.metrics.timeseries.TimeSeries`, so anything observed live can
be folded into the same post-hoc analyses the experiments already run.

Metric names are dotted paths; :meth:`MetricsRegistry.namespace` returns a
prefixed view so each component (scheduler, controller, workload, rollout)
registers metrics under its own prefix without knowing about the others.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from ..errors import ReproError
from ..metrics.latency import LatencyDigest
from ..metrics.timeseries import TimeSeries

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "TelemetryError"]


class TelemetryError(ReproError):
    """Raised on telemetry misuse (duplicate metrics, bad records, ...)."""


class Counter:
    """A monotonically non-decreasing tally (events, queries, decisions)."""

    kind = "counter"

    __slots__ = ("name", "unit", "value")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def read(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value, set directly or sampled from a callable.

    A callback gauge (``fn=...``) is evaluated lazily at read time, so probing
    it costs nothing between snapshots.  A tracked gauge (``track=True``)
    additionally appends every explicit :meth:`set` to a
    :class:`~repro.metrics.timeseries.TimeSeries` for post-run analysis.
    """

    kind = "gauge"

    __slots__ = ("name", "unit", "_value", "_fn", "series")

    def __init__(
        self,
        name: str,
        unit: str = "",
        fn: Optional[Callable[[], float]] = None,
        track: bool = False,
    ) -> None:
        self.name = name
        self.unit = unit
        self._value = 0.0
        self._fn = fn
        self.series: Optional[TimeSeries] = TimeSeries(name, unit) if track else None

    def set(self, value: float, time: Optional[float] = None) -> None:
        if self._fn is not None:
            raise TelemetryError(f"gauge {self.name!r} is callback-driven; cannot set()")
        self._value = float(value)
        if self.series is not None and time is not None:
            self.series.append(time, self._value)

    def read(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """A distribution summary over the shared log-spaced digest grid.

    Backed by :class:`~repro.metrics.latency.LatencyDigest`, so fleet-side
    consumers can merge per-shard histograms exactly, and snapshot output
    carries the same percentile semantics the experiment reports use.
    """

    kind = "histogram"

    __slots__ = ("name", "unit", "digest")

    def __init__(self, name: str, unit: str = "", digest: Optional[LatencyDigest] = None) -> None:
        self.name = name
        self.unit = unit
        self.digest = digest if digest is not None else LatencyDigest()

    def observe(self, value: float) -> None:
        self.digest.add((value,))

    def observe_many(self, values) -> None:
        self.digest.add(values)

    def read(self) -> Dict[str, float]:
        stats = self.digest.stats()
        return {
            "count": float(stats.count),
            "mean": stats.mean,
            "p50": stats.p50,
            "p99": stats.p99,
            "max": stats.maximum,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All metrics of one telemetry session, keyed by dotted name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ---------------------------------------------------------- registration
    def _register(self, metric: Metric) -> Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise TelemetryError(
                    f"metric {metric.name!r} already registered as {existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, unit: str = "") -> Counter:
        return self._register(Counter(name, unit))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        unit: str = "",
        fn: Optional[Callable[[], float]] = None,
        track: bool = False,
    ) -> Gauge:
        return self._register(Gauge(name, unit, fn=fn, track=track))  # type: ignore[return-value]

    def histogram(self, name: str, unit: str = "") -> Histogram:
        return self._register(Histogram(name, unit))  # type: ignore[return-value]

    def namespace(self, prefix: str) -> "MetricsNamespace":
        """A view registering every metric under ``prefix.``."""
        if not prefix:
            raise TelemetryError("namespace prefix must be non-empty")
        return MetricsNamespace(self, prefix)

    # --------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def collect(self) -> Dict[str, object]:
        """Read every metric once, in sorted name order.

        Counters and gauges read to floats; histograms to their summary
        dictionaries.  This is the payload of one snapshot record.
        """
        return {name: self._metrics[name].read() for name in sorted(self._metrics)}


class MetricsNamespace:
    """A prefixed facade over a registry (``scheduler.``, ``controller.``...)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    @property
    def prefix(self) -> str:
        return self._prefix

    def _qualify(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str, unit: str = "") -> Counter:
        return self._registry.counter(self._qualify(name), unit)

    def gauge(
        self,
        name: str,
        unit: str = "",
        fn: Optional[Callable[[], float]] = None,
        track: bool = False,
    ) -> Gauge:
        return self._registry.gauge(self._qualify(name), unit, fn=fn, track=track)

    def histogram(self, name: str, unit: str = "") -> Histogram:
        return self._registry.histogram(self._qualify(name), unit)

    def namespace(self, prefix: str) -> "MetricsNamespace":
        return MetricsNamespace(self._registry, self._qualify(prefix))
