"""The versioned telemetry record schema and its validators.

A telemetry stream is a JSONL file.  Line one is a ``meta`` record naming the
schema version, the producing source and the run's identity; every following
line is a ``snapshot`` (one probe's metric readings), a ``span`` (one closed
trace span) or a ``log`` (one structured diagnostic).  The schema is
versioned so the console and any downstream tooling can refuse streams they
do not understand instead of misreading them.

This module also hosts the ``BENCH_*.json`` schema guard: the three
hand-edited benchmark records at the repository root are validated against
explicit key sets so they can no longer drift silently (missing keys,
non-numeric values, stale schema) — see :func:`validate_bench_record`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from .registry import TelemetryError

__all__ = [
    "SCHEMA_VERSION",
    "RECORD_TYPES",
    "StreamSummary",
    "validate_record",
    "validate_stream",
    "validate_stream_file",
    "BENCH_SCHEMAS",
    "validate_bench_record",
    "validate_bench_file",
]

#: Version of the JSONL record schema.  Bump on any incompatible change.
SCHEMA_VERSION = 1

RECORD_TYPES = ("meta", "snapshot", "span", "log")

#: Required fields per record type (beyond ``type`` itself).
_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "meta": ("schema", "source", "run_id"),
    "snapshot": ("seq", "time", "metrics"),
    "span": ("name", "time", "wall_ms", "status", "attributes"),
    "log": ("level", "event"),
}


def _fail(reason: str, record: object) -> None:
    rendered = json.dumps(record, sort_keys=True, default=str)
    if len(rendered) > 200:
        rendered = rendered[:200] + "..."
    raise TelemetryError(f"invalid telemetry record: {reason} ({rendered})")


def validate_record(record: object, first: bool = False) -> str:
    """Validate one decoded record; returns its type or raises TelemetryError.

    ``first=True`` additionally enforces the stream framing rule: the first
    record must be a ``meta`` record carrying a supported schema version.
    """
    if not isinstance(record, dict):
        _fail("record is not an object", record)
    kind = record.get("type")
    if kind not in RECORD_TYPES:
        _fail(f"unknown record type {kind!r}", record)
    if first and kind != "meta":
        _fail("stream must open with a meta record", record)
    for key in _REQUIRED[kind]:
        if key not in record:
            _fail(f"{kind} record is missing {key!r}", record)
    if kind == "meta":
        schema = record["schema"]
        if schema != SCHEMA_VERSION:
            _fail(f"unsupported schema version {schema!r} (expected {SCHEMA_VERSION})", record)
        if not isinstance(record["source"], str) or not record["source"]:
            _fail("meta source must be a non-empty string", record)
    elif kind == "snapshot":
        if not isinstance(record["metrics"], dict):
            _fail("snapshot metrics must be an object", record)
        if not isinstance(record["seq"], int) or record["seq"] < 0:
            _fail("snapshot seq must be a non-negative integer", record)
        _require_number(record, "time")
        for name, value in record["metrics"].items():
            if isinstance(value, dict):
                for stat, inner in value.items():
                    if not _is_number(inner):
                        _fail(f"metric {name!r} stat {stat!r} is not numeric", record)
            elif value is not None and not _is_number(value):
                _fail(f"metric {name!r} is not numeric", record)
    elif kind == "span":
        _require_number(record, "time")
        _require_number(record, "wall_ms")
        if not isinstance(record["attributes"], dict):
            _fail("span attributes must be an object", record)
        if record["status"] not in ("ok", "error"):
            _fail(f"span status must be ok|error, got {record['status']!r}", record)
    elif kind == "log":
        if not isinstance(record["event"], str):
            _fail("log event must be a string", record)
    return kind  # type: ignore[return-value]


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def _require_number(record: dict, key: str) -> None:
    if not _is_number(record[key]):
        _fail(f"{record.get('type')} field {key!r} must be a finite number", record)


@dataclass
class StreamSummary:
    """What a validated stream contained."""

    records: int = 0
    snapshots: int = 0
    spans: int = 0
    logs: int = 0
    meta: Dict[str, object] = field(default_factory=dict)
    span_names: Dict[str, int] = field(default_factory=dict)
    metric_names: List[str] = field(default_factory=list)

    def row(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "snapshots": self.snapshots,
            "spans": self.spans,
            "logs": self.logs,
            "source": self.meta.get("source", ""),
            "run_id": self.meta.get("run_id", ""),
        }


def validate_stream(lines: Iterable[str]) -> StreamSummary:
    """Validate every record of a JSONL stream; returns a summary.

    Raises :class:`TelemetryError` on the first malformed line, naming the
    line number.  Snapshot ``seq`` values must be strictly increasing so a
    truncated or interleaved stream is caught, not silently accepted.
    """
    summary = StreamSummary()
    last_seq = -1
    metric_names: set = set()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"line {number}: not valid JSON ({exc})") from None
        try:
            kind = validate_record(record, first=summary.records == 0)
        except TelemetryError as exc:
            raise TelemetryError(f"line {number}: {exc}") from None
        summary.records += 1
        if kind == "meta":
            summary.meta = record
        elif kind == "snapshot":
            if record["seq"] <= last_seq:
                raise TelemetryError(
                    f"line {number}: snapshot seq {record['seq']} is not increasing "
                    f"(previous {last_seq})"
                )
            last_seq = record["seq"]
            summary.snapshots += 1
            metric_names.update(record["metrics"])
        elif kind == "span":
            summary.spans += 1
            name = record["name"]
            summary.span_names[name] = summary.span_names.get(name, 0) + 1
        else:
            summary.logs += 1
    if summary.records == 0:
        raise TelemetryError("telemetry stream is empty")
    summary.metric_names = sorted(metric_names)
    return summary


def validate_stream_file(path: str) -> StreamSummary:
    with open(path, "r", encoding="utf-8") as handle:
        return validate_stream(handle)


# --------------------------------------------------------------------- BENCH
#: Required numeric keys per benchmark record at the repository root.  A key
#: listed here must be present and finite-numeric; string-valued context
#: fields are listed separately.  Extra keys are allowed (benchmarks may
#: grow), but anything named here can never silently disappear again.
BENCH_SCHEMAS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "BENCH_runtime.json": {
        "numeric": (
            "duration_simulated_s",
            "warmup_simulated_s",
            "seed",
            "cpu_count",
            "fig8_serial_uncached_s",
            "fig8_parallel_cold_s",
            "fig8_cached_s",
            "speedup_parallel_cold",
            "speedup_cached",
            "calibration_cold_s",
            "calibration_cached_s",
            "cache_entries",
        ),
        "string": ("benchmark",),
    },
    "BENCH_simcore.json": {
        "numeric": (
            "duration_simulated_s",
            "warmup_simulated_s",
            "seed",
            "cpu_count",
            "events_executed",
            "events_per_s",
            "events_per_s_telemetry",
            "telemetry_overhead_pct",
            "simulated_s_per_wall_s",
            "fig8_serial_uncached_s",
            "fig8_baseline_s",
            "fig8_speedup_vs_baseline",
            "fleet_wall_s",
            "fleet_machines_per_s",
            "fleet_baseline_machines_per_s",
            "fleet_speedup_vs_baseline",
        ),
        "string": ("benchmark",),
    },
    "BENCH_fleet.json": {
        "numeric": (
            "machines",
            "machine_buckets",
            "cpu_count",
            "serial_s",
            "parallel_cold_s",
            "warm_cached_s",
            "shard_speedup",
            "cached_speedup",
            "machines_per_s_parallel",
            "machine_buckets_per_s_parallel",
            "warm_cache_hit_rate",
            "reclaimed_core_hours",
            "hyperscale_machines",
            "hyperscale_sample_fraction",
            "hyperscale_cpu_count",
            "hyperscale_wall_s",
            "hyperscale_machines_per_s",
            "hyperscale_machine_buckets",
            "hyperscale_reclaimed_core_hours",
        ),
        "string": ("benchmark",),
    },
}


def validate_bench_record(name: str, record: object) -> None:
    """Validate one BENCH_*.json payload against its declared schema."""
    try:
        schema = BENCH_SCHEMAS[name]
    except KeyError:
        raise TelemetryError(
            f"no schema declared for {name!r} (known: {sorted(BENCH_SCHEMAS)})"
        ) from None
    if not isinstance(record, dict):
        raise TelemetryError(f"{name}: benchmark record must be a JSON object")
    for key in schema["numeric"]:
        if key not in record:
            raise TelemetryError(f"{name}: missing required key {key!r}")
        if not _is_number(record[key]):
            raise TelemetryError(
                f"{name}: key {key!r} must be a finite number, got {record[key]!r}"
            )
    for key in schema["string"]:
        if key not in record:
            raise TelemetryError(f"{name}: missing required key {key!r}")
        if not isinstance(record[key], str) or not record[key]:
            raise TelemetryError(f"{name}: key {key!r} must be a non-empty string")


def validate_bench_file(path: str) -> None:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    validate_bench_record(os.path.basename(path), record)
