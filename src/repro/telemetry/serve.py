"""The live fleet console: a stdlib-only HTTP view over a telemetry stream.

``python -m repro.telemetry.serve run.jsonl`` serves a small dashboard that
tails the JSONL stream while the producing simulation is still running (every
record is flushed as written, so the file is always a valid prefix):

* ``GET /`` — the console page: latest snapshot metrics, span counts and a
  rolling P99-vs-SLO table, refreshed by polling ``/snapshots``;
* ``GET /meta`` — the stream's meta record;
* ``GET /snapshots?after=N`` — snapshot records with ``seq > N`` (the page
  polls this incrementally);
* ``GET /spans?after=N`` — span records past index ``N``;
* ``GET /summary`` — record counts by type.

Everything is standard library (``http.server`` + ``json``): the console must
work in the bare repro container.  The server is read-only over the file and
holds no references into the producing process.
"""

from __future__ import annotations

import argparse
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence
from urllib.parse import parse_qs, urlparse

from .registry import TelemetryError

__all__ = ["StreamTail", "TelemetryServer", "main"]


class StreamTail:
    """Incrementally ingests a JSONL telemetry stream from disk.

    ``refresh()`` reads only the bytes appended since the last call and keeps
    complete records in memory, so a console polling a live multi-megabyte
    stream never re-parses the whole file.  A trailing partial line (the
    producer mid-``write``) is left in the buffer for the next refresh.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.meta: Optional[Dict[str, Any]] = None
        self.snapshots: List[Dict[str, Any]] = []
        self.spans: List[Dict[str, Any]] = []
        self.logs: List[Dict[str, Any]] = []
        self._offset = 0
        self._pending = ""
        self._lock = threading.Lock()

    @property
    def records(self) -> int:
        return (
            (1 if self.meta is not None else 0)
            + len(self.snapshots)
            + len(self.spans)
            + len(self.logs)
        )

    def refresh(self) -> None:
        """Ingest any bytes appended to the file since the last refresh."""
        with self._lock:
            with open(self.path, "r", encoding="utf-8") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
            if not chunk:
                return
            text = self._pending + chunk
            lines = text.split("\n")
            # The final element is either "" (chunk ended on a newline) or a
            # partial record still being written; both wait for more bytes.
            self._pending = lines.pop()
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn write; later records still ingest
                kind = record.get("type")
                if kind == "meta":
                    self.meta = record
                elif kind == "snapshot":
                    self.snapshots.append(record)
                elif kind == "span":
                    self.spans.append(record)
                elif kind == "log":
                    self.logs.append(record)

    def summary(self) -> Dict[str, Any]:
        return {
            "records": self.records,
            "snapshots": len(self.snapshots),
            "spans": len(self.spans),
            "logs": len(self.logs),
            "source": (self.meta or {}).get("source", ""),
            "run_id": (self.meta or {}).get("run_id", ""),
        }


_CONSOLE_HTML = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>repro telemetry console</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2em;
         background: #111; color: #ddd; }
  h1 { font-size: 1.1em; } h2 { font-size: 0.95em; color: #9ad; }
  table { border-collapse: collapse; margin-bottom: 1.5em; }
  td, th { border: 1px solid #333; padding: 0.25em 0.7em; text-align: right; }
  th { color: #9ad; text-align: left; }
  td.name { text-align: left; }
  .ok { color: #7c7; } .bad { color: #e66; }
  #status { color: #888; }
</style>
</head>
<body>
<h1>repro telemetry console</h1>
<div id="status">connecting&hellip;</div>
<h2>latest snapshot</h2>
<table id="metrics"><tbody></tbody></table>
<h2>recent P99 vs SLO</h2>
<table id="recent"><tbody></tbody></table>
<h2>spans</h2>
<table id="spans"><tbody></tbody></table>
<script>
let after = -1;
const snapshots = [];
function cell(text, cls) {
  const td = document.createElement('td');
  td.textContent = text; if (cls) td.className = cls; return td;
}
function render() {
  const latest = snapshots[snapshots.length - 1];
  if (!latest) return;
  const metrics = document.querySelector('#metrics tbody');
  metrics.innerHTML = '';
  for (const [name, value] of Object.entries(latest.metrics)) {
    const tr = document.createElement('tr');
    tr.appendChild(cell(name, 'name'));
    const rendered = (value === null) ? '-' :
      (typeof value === 'object') ? JSON.stringify(value) :
      Number(value).toPrecision(6);
    tr.appendChild(cell(rendered));
    metrics.appendChild(tr);
  }
  const recent = document.querySelector('#recent tbody');
  recent.innerHTML = '<tr><th>t</th><th>label</th><th>p99</th><th>slo/guardrail</th></tr>';
  for (const snap of snapshots.slice(-12)) {
    const m = snap.metrics;
    const p99 = m['latency.windowed_p99_ms'] ?? m['fleet.colocated_p99_ms'];
    const bound = m['latency.slo_ms'] ?? m['fleet.guardrail_ratio'];
    const ratio = m['latency.p99_over_slo'] ?? m['fleet.p99_ratio'];
    const tr = document.createElement('tr');
    tr.appendChild(cell(Number(snap.time).toFixed(3)));
    tr.appendChild(cell(snap.label || '-', 'name'));
    tr.appendChild(cell(p99 == null ? '-' : Number(p99).toFixed(3),
                        ratio != null && ratio > 1 ? 'bad' : 'ok'));
    tr.appendChild(cell(bound == null ? '-' : Number(bound).toFixed(3)));
    recent.appendChild(tr);
  }
}
async function renderSpans() {
  const reply = await fetch('/spans?after=-12');
  const body = await reply.json();
  const table = document.querySelector('#spans tbody');
  table.innerHTML = '<tr><th>name</th><th>t</th><th>wall ms</th><th>status</th></tr>';
  for (const span of body.spans) {
    const tr = document.createElement('tr');
    tr.appendChild(cell(span.name, 'name'));
    tr.appendChild(cell(Number(span.time).toFixed(3)));
    tr.appendChild(cell(Number(span.wall_ms).toFixed(3)));
    tr.appendChild(cell(span.status, span.status === 'ok' ? 'ok' : 'bad'));
    table.appendChild(tr);
  }
}
async function poll() {
  try {
    const reply = await fetch(`/snapshots?after=${after}`);
    const body = await reply.json();
    for (const snap of body.snapshots) snapshots.push(snap);
    if (snapshots.length > 512) snapshots.splice(0, snapshots.length - 512);
    after = body.next;
    const meta = await (await fetch('/meta')).json();
    document.getElementById('status') .textContent =
      `source=${meta.source || '?'} run=${meta.run_id || '?'} ` +
      `snapshots=${body.total}`;
    render();
    await renderSpans();
  } catch (err) {
    document.getElementById('status').textContent = `poll failed: ${err}`;
  }
  setTimeout(poll, 1000);
}
poll();
</script>
</body>
</html>
"""


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"
    tail: StreamTail  # injected by TelemetryServer via the class factory

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # the console is quiet; diagnostics belong to the CLI logger

    def _send(self, payload: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, payload: Dict[str, Any], status: int = 200) -> None:
        self._send(
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            "application/json",
            status,
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        tail = self.tail
        tail.refresh()
        if parsed.path == "/":
            self._send(_CONSOLE_HTML.encode("utf-8"), "text/html; charset=utf-8")
        elif parsed.path == "/meta":
            self._send_json(tail.meta or {})
        elif parsed.path == "/summary":
            self._send_json(tail.summary())
        elif parsed.path == "/snapshots":
            after = int(query.get("after", ["-1"])[0])
            fresh = [snap for snap in tail.snapshots if snap["seq"] > after]
            self._send_json(
                {
                    "snapshots": fresh,
                    "next": fresh[-1]["seq"] if fresh else after,
                    "total": len(tail.snapshots),
                }
            )
        elif parsed.path == "/spans":
            after = int(query.get("after", ["0"])[0])
            spans = tail.spans[after:] if after >= 0 else tail.spans[after:]
            self._send_json({"spans": spans, "total": len(tail.spans)})
        else:
            self._send_json({"error": f"unknown path {parsed.path!r}"}, status=404)


class TelemetryServer:
    """Owns the HTTP server for one stream; ``port=0`` picks a free port."""

    def __init__(self, path: str, host: str = "127.0.0.1", port: int = 0) -> None:
        tail = StreamTail(path)
        tail.refresh()  # fail fast on a missing file
        handler = type("BoundHandler", (_Handler,), {"tail": tail})
        self.tail = tail
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def start_background(self) -> None:
        """Serve from a daemon thread (tests, or embedding in a run)."""
        if self._thread is not None:
            raise TelemetryError("telemetry server already started")
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.serve",
        description="Serve the live console over a JSONL telemetry stream.",
    )
    parser.add_argument("path", help="telemetry stream to serve (tailed live)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8787, help="port (0 = ephemeral)")
    args = parser.parse_args(argv)

    from .log import get_logger

    logger = get_logger("repro.telemetry.serve")
    try:
        server = TelemetryServer(args.path, host=args.host, port=args.port)
    except OSError as error:
        logger.error("console failed to start", path=args.path, error=str(error))
        return 2
    logger.info("console serving", url=server.url, path=args.path)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
