"""The one profiling entry point (host-side and simulation-side).

Two profilers historically lived in different packages and are consolidated
here under the telemetry umbrella:

* :func:`run_profiled` — the ``--profile PATH`` cProfile wrapper shared by
  the matrix and fleet command lines (formerly ``repro.runtime.profiling``);
* :class:`BufferCoreProfiler` — the offline Section 4.1 burst profiler that
  recommends a buffer-core count from the primary's ready-thread burstiness
  (formerly ``repro.core.profiling``).

The old module paths remain importable as thin re-export shims.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, TypeVar

import numpy as np

from ..config.schema import IndexServeSpec
from ..errors import IsolationError
from ..simulation.randomness import RandomStreams
from ..units import micros
from ..workloads.query_trace import QueryTrace

__all__ = ["BurstProfile", "BufferCoreProfiler", "run_profiled", "REPORT_LINES"]

T = TypeVar("T")

#: Number of entries included in the written cProfile report.
REPORT_LINES = 60


def run_profiled(fn: Callable[[], T], profile_path: str) -> T:
    """Run ``fn`` under cProfile and write a cumulative-time report.

    The report is written even when ``fn`` raises, so a failing run still
    leaves its profile behind for inspection.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result: Any = fn()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(REPORT_LINES)
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(stream.getvalue())
    return result


@dataclass(frozen=True)
class BurstProfile:
    """Distribution of ready-thread bursts observed during profiling."""

    window: float
    qps: float
    duration: float
    max_burst: int
    p50_burst: float
    p99_burst: float
    p999_burst: float
    recommended_buffer_cores: int
    histogram: Dict[int, int]


class BufferCoreProfiler:
    """Derives a buffer-core recommendation from the primary's burstiness.

    Choosing the number of buffer cores requires a one-off measurement of the
    primary under its provisioned peak load: how many worker threads can
    become ready for execution within a very short window (the paper observes
    up to 15 threads in 5 microseconds, and settles on 8 buffer cores for its
    servers).  The profiler replays the primary's arrival and fan-out model
    at peak load, builds the distribution of "threads becoming ready per
    window", and recommends a high percentile of it — conservative enough to
    absorb bursts, without reserving half the machine.
    """

    def __init__(
        self,
        spec: IndexServeSpec,
        seed: int = 0,
        window: float = micros(5),
    ) -> None:
        if window <= 0:
            raise IsolationError("profiling window must be positive")
        self._spec = spec
        self._window = window
        self._streams = RandomStreams(seed)

    def profile(
        self,
        peak_qps: float = 4000.0,
        duration: float = 5.0,
        percentile: float = 99.0,
        minimum: int = 2,
    ) -> BurstProfile:
        """Replay ``duration`` seconds of peak-load arrivals and measure bursts.

        ``percentile`` selects how aggressive the recommendation is: the
        recommended buffer is the chosen percentile of the per-window burst
        size, never below ``minimum``.
        """
        if peak_qps <= 0 or duration <= 0:
            raise IsolationError("peak_qps and duration must be positive")
        rng = self._streams.stream("profiler")
        trace = QueryTrace(self._spec, size=min(20_000, max(1000, int(peak_qps * duration))),
                           rng=self._streams.stream("profiler-trace"))

        expected_arrivals = int(peak_qps * duration)
        gaps = rng.exponential(1.0 / peak_qps, size=expected_arrivals)
        arrival_times = np.cumsum(gaps)
        arrival_times = arrival_times[arrival_times < duration]

        # Every query wakes its whole worker pack essentially at once; two
        # queries landing in the same window compound.
        bursts: List[int] = []
        histogram: Dict[int, int] = {}
        trace_cycle = trace.cycle()
        window = self._window
        current_window_end = window
        current_burst = 0
        for arrival in arrival_times:
            workers = next(trace_cycle).worker_count
            if arrival <= current_window_end:
                current_burst += workers
            else:
                if current_burst > 0:
                    bursts.append(current_burst)
                    histogram[current_burst] = histogram.get(current_burst, 0) + 1
                current_window_end = (int(arrival / window) + 1) * window
                current_burst = workers
        if current_burst > 0:
            bursts.append(current_burst)
            histogram[current_burst] = histogram.get(current_burst, 0) + 1

        if not bursts:
            raise IsolationError("profiling produced no arrivals; increase qps or duration")
        burst_array = np.asarray(bursts, dtype=float)
        recommended = max(minimum, int(np.ceil(np.percentile(burst_array, percentile))))
        return BurstProfile(
            window=window,
            qps=peak_qps,
            duration=duration,
            max_burst=int(burst_array.max()),
            p50_burst=float(np.percentile(burst_array, 50.0)),
            p99_burst=float(np.percentile(burst_array, 99.0)),
            p999_burst=float(np.percentile(burst_array, 99.9)),
            recommended_buffer_cores=recommended,
            histogram=histogram,
        )
