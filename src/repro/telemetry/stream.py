"""The snapshot stream: periodic JSONL publishing for running simulations.

A :class:`TelemetrySession` bundles the three moving parts — a
:class:`~repro.telemetry.registry.MetricsRegistry`, per-clock
:class:`~repro.telemetry.spans.SpanTracer`\\ s and a :class:`SnapshotWriter`
— behind one object the CLIs construct from ``--telemetry[=PATH]``.  The
session instruments a single-machine experiment through the engine's probe
seam (:meth:`~repro.simulation.engine.SimulationEngine.subscribe`); the
fleet tier publishes its per-bucket snapshots directly.

Telemetry is strictly read-only with respect to the simulation: probes draw
from no random stream, never mutate domain state, and the instrumented
experiment produces byte-identical results to an uninstrumented one (pinned
by tests and a hypothesis property).
"""

from __future__ import annotations

import json
import re
import time as _time
import uuid
from typing import Any, Dict, List, Optional

from .log import get_logger
from .registry import MetricsRegistry, TelemetryError
from .schema import SCHEMA_VERSION
from .spans import Span, SpanTracer

__all__ = [
    "SnapshotWriter",
    "TelemetrySession",
    "default_probe_interval",
    "read_records",
]

#: Default probe cadence: this many snapshots across one run's total time.
PROBES_PER_RUN = 128

#: Cached compact encoder for span records, the only high-frequency record
#: type (one per controller poll).  ``json.dumps(..., default=str)`` builds
#: a fresh encoder per call and the sparse record types don't care, but at
#: span rates that construction dominates; dict insertion order is already
#: deterministic, so spans skip ``sort_keys`` too.
_SPAN_ENCODE = json.JSONEncoder(separators=(",", ":"), default=str).encode

#: Strings that serialise as themselves inside double quotes — no escapes,
#: no control characters.  Everything the hot span path emits (span names,
#: policy names, decision descriptions) matches; anything else falls back
#: to the real encoder.
_PLAIN_STRING = re.compile(r'[^"\\\x00-\x1f]*\Z').match


#: Memo of already-rendered plain strings.  Span names, statuses, policy
#: names, attribute keys and decision descriptions repeat across thousands
#: of spans per run; a dict hit replaces the regex check and quote
#: formatting.  Bounded so a pathological stream of unique strings cannot
#: grow it without limit.
_STR_RENDER: Dict[str, str] = {}


def _render_str(value: str) -> Optional[str]:
    rendered = _STR_RENDER.get(value)
    if rendered is None:
        if not _PLAIN_STRING(value):
            return None
        if len(_STR_RENDER) >= 4096:
            _STR_RENDER.clear()
        rendered = f'"{value}"'
        _STR_RENDER[value] = rendered
    return rendered


def _scalar_json(value: object) -> Optional[str]:
    """Compact JSON for a plain scalar, or ``None`` to defer to the encoder.

    Matches ``json.dumps`` byte-for-byte for the values it accepts (pinned
    by test): floats and ints render via ``repr`` exactly as the stdlib
    encoder renders them, and non-finite floats are rejected so the
    fallback path keeps ``json``'s NaN/Infinity behaviour.
    """
    kind = type(value)
    if kind is str:
        return _render_str(value)
    if kind is bool:
        return "true" if value else "false"
    if kind is int:
        return repr(value)
    if kind is float:
        if value - value == 0.0:  # finite
            return repr(value)
        return None
    if value is None:
        return "null"
    return None


def _span_line(span: "Span") -> str:
    """One span's JSONL line, assembled without the generic JSON encoder.

    Spans fire once per controller poll — at millisecond poll cadence the
    stdlib encoder dominates the whole telemetry budget — so the known-shape
    record is formatted directly.  Any name/status/attribute the fast path
    cannot prove safe falls back to the encoder for the whole record.
    """
    # Inlined dispatch (no _scalar_json calls): at one span per 1 ms poll,
    # even the helper-function call overhead shows up in the simcore bench.
    name = span.name
    status = span.status
    time_v = span.time
    sim_v = span.sim_duration
    parts: Optional[List[str]] = []
    if (
        type(name) is str
        and type(status) is str
        and type(time_v) is float
        and type(sim_v) is float
        and time_v - time_v == 0.0
        and sim_v - sim_v == 0.0
    ):
        rendered_name = _render_str(name)
        rendered_status = _render_str(status)
        if rendered_name is None or rendered_status is None:
            parts = None
        else:
            for key, value in span.attributes.items():
                kind = type(value)
                if kind is str:
                    rendered = _render_str(value)
                elif kind is float:
                    rendered = repr(value) if value - value == 0.0 else None
                elif kind is int:
                    rendered = repr(value)
                elif kind is bool:
                    rendered = "true" if value else "false"
                elif value is None:
                    rendered = "null"
                else:
                    rendered = None
                rendered_key = _render_str(key) if type(key) is str else None
                if rendered is None or rendered_key is None:
                    parts = None
                    break
                parts.append(f"{rendered_key}:{rendered}")
    else:
        parts = None
    wall_ms = round(span.wall_ms, 4)
    if parts is None or type(wall_ms) is not float or wall_ms - wall_ms != 0.0:
        return _SPAN_ENCODE(span.as_record())
    return (
        f'{{"type":"span","name":{rendered_name},"time":{time_v!r},'
        f'"sim_duration":{sim_v!r},"wall_ms":{wall_ms!r},'
        f'"status":{rendered_status},"attributes":{{{",".join(parts)}}}}}'
    )


def default_probe_interval(total_time: float) -> float:
    """The default probe interval for a run covering ``total_time`` seconds."""
    if total_time <= 0:
        raise TelemetryError("total_time must be positive")
    return total_time / PROBES_PER_RUN


class SnapshotWriter:
    """Writes one versioned JSONL telemetry stream.

    The meta record is emitted immediately on construction so even a run that
    crashes before its first probe leaves a valid (if empty) stream behind.
    Meta, snapshot and log records flush as written — the live console tails
    the file while the run is still producing — while the much more frequent
    span records buffer until the next flush (see :meth:`write_span`).

    Telemetry is an observer, never a participant: an :class:`OSError` from
    the underlying file (disk full, pipe closed, volume yanked) **disables**
    the stream — one structured warning, handle closed, every later write a
    silent no-op — instead of killing the simulation it was watching.
    Writing to an explicitly :meth:`close`\\ d writer is still a programming
    error and still raises.
    """

    def __init__(
        self,
        path: str,
        source: str,
        run_id: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = str(path)
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self._handle = open(self.path, "w", encoding="utf-8")
        self._seq = 0
        self.snapshots_written = 0
        self.spans_written = 0
        #: True once an OSError disabled the stream (writes became no-ops).
        self.disabled = False
        record: Dict[str, Any] = {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "source": source,
            "run_id": self.run_id,
            "created_unix": round(_time.time(), 3),
        }
        if meta:
            record.update(meta)
        self._write(record)

    # ------------------------------------------------------------------ sink
    def _disable(self, error: OSError) -> None:
        """Take the stream out of the run after an I/O failure.

        Exactly one structured warning is emitted; the handle is closed
        best-effort and every subsequent write becomes a no-op.  The
        simulation being observed keeps running — telemetry loss must never
        become simulation loss.
        """
        self.disabled = True
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass
        get_logger("repro.telemetry.stream").warning(
            "telemetry stream disabled",
            path=self.path,
            run_id=self.run_id,
            error=f"{type(error).__name__}: {error}",
        )

    def _write(self, record: Dict[str, Any], flush: bool = True) -> None:
        if self.disabled:
            return
        if self._handle is None:
            raise TelemetryError(f"telemetry stream {self.path} is closed")
        try:
            self._handle.write(json.dumps(record, sort_keys=True, default=str))
            self._handle.write("\n")
            if flush:
                self._handle.flush()
        except OSError as error:
            self._disable(error)

    def write_snapshot(
        self, time: float, metrics: Dict[str, Any], label: Optional[str] = None
    ) -> int:
        """Append one snapshot record; returns its sequence number."""
        seq = self._seq
        self._seq = seq + 1
        record: Dict[str, Any] = {
            "type": "snapshot",
            "seq": seq,
            "time": float(time),
            "metrics": metrics,
        }
        if label is not None:
            record["label"] = label
        # Snapshots fire at probe cadence from inside the engine's hot loop;
        # like spans they use the cached compact encoder, but keep the
        # per-record flush so the live console can tail mid-run.
        if self.disabled:
            return seq
        if self._handle is None:
            raise TelemetryError(f"telemetry stream {self.path} is closed")
        try:
            self._handle.write(_SPAN_ENCODE(record))
            self._handle.write("\n")
            self._handle.flush()
        except OSError as error:
            self._disable(error)
            return seq
        self.snapshots_written += 1
        return seq

    def write_span(self, span: Span) -> None:
        # Spans can be very frequent (one per controller poll); they buffer
        # until the next snapshot flush instead of paying a flush syscall
        # each, and use the known-shape fast serialiser.  The console's
        # tailer tolerates the trailing partial line.
        if self.disabled:
            return
        if self._handle is None:
            raise TelemetryError(f"telemetry stream {self.path} is closed")
        try:
            self._handle.write(_span_line(span))
            self._handle.write("\n")
        except OSError as error:
            self._disable(error)
            return
        self.spans_written += 1

    def write_log(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        record: Dict[str, Any] = {"type": "log", "level": level, "event": event}
        if fields:
            record["fields"] = {key: str(value) for key, value in fields.items()}
        self._write(record)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError as error:
                self._disable(error)
                return
            self._handle = None

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_records(path: str) -> List[Dict[str, Any]]:
    """Load every record of a JSONL telemetry stream (no validation)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class TelemetrySession:
    """One observability session shared by everything a CLI invocation runs.

    The session owns the JSONL writer and a fresh metrics registry per
    instrumented run; tracers are bound per simulation clock so spans always
    carry the right notion of "now".  Closing the session closes the stream.
    """

    def __init__(
        self,
        writer: SnapshotWriter,
        probe_interval: Optional[float] = None,
    ) -> None:
        if probe_interval is not None and probe_interval <= 0:
            raise TelemetryError("probe interval must be positive")
        self.writer = writer
        self.probe_interval = probe_interval
        self.registry = MetricsRegistry()

    @classmethod
    def to_path(
        cls,
        path: str,
        source: str,
        meta: Optional[Dict[str, Any]] = None,
        probe_interval: Optional[float] = None,
    ) -> "TelemetrySession":
        return cls(SnapshotWriter(path, source=source, meta=meta), probe_interval)

    # --------------------------------------------------------------- tracing
    def tracer(self, clock) -> SpanTracer:
        """A span tracer against ``clock`` whose spans stream to the writer."""
        return SpanTracer(clock, sink=self.writer.write_span)

    def interval_for(self, total_time: float) -> float:
        return (
            self.probe_interval
            if self.probe_interval is not None
            else default_probe_interval(total_time)
        )

    # ------------------------------------------------------- instrumentation
    def attach_single_machine(
        self,
        engine,
        kernel,
        collector,
        client,
        primary,
        spec,
        controller=None,
        arrival_model=None,
        latency_window=None,
        label: Optional[str] = None,
    ):
        """Wire probes, gauges and controller spans onto one assembled run.

        Called by :meth:`SingleMachineExperiment.run
        <repro.experiments.single_machine.SingleMachineExperiment.run>` after
        the machine is built but before the engine runs.  Registers the
        per-component gauges, attaches a decide-span tracer to the controller,
        and subscribes a snapshot probe at the session's interval.  Returns
        the probe subscription.
        """
        registry = MetricsRegistry()  # fresh per run; names repeat across runs
        total_cores = kernel.logical_cores

        scheduler = registry.namespace("scheduler")
        scheduler.gauge(
            "occupancy",
            fn=lambda: 1.0 - kernel.idle_core_count() / total_cores,
        )
        scheduler.gauge("idle_cores", unit="cores", fn=kernel.idle_core_count)

        workload = registry.namespace("workload")
        offered = workload.gauge("offered_qps", unit="qps")
        served = workload.gauge("served_qps", unit="qps")
        workload.gauge("submitted", fn=lambda: client.submitted)

        latency = registry.namespace("latency")
        latency.gauge("completed", fn=lambda: primary.completed)
        latency.gauge("dropped", fn=lambda: primary.dropped)
        windowed = latency.gauge("windowed_p99_ms", unit="ms")
        slo_ms = None
        if spec.perfiso is not None:
            slo_ms = spec.perfiso.pid.slo_p99 * 1e3
            latency.gauge("slo_ms", unit="ms").set(slo_ms)

        tracer = None
        if controller is not None:
            ns = registry.namespace("controller")
            ns.gauge("polls", fn=lambda: float(controller.polls))
            ns.gauge("updates_applied", fn=lambda: float(controller.updates_applied))
            ns.gauge(
                "secondary_cores",
                unit="cores",
                fn=lambda: (
                    float(controller.secondary_core_count)
                    if controller.secondary_core_count is not None
                    else float(total_cores)
                ),
            )
            tracer = self.tracer(lambda: engine.now)
            controller.attach_tracer(tracer)

        interval = self.interval_for(spec.workload.total_time)
        writer = self.writer
        state = {
            "last_time": engine.now,
            "last_completed": primary.completed,
            "sample_cursor": collector.sample_count,
        }

        def probe(now: float) -> None:
            elapsed = now - state["last_time"]
            completed = primary.completed
            if elapsed > 0:
                served.set((completed - state["last_completed"]) / elapsed)
            state["last_time"] = now
            state["last_completed"] = completed
            if arrival_model is not None:
                offered.set(float(arrival_model.rate_at(now)))
            else:
                offered.set(float(spec.workload.qps))
            if latency_window is not None:
                # A latency-feedback policy already maintains a sliding
                # window; report the same number the controller sees.
                p99 = latency_window.p99(now)
                windowed.set(p99 * 1e3 if p99 is not None else float("nan"))
            else:
                # No policy window to piggyback on: the P99 of the samples
                # the collector recorded since the last probe, read straight
                # off its buffer.  This keeps the per-query hot path free of
                # any telemetry work (warmup-period probes report NaN - the
                # collector only buffers post-warmup samples).
                cursor = state["sample_cursor"]
                state["sample_cursor"] = collector.sample_count
                p99 = collector.percentile_since(cursor, 99.0)
                windowed.set(p99 * 1e3 if p99 is not None else float("nan"))
            metrics = registry.collect()
            # NaN marks "no samples in window yet"; JSON has no NaN, so the
            # record carries null instead.
            p99_value = metrics.get("latency.windowed_p99_ms")
            if p99_value is not None and p99_value != p99_value:
                metrics["latency.windowed_p99_ms"] = None
            if slo_ms is not None and metrics.get("latency.windowed_p99_ms") is not None:
                metrics["latency.p99_over_slo"] = metrics["latency.windowed_p99_ms"] / slo_ms
            writer.write_snapshot(now, metrics, label=label)

        return engine.subscribe(probe, interval)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
