"""Deficit-weighted-round-robin (DWRR) I/O throttling (Section 4.1).

The OS only exposes per-device I/O statistics, not per-process ones on the
device path, so PerfIso throttles in user space: every registered process has
a weight and optional limits; the throttler periodically measures per-process
IOPS (moving average), computes each process's *demand* (its weighted share
of the measured device throughput) and its *deficit* relative to the minimum
it is guaranteed, and then tightens or relaxes the secondary's token-bucket
caps in the kernel I/O stack accordingly.

The formulas follow the paper:

    D_i(t)   = sum over the window of  w_i * curr(t') / sum_j w_j
    Def_i(t) = (curr(t) - min(lim_i, D_i)) / min(lim_i, D_i)

A positive primary deficit (the primary is getting less than both its limit
and its weighted share) causes the secondary's caps to be halved; when the
primary has headroom the secondary's caps are relaxed multiplicatively back
toward the configured static ceiling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..config.schema import IoThrottleSpec
from ..errors import IsolationError
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from ..simulation.events import EventPriority

__all__ = ["DwrrIoThrottler", "ProcessIoState"]


@dataclass
class ProcessIoState:
    """Bookkeeping for one throttled process."""

    process: OsProcess
    weight: float
    guaranteed_iops: float
    #: Moving window of (time, completed-request count) samples.
    samples: Deque = None
    current_iops: float = 0.0
    demand: float = 0.0
    deficit: float = 0.0
    #: Current cap applied to a secondary process (None for the primary).
    applied_bandwidth_cap: Optional[float] = None
    applied_iops_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.samples is None:
            self.samples = deque()


class DwrrIoThrottler:
    """Adaptive per-process I/O throttling on one shared volume."""

    #: Multiplicative factors used to tighten/relax the secondary's caps.
    TIGHTEN_FACTOR = 0.5
    RELAX_FACTOR = 1.25
    #: Never throttle the secondary below these floors (forward progress).
    MIN_BANDWIDTH = 1024.0 * 1024.0
    MIN_IOPS = 4.0

    def __init__(
        self,
        kernel: Kernel,
        spec: IoThrottleSpec,
        volume: str = "hdd",
    ) -> None:
        self._kernel = kernel
        self._spec = spec
        self._volume = volume
        self._states: Dict[str, ProcessIoState] = {}
        self._running = False
        #: A scheduled-but-unfired _adjust exists; guards against a stop() ->
        #: start() cycle stacking a second adjustment chain on the old one.
        self._chain_pending = False
        self._weights = spec.weight_map()
        # statistics
        self.adjustments = 0
        self.tighten_events = 0
        self.relax_events = 0

    @property
    def spec(self) -> IoThrottleSpec:
        return self._spec

    # ------------------------------------------------------------ membership
    def register(self, process: OsProcess, weight: Optional[float] = None) -> ProcessIoState:
        """Track ``process``; its weight defaults to its tenant-class weight."""
        if process.name in self._states:
            return self._states[process.name]
        if weight is None:
            weight = self._weights.get(process.category, 1.0)
        if weight <= 0:
            raise IsolationError("I/O weight must be positive")
        guaranteed = self._spec.primary_min_iops if process.category == TenantCategory.PRIMARY else 0.0
        state = ProcessIoState(process=process, weight=weight, guaranteed_iops=guaranteed)
        self._states[process.name] = state
        if process.category == TenantCategory.SECONDARY:
            self._apply_caps(
                state,
                bandwidth=self._spec.secondary_bandwidth_limit or None,
                iops=self._spec.secondary_iops_limit or None,
            )
        return state

    def states(self) -> List[ProcessIoState]:
        return list(self._states.values())

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._running or not self._spec.enabled:
            return
        self._running = True
        self._schedule_adjust()

    def stop(self) -> None:
        self._running = False

    def clear_caps(self) -> None:
        """Lift every applied secondary cap (kill-switch / disable path)."""
        for state in self._states.values():
            if state.process.category == TenantCategory.SECONDARY:
                self._apply_caps(state, bandwidth=None, iops=None)

    # -------------------------------------------------------- reconfiguration
    def update_spec(self, spec: IoThrottleSpec) -> None:
        """Reconfigure in place from a cluster-wide configuration push.

        Weights, the primary's IOPS guarantee and the secondary's static caps
        all follow the new sub-spec immediately; a push that disables the
        throttler stops the adjustment loop and lifts the applied caps.
        """
        self._spec = spec
        self._weights = spec.weight_map()
        for state in self._states.values():
            state.weight = self._weights.get(state.process.category, state.weight)
            if state.process.category == TenantCategory.PRIMARY:
                state.guaranteed_iops = spec.primary_min_iops
        if not spec.enabled:
            if self._running:
                self.stop()
            self.clear_caps()
            return
        for state in self._states.values():
            if state.process.category == TenantCategory.SECONDARY:
                self._apply_caps(
                    state,
                    bandwidth=spec.secondary_bandwidth_limit or None,
                    iops=spec.secondary_iops_limit or None,
                )

    def _schedule_adjust(self) -> None:
        if self._chain_pending:
            return
        self._chain_pending = True
        self._kernel.engine.schedule(
            self._spec.adjust_interval, self._adjust, priority=EventPriority.CONTROLLER
        )

    # ------------------------------------------------------------- internals
    def _measure(self) -> float:
        """Update per-process IOPS moving averages; return total volume IOPS."""
        now = self._kernel.now
        total = 0.0
        for state in self._states.values():
            completed = self._kernel.iostack.completions(state.process.name, self._volume)
            state.samples.append((now, completed))
            while state.samples and now - state.samples[0][0] > self._spec.window:
                state.samples.popleft()
            if len(state.samples) >= 2:
                t0, c0 = state.samples[0]
                t1, c1 = state.samples[-1]
                state.current_iops = (c1 - c0) / (t1 - t0) if t1 > t0 else 0.0
            else:
                state.current_iops = 0.0
            total += state.current_iops
        return total

    def _compute_demands(self, total_iops: float) -> None:
        weight_sum = sum(state.weight for state in self._states.values()) or 1.0
        for state in self._states.values():
            state.demand = state.weight * total_iops / weight_sum
            floor = state.guaranteed_iops if state.guaranteed_iops > 0 else state.demand
            reference = min(floor, state.demand) if state.guaranteed_iops > 0 else state.demand
            if reference <= 0:
                state.deficit = 0.0
            else:
                state.deficit = (state.current_iops - reference) / reference

    def _adjust(self) -> None:
        self._chain_pending = False
        if not self._running:
            return
        total = self._measure()
        self._compute_demands(total)
        self.adjustments += 1

        primary_states = [
            s for s in self._states.values() if s.process.category == TenantCategory.PRIMARY
        ]
        secondary_states = [
            s for s in self._states.values() if s.process.category == TenantCategory.SECONDARY
        ]
        primary_starved = any(s.deficit < -0.1 and s.current_iops > 0 for s in primary_states)

        for state in secondary_states:
            if primary_starved:
                self.tighten_events += 1
                new_bandwidth = max(
                    self.MIN_BANDWIDTH,
                    (state.applied_bandwidth_cap or self._spec.secondary_bandwidth_limit)
                    * self.TIGHTEN_FACTOR,
                )
                new_iops = None
                if self._spec.secondary_iops_limit:
                    new_iops = max(
                        self.MIN_IOPS,
                        (state.applied_iops_cap or self._spec.secondary_iops_limit)
                        * self.TIGHTEN_FACTOR,
                    )
                self._apply_caps(state, bandwidth=new_bandwidth, iops=new_iops)
            else:
                ceiling_bw = self._spec.secondary_bandwidth_limit or None
                ceiling_iops = self._spec.secondary_iops_limit or None
                current_bw = state.applied_bandwidth_cap
                if ceiling_bw is not None and current_bw is not None and current_bw < ceiling_bw:
                    self.relax_events += 1
                    self._apply_caps(
                        state,
                        bandwidth=min(ceiling_bw, current_bw * self.RELAX_FACTOR),
                        iops=(
                            min(ceiling_iops, (state.applied_iops_cap or ceiling_iops) * self.RELAX_FACTOR)
                            if ceiling_iops is not None
                            else None
                        ),
                    )
        self._schedule_adjust()

    def _apply_caps(
        self,
        state: ProcessIoState,
        bandwidth: Optional[float],
        iops: Optional[float],
    ) -> None:
        previous_iops = state.applied_iops_cap
        state.applied_bandwidth_cap = bandwidth
        state.applied_iops_cap = iops
        self._kernel.iostack.set_bandwidth_limit(state.process.name, self._volume, bandwidth)
        # Passing None through clears a previously-set kernel IOPS cap (a new
        # spec may disable the IOPS limit); untouched-and-unset stays unset.
        if iops is not None or previous_iops is not None:
            self._kernel.iostack.set_iops_limit(state.process.name, self._volume, iops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DwrrIoThrottler(volume={self._volume!r}, processes={len(self._states)})"
