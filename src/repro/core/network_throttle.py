"""Egress network throttling of the secondary (Section 3.2).

The secondary's outbound traffic is marked low priority and rate capped, so
primary responses are never queued behind bulk batch transfers.  The model is
thin by design: the NIC already implements strict priority plus a low-class
token bucket; this component simply owns the configuration and exposes the
"which priority should this tenant's packets use" decision.
"""

from __future__ import annotations

from typing import Optional

from ..config.schema import NetworkThrottleSpec
from ..hostos.process import TenantCategory
from ..hostos.syscalls import Kernel

__all__ = ["NetworkThrottle"]


class NetworkThrottle:
    """Applies the secondary egress policy to a machine's NIC."""

    def __init__(self, kernel: Kernel, spec: NetworkThrottleSpec) -> None:
        self._kernel = kernel
        self._spec = spec
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    @property
    def spec(self) -> NetworkThrottleSpec:
        return self._spec

    def start(self) -> None:
        if not self._spec.enabled or self._active:
            return
        self._active = True
        self._kernel.machine.nic.set_low_priority_rate_limit(self._spec.secondary_bandwidth_limit)

    def stop(self) -> None:
        if not self._active:
            return
        self._active = False
        self._kernel.machine.nic.set_low_priority_rate_limit(None)

    def priority_for(self, category: str) -> str:
        """NIC priority class a tenant of ``category`` should use for egress."""
        nic = self._kernel.machine.nic
        if not self._active or not self._spec.low_priority:
            return nic.HIGH
        return nic.LOW if category == TenantCategory.SECONDARY else nic.HIGH

    def update_limit(self, bytes_per_second: Optional[float]) -> None:
        """Adjust the cap at runtime (used by cluster-wide config pushes)."""
        if self._active:
            self._kernel.machine.nic.set_low_priority_rate_limit(bytes_per_second)

    def update_spec(self, spec: NetworkThrottleSpec) -> None:
        """Reconfigure in place from a cluster-wide configuration push.

        An active throttle re-applies the new bandwidth cap immediately; a
        push that disables the throttle deactivates it and lifts the cap.
        """
        self._spec = spec
        if not spec.enabled:
            self.stop()
        elif self._active:
            self._kernel.machine.nic.set_low_priority_rate_limit(spec.secondary_bandwidth_limit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkThrottle(active={self._active})"
