"""Memory guard: keep the primary's working set safe (Section 3.2).

The primary is engineered for a fixed working set that must always be
resident; the secondary's footprint is capped, and when free memory drops
below a reserve the secondary's processes are killed (largest consumer first)
until the reserve is restored.  Killing is acceptable for best-effort batch
work — the cluster scheduler simply re-runs the task elsewhere.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config.schema import MemoryGuardSpec
from ..errors import IsolationError
from ..hostos.jobobject import JobObject
from ..hostos.process import OsProcess
from ..hostos.syscalls import Kernel
from ..simulation.events import EventPriority

__all__ = ["MemoryGuard"]


class MemoryGuard:
    """Periodically checks free memory and kills secondary processes if needed."""

    def __init__(
        self,
        kernel: Kernel,
        spec: MemoryGuardSpec,
        job: JobObject,
        on_kill: Optional[Callable[[OsProcess], None]] = None,
    ) -> None:
        self._kernel = kernel
        self._spec = spec
        self._job = job
        self._on_kill = on_kill
        self._running = False
        #: A scheduled-but-unfired _check exists; guards against a stop() ->
        #: start() cycle stacking a second check chain on the old one.
        self._chain_pending = False
        # statistics
        self.checks = 0
        self.kills: List[str] = []

    @property
    def spec(self) -> MemoryGuardSpec:
        return self._spec

    def start(self) -> None:
        if self._running or not self._spec.enabled:
            return
        self._running = True
        self._schedule_check()

    def stop(self) -> None:
        self._running = False

    def update_spec(self, spec: MemoryGuardSpec) -> None:
        """Reconfigure in place from a cluster-wide configuration push.

        The new reserve and check interval take effect from the next check; a
        push that disables the guard stops the check loop.
        """
        self._spec = spec
        if self._running and not spec.enabled:
            self.stop()

    def set_job_memory_limit(self, limit_bytes: Optional[int]) -> None:
        """Cap the job object's total footprint (None removes the cap)."""
        if limit_bytes is not None and limit_bytes <= 0:
            raise IsolationError("job memory limit must be positive or None")
        self._job.set_memory_limit(limit_bytes)

    # ------------------------------------------------------------- internals
    def _schedule_check(self) -> None:
        if self._chain_pending:
            return
        self._chain_pending = True
        self._kernel.engine.schedule(
            self._spec.check_interval, self._check, priority=EventPriority.CONTROLLER
        )

    def _check(self) -> None:
        self._chain_pending = False
        if not self._running:
            return
        self.checks += 1
        self._enforce()
        self._schedule_check()

    def _enforce(self) -> None:
        # Kill until both conditions hold: the reserve is free and the job is
        # within its own memory limit.
        while self._needs_kill():
            victim = self._pick_victim()
            if victim is None:
                return
            self.kills.append(victim.name)
            self._kernel.kill_process(victim)
            if self._on_kill is not None:
                self._on_kill(victim)

    def _needs_kill(self) -> bool:
        low_memory = self._kernel.free_memory_bytes() < self._spec.reserved_bytes
        over_limit = self._job.exceeds_memory_limit()
        return low_memory or over_limit

    def _pick_victim(self) -> Optional[OsProcess]:
        candidates = [p for p in self._job.processes if p.alive and p.memory_bytes > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.memory_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryGuard(checks={self.checks}, kills={len(self.kills)})"
