"""CPU isolation policies.

PerfIso's CPU policy decides, at every controller poll, how much CPU the
secondary job object may use.  Four policies are provided, matching the
paper's evaluation matrix (Section 6.1):

* :class:`BlindIsolationPolicy` — the paper's contribution.  Keep ``B`` idle
  cores at all times by growing/shrinking the secondary's core allocation
  based purely on the idle-core count (no SLOs, no model of the primary).
* :class:`StaticCoresPolicy` — restrict the secondary to a fixed core subset.
* :class:`CpuCyclesPolicy` — restrict the secondary to a fixed share of total
  CPU cycles (duty-cycle rate control).
* :class:`NoIsolationPolicy` — the uncontrolled baseline.

Policies are pure decision functions; applying a decision to the job object
is the controller's job, which keeps the policies trivially unit-testable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..config.schema import BlindIsolationSpec, CpuCycleSpec, StaticCoreSpec
from ..errors import IsolationError

__all__ = [
    "AllocationDecision",
    "CpuIsolationPolicy",
    "BlindIsolationPolicy",
    "StaticCoresPolicy",
    "CpuCyclesPolicy",
    "NoIsolationPolicy",
    "build_policy",
]


@dataclass(frozen=True)
class AllocationDecision:
    """What the secondary job object should be limited to.

    Exactly one of the knobs is meaningful per policy: a core count (affinity
    restriction), a CPU rate fraction, or "unrestricted".
    """

    core_count: Optional[int] = None
    cpu_rate: Optional[float] = None
    unrestricted: bool = False

    def __post_init__(self) -> None:
        set_knobs = sum(
            [self.core_count is not None, self.cpu_rate is not None, self.unrestricted]
        )
        if set_knobs != 1:
            raise IsolationError(
                "an AllocationDecision must set exactly one of core_count, cpu_rate, "
                "unrestricted"
            )
        if self.core_count is not None and self.core_count < 0:
            raise IsolationError("core_count must be >= 0")
        if self.cpu_rate is not None and not 0.0 < self.cpu_rate <= 1.0:
            raise IsolationError("cpu_rate must be in (0, 1]")


class CpuIsolationPolicy(abc.ABC):
    """Interface of a CPU isolation policy."""

    name = "abstract"

    @abc.abstractmethod
    def initial_decision(self, total_cores: int) -> AllocationDecision:
        """Allocation to apply when the controller starts."""

    @abc.abstractmethod
    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        """Allocation to apply after observing ``idle_cores``; ``None`` = no change."""


class BlindIsolationPolicy(CpuIsolationPolicy):
    """CPU blind isolation (Section 3.1).

    Let ``I`` be the observed number of idle cores and ``B`` the configured
    buffer.  If ``I < B`` the secondary's core count ``S`` is decreased by the
    shortfall; if ``I > B`` it is increased by the surplus.  ``S`` is clamped
    to ``[min_secondary_cores, total - B]``.
    """

    name = "blind"

    def __init__(self, spec: BlindIsolationSpec) -> None:
        self._spec = spec

    @property
    def buffer_cores(self) -> int:
        return self._spec.buffer_cores

    def max_secondary(self, total_cores: int) -> int:
        return max(self._spec.min_secondary_cores, total_cores - self._spec.buffer_cores)

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        if self._spec.buffer_cores >= total_cores:
            raise IsolationError(
                f"buffer ({self._spec.buffer_cores}) must be smaller than the machine "
                f"({total_cores} cores)"
            )
        return AllocationDecision(core_count=self.max_secondary(total_cores))

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        if current_core_count is None:
            current_core_count = self.max_secondary(total_cores)
        buffer_cores = self._spec.buffer_cores
        delta = idle_cores - buffer_cores
        if delta == 0:
            return None
        if self._spec.max_step:
            delta = max(-self._spec.max_step, min(self._spec.max_step, delta))
        target = current_core_count + delta
        target = max(self._spec.min_secondary_cores, min(self.max_secondary(total_cores), target))
        if target == current_core_count:
            return None
        return AllocationDecision(core_count=target)


class StaticCoresPolicy(CpuIsolationPolicy):
    """Fixed core-subset restriction (the 'CPU cores' alternative)."""

    name = "static_cores"

    def __init__(self, spec: StaticCoreSpec) -> None:
        self._spec = spec

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        count = min(self._spec.secondary_cores, total_cores)
        return AllocationDecision(core_count=count)

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return None


class CpuCyclesPolicy(CpuIsolationPolicy):
    """Fixed CPU duty-cycle restriction (the 'CPU cycles' alternative)."""

    name = "cpu_cycles"

    def __init__(self, spec: CpuCycleSpec) -> None:
        self._spec = spec

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(cpu_rate=self._spec.cpu_fraction)

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return None


class NoIsolationPolicy(CpuIsolationPolicy):
    """The uncontrolled baseline: the secondary competes freely."""

    name = "none"

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(unrestricted=True)

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return None


def build_policy(
    cpu_policy: str,
    blind: Optional[BlindIsolationSpec] = None,
    static_cores: Optional[StaticCoreSpec] = None,
    cpu_cycles: Optional[CpuCycleSpec] = None,
) -> CpuIsolationPolicy:
    """Construct the policy named by ``cpu_policy`` from its spec."""
    if cpu_policy == "blind":
        return BlindIsolationPolicy(blind if blind is not None else BlindIsolationSpec())
    if cpu_policy == "static_cores":
        return StaticCoresPolicy(static_cores if static_cores is not None else StaticCoreSpec())
    if cpu_policy == "cpu_cycles":
        return CpuCyclesPolicy(cpu_cycles if cpu_cycles is not None else CpuCycleSpec())
    if cpu_policy == "none":
        return NoIsolationPolicy()
    raise IsolationError(f"unknown cpu policy {cpu_policy!r}")
