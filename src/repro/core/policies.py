"""CPU isolation policies and challenger controllers.

PerfIso's CPU policy decides, at every controller poll, how much CPU the
secondary job object may use.  The paper's evaluation matrix (Section 6.1)
is covered by four policies:

* :class:`BlindIsolationPolicy` — the paper's contribution.  Keep ``B`` idle
  cores at all times by growing/shrinking the secondary's core allocation
  based purely on the idle-core count (no SLOs, no model of the primary).
* :class:`StaticCoresPolicy` — restrict the secondary to a fixed core subset.
* :class:`CpuCyclesPolicy` — restrict the secondary to a fixed share of total
  CPU cycles (duty-cycle rate control).
* :class:`NoIsolationPolicy` — the uncontrolled baseline.

To quantify *when* blindness wins or loses, four challenger controllers
implement the same interface against richer telemetry — the controller hands
every policy a :class:`ControllerObservation` and only gathers the telemetry
a policy declares it reads (``uses_latency`` / ``uses_forecast``):

* :class:`PidPolicy` — closed-loop PID on the windowed-P99 SLO error;
* :class:`ModelPredictivePolicy` — sizes the secondary against the arrival
  model's exact forecast peak over the next poll window;
* :class:`UtilizationTargetPolicy` — classic utilisation-target autoscaling;
* :class:`OraclePolicy` — clairvoyant: reads the future arrival trace, an
  upper bound on what any predictor could achieve.

Policies are pure decision functions; applying a decision to the job object
is the controller's job, which keeps the policies trivially unit-testable.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, Optional, Type

from ..config.schema import (
    BlindIsolationSpec,
    CpuCycleSpec,
    MpcControlSpec,
    OracleControlSpec,
    PidControlSpec,
    StaticCoreSpec,
    UtilizationTargetSpec,
)
from ..errors import IsolationError

__all__ = [
    "AllocationDecision",
    "ControllerObservation",
    "CpuIsolationPolicy",
    "BlindIsolationPolicy",
    "StaticCoresPolicy",
    "CpuCyclesPolicy",
    "NoIsolationPolicy",
    "PidPolicy",
    "ModelPredictivePolicy",
    "UtilizationTargetPolicy",
    "OraclePolicy",
    "build_policy",
    "policy_from_spec",
    "policy_class",
]


@dataclass(frozen=True)
class AllocationDecision:
    """What the secondary job object should be limited to.

    Exactly one of the knobs is meaningful per policy: a core count (affinity
    restriction), a CPU rate fraction, or "unrestricted".
    """

    core_count: Optional[int] = None
    cpu_rate: Optional[float] = None
    unrestricted: bool = False

    def __post_init__(self) -> None:
        set_knobs = sum(
            [self.core_count is not None, self.cpu_rate is not None, self.unrestricted]
        )
        if set_knobs != 1:
            raise IsolationError(
                "an AllocationDecision must set exactly one of core_count, cpu_rate, "
                "unrestricted"
            )
        if self.core_count is not None and self.core_count < 0:
            raise IsolationError("core_count must be >= 0")
        if self.cpu_rate is not None and not 0.0 < self.cpu_rate <= 1.0:
            raise IsolationError("cpu_rate must be in (0, 1]")


@dataclass(frozen=True)
class ControllerObservation:
    """Everything a dynamic controller may observe at one poll.

    The controller populates ``windowed_p99`` and ``forecast_peak_qps`` only
    for policies that declare the matching capability flag; they are ``None``
    otherwise (and also when the telemetry source has no data yet — an empty
    latency window, or no arrival model attached).
    """

    now: float
    total_cores: int
    idle_cores: int
    current_core_count: Optional[int]
    poll_interval: float
    #: P99 of served latencies over the policy's sliding window (seconds).
    windowed_p99: Optional[float] = None
    #: Exact peak offered QPS over the policy's forecast horizon.
    forecast_peak_qps: Optional[float] = None

    @property
    def utilization(self) -> float:
        """Busy fraction of the machine's logical cores."""
        return 1.0 - self.idle_cores / self.total_cores


class CpuIsolationPolicy(abc.ABC):
    """Interface of a dynamic CPU controller.

    Legacy policies implement :meth:`poll_decision` over the idle-core count
    alone; the base :meth:`decide` adapts them to the observation-driven
    interface.  Richer controllers override :meth:`decide` directly and set
    the capability flags so the controller only gathers telemetry that is
    actually read.
    """

    name = "abstract"
    #: Whether :meth:`decide` reads ``observation.windowed_p99``.
    uses_latency = False
    #: Whether :meth:`decide` reads ``observation.forecast_peak_qps``.
    uses_forecast = False

    @abc.abstractmethod
    def initial_decision(self, total_cores: int) -> AllocationDecision:
        """Allocation to apply when the controller starts."""

    @abc.abstractmethod
    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        """Allocation to apply after observing ``idle_cores``; ``None`` = no change."""

    def decide(self, observation: ControllerObservation) -> Optional[AllocationDecision]:
        """Allocation for this poll's observation; ``None`` = no change."""
        return self.poll_decision(
            observation.total_cores,
            observation.idle_cores,
            observation.current_core_count,
        )

    def forecast_horizon(self, poll_interval: float) -> float:
        """How far ahead (seconds) the forecast in the observation should look."""
        return poll_interval


class _ObservationPolicy(CpuIsolationPolicy):
    """Base for controllers written against :class:`ControllerObservation`.

    Subclasses override :meth:`decide`; the legacy :meth:`poll_decision`
    entry point is adapted by wrapping its arguments into a bare observation
    (no latency window, no forecast — the policy must degrade gracefully).
    """

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return self.decide(
            ControllerObservation(
                now=0.0,
                total_cores=total_cores,
                idle_cores=idle_cores,
                current_core_count=current_core_count,
                poll_interval=0.0,
            )
        )


class BlindIsolationPolicy(CpuIsolationPolicy):
    """CPU blind isolation (Section 3.1).

    Let ``I`` be the observed number of idle cores and ``B`` the configured
    buffer.  If ``I < B`` the secondary's core count ``S`` is decreased by the
    shortfall; if ``I > B`` it is increased by the surplus.  ``S`` is clamped
    to ``[min_secondary_cores, total - B]``.
    """

    name = "blind"

    def __init__(self, spec: BlindIsolationSpec) -> None:
        self._spec = spec

    @property
    def buffer_cores(self) -> int:
        return self._spec.buffer_cores

    def max_secondary(self, total_cores: int) -> int:
        return max(self._spec.min_secondary_cores, total_cores - self._spec.buffer_cores)

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        if self._spec.buffer_cores >= total_cores:
            raise IsolationError(
                f"buffer ({self._spec.buffer_cores}) must be smaller than the machine "
                f"({total_cores} cores)"
            )
        return AllocationDecision(core_count=self.max_secondary(total_cores))

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        if current_core_count is None:
            current_core_count = self.max_secondary(total_cores)
        buffer_cores = self._spec.buffer_cores
        delta = idle_cores - buffer_cores
        if delta == 0:
            return None
        if self._spec.max_step:
            delta = max(-self._spec.max_step, min(self._spec.max_step, delta))
        target = current_core_count + delta
        target = max(self._spec.min_secondary_cores, min(self.max_secondary(total_cores), target))
        if target == current_core_count:
            return None
        return AllocationDecision(core_count=target)


class StaticCoresPolicy(CpuIsolationPolicy):
    """Fixed core-subset restriction (the 'CPU cores' alternative)."""

    name = "static_cores"

    def __init__(self, spec: StaticCoreSpec) -> None:
        self._spec = spec

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        count = min(self._spec.secondary_cores, total_cores)
        return AllocationDecision(core_count=count)

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return None


class CpuCyclesPolicy(CpuIsolationPolicy):
    """Fixed CPU duty-cycle restriction (the 'CPU cycles' alternative)."""

    name = "cpu_cycles"

    def __init__(self, spec: CpuCycleSpec) -> None:
        self._spec = spec

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(cpu_rate=self._spec.cpu_fraction)

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return None


class NoIsolationPolicy(CpuIsolationPolicy):
    """The uncontrolled baseline: the secondary competes freely."""

    name = "none"

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(unrestricted=True)

    def poll_decision(
        self, total_cores: int, idle_cores: int, current_core_count: Optional[int]
    ) -> Optional[AllocationDecision]:
        return None


class PidPolicy(_ObservationPolicy):
    """PID controller on the relative windowed-P99 SLO error.

    Positive error (P99 under the SLO) grows the secondary, negative error
    (SLO breach) shrinks it; the integral term removes steady-state offset
    and is clamped for anti-windup.  With no latency signal yet (empty
    window, or driven through the legacy entry point) the allocation holds.
    """

    name = "pid"
    uses_latency = True

    def __init__(self, spec: PidControlSpec) -> None:
        self._spec = spec
        self._integral = 0.0
        self._previous_error: Optional[float] = None

    def max_secondary(self, total_cores: int) -> int:
        return max(self._spec.min_secondary_cores, total_cores - self._spec.reserve_cores)

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(core_count=self.max_secondary(total_cores))

    def decide(self, observation: ControllerObservation) -> Optional[AllocationDecision]:
        p99 = observation.windowed_p99
        if p99 is None:
            return None
        spec = self._spec
        current = observation.current_core_count
        if current is None:
            current = self.max_secondary(observation.total_cores)
        error = (spec.slo_p99 - p99) / spec.slo_p99
        dt = observation.poll_interval
        if dt > 0:
            self._integral += error * dt
            if spec.integral_limit:
                self._integral = max(
                    -spec.integral_limit, min(spec.integral_limit, self._integral)
                )
        derivative = 0.0
        if dt > 0 and self._previous_error is not None:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error
        control = spec.kp * error + spec.ki * self._integral + spec.kd * derivative
        step = int(round(control))
        if spec.max_step:
            step = max(-spec.max_step, min(spec.max_step, step))
        target = current + step
        target = max(
            spec.min_secondary_cores, min(self.max_secondary(observation.total_cores), target)
        )
        if target == current:
            return None
        return AllocationDecision(core_count=target)


def _capacity_target(
    total_cores: int,
    forecast_peak_qps: float,
    qps_per_core: float,
    headroom_cores: int,
    min_secondary_cores: int,
) -> int:
    """Cores left for the secondary after reserving for a QPS forecast."""
    needed = math.ceil(forecast_peak_qps / qps_per_core) + headroom_cores
    ceiling = max(min_secondary_cores, total_cores - headroom_cores)
    return max(min_secondary_cores, min(ceiling, total_cores - needed))


class ModelPredictivePolicy(_ObservationPolicy):
    """Sizes the secondary against the forecast peak over the next window.

    ``needed = ceil(peak / qps_per_core) + headroom`` cores are reserved for
    the primary; the secondary gets the remainder.  Without a forecast
    (no arrival model attached) the allocation holds.
    """

    name = "mpc"
    uses_forecast = True

    def __init__(self, spec: MpcControlSpec) -> None:
        self._spec = spec

    def forecast_horizon(self, poll_interval: float) -> float:
        return self._spec.horizon if self._spec.horizon > 0 else poll_interval

    def max_secondary(self, total_cores: int) -> int:
        return max(self._spec.min_secondary_cores, total_cores - self._spec.headroom_cores)

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(core_count=self.max_secondary(total_cores))

    def decide(self, observation: ControllerObservation) -> Optional[AllocationDecision]:
        peak = observation.forecast_peak_qps
        if peak is None:
            return None
        spec = self._spec
        target = _capacity_target(
            observation.total_cores,
            peak,
            spec.qps_per_core,
            spec.headroom_cores,
            spec.min_secondary_cores,
        )
        if target == observation.current_core_count:
            return None
        return AllocationDecision(core_count=target)


class UtilizationTargetPolicy(_ObservationPolicy):
    """Holds machine utilisation inside a deadband around a target.

    Utilisation above ``target + deadband`` shrinks the secondary by
    ``step_cores``; below ``target - deadband`` grows it.  Inside the
    deadband the allocation holds (no churn).
    """

    name = "utilization"

    def __init__(self, spec: UtilizationTargetSpec) -> None:
        self._spec = spec

    def max_secondary(self, total_cores: int) -> int:
        return max(self._spec.min_secondary_cores, total_cores - self._spec.reserve_cores)

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(core_count=self.max_secondary(total_cores))

    def decide(self, observation: ControllerObservation) -> Optional[AllocationDecision]:
        spec = self._spec
        current = observation.current_core_count
        if current is None:
            current = self.max_secondary(observation.total_cores)
        utilization = observation.utilization
        if utilization > spec.target_utilization + spec.deadband:
            target = current - spec.step_cores
        elif utilization < spec.target_utilization - spec.deadband:
            target = current + spec.step_cores
        else:
            return None
        target = max(
            spec.min_secondary_cores, min(self.max_secondary(observation.total_cores), target)
        )
        if target == current:
            return None
        return AllocationDecision(core_count=target)


class OraclePolicy(_ObservationPolicy):
    """Clairvoyant controller: reads the future arrival trace.

    Identical capacity arithmetic to :class:`ModelPredictivePolicy`, but the
    forecast window is ``lookahead`` seconds of the *actual* future rate
    curve, so the secondary shrinks before a spike lands.  An unrealisable
    upper bound for ranking the realisable controllers against.
    """

    name = "oracle"
    uses_forecast = True

    def __init__(self, spec: OracleControlSpec) -> None:
        self._spec = spec

    def forecast_horizon(self, poll_interval: float) -> float:
        return max(self._spec.lookahead, poll_interval)

    def max_secondary(self, total_cores: int) -> int:
        return max(self._spec.min_secondary_cores, total_cores - self._spec.headroom_cores)

    def initial_decision(self, total_cores: int) -> AllocationDecision:
        return AllocationDecision(core_count=self.max_secondary(total_cores))

    def decide(self, observation: ControllerObservation) -> Optional[AllocationDecision]:
        peak = observation.forecast_peak_qps
        if peak is None:
            return None
        spec = self._spec
        target = _capacity_target(
            observation.total_cores,
            peak,
            spec.qps_per_core,
            spec.headroom_cores,
            spec.min_secondary_cores,
        )
        if target == observation.current_core_count:
            return None
        return AllocationDecision(core_count=target)


_POLICY_CLASSES: Dict[str, Type[CpuIsolationPolicy]] = {
    "blind": BlindIsolationPolicy,
    "static_cores": StaticCoresPolicy,
    "cpu_cycles": CpuCyclesPolicy,
    "none": NoIsolationPolicy,
    "pid": PidPolicy,
    "mpc": ModelPredictivePolicy,
    "utilization": UtilizationTargetPolicy,
    "oracle": OraclePolicy,
}


def policy_class(cpu_policy: str) -> Type[CpuIsolationPolicy]:
    """The policy class named by ``cpu_policy`` (for capability inspection)."""
    try:
        return _POLICY_CLASSES[cpu_policy]
    except KeyError:
        raise IsolationError(f"unknown cpu policy {cpu_policy!r}") from None


def build_policy(
    cpu_policy: str,
    blind: Optional[BlindIsolationSpec] = None,
    static_cores: Optional[StaticCoreSpec] = None,
    cpu_cycles: Optional[CpuCycleSpec] = None,
    pid: Optional[PidControlSpec] = None,
    mpc: Optional[MpcControlSpec] = None,
    utilization: Optional[UtilizationTargetSpec] = None,
    oracle: Optional[OracleControlSpec] = None,
) -> CpuIsolationPolicy:
    """Construct the policy named by ``cpu_policy`` from its spec."""
    if cpu_policy == "blind":
        return BlindIsolationPolicy(blind if blind is not None else BlindIsolationSpec())
    if cpu_policy == "static_cores":
        return StaticCoresPolicy(static_cores if static_cores is not None else StaticCoreSpec())
    if cpu_policy == "cpu_cycles":
        return CpuCyclesPolicy(cpu_cycles if cpu_cycles is not None else CpuCycleSpec())
    if cpu_policy == "none":
        return NoIsolationPolicy()
    if cpu_policy == "pid":
        return PidPolicy(pid if pid is not None else PidControlSpec())
    if cpu_policy == "mpc":
        return ModelPredictivePolicy(mpc if mpc is not None else MpcControlSpec())
    if cpu_policy == "utilization":
        return UtilizationTargetPolicy(
            utilization if utilization is not None else UtilizationTargetSpec()
        )
    if cpu_policy == "oracle":
        return OraclePolicy(oracle if oracle is not None else OracleControlSpec())
    raise IsolationError(f"unknown cpu policy {cpu_policy!r}")


def policy_from_spec(spec) -> CpuIsolationPolicy:
    """Build the configured policy from a :class:`~repro.config.schema.PerfIsoSpec`."""
    return build_policy(
        spec.cpu_policy,
        blind=spec.blind,
        static_cores=spec.static_cores,
        cpu_cycles=spec.cpu_cycles,
        pid=spec.pid,
        mpc=spec.mpc,
        utilization=spec.utilization,
        oracle=spec.oracle,
    )
