"""Offline buffer-core profiling (Section 4.1).

Choosing the number of buffer cores requires a one-off measurement of the
primary under its provisioned peak load: how many worker threads can become
ready for execution within a very short window (the paper observes up to 15
threads in 5 microseconds, and settles on 8 buffer cores for its servers).

The profiler replays the primary's arrival and fan-out model at peak load and
builds the distribution of "threads becoming ready per window".  The
recommended buffer is a high percentile of that distribution — conservative
enough to absorb bursts, without reserving half the machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..config.schema import IndexServeSpec
from ..errors import IsolationError
from ..simulation.randomness import RandomStreams
from ..units import micros
from ..workloads.query_trace import QueryTrace

__all__ = ["BurstProfile", "BufferCoreProfiler"]


@dataclass(frozen=True)
class BurstProfile:
    """Distribution of ready-thread bursts observed during profiling."""

    window: float
    qps: float
    duration: float
    max_burst: int
    p50_burst: float
    p99_burst: float
    p999_burst: float
    recommended_buffer_cores: int
    histogram: Dict[int, int]


class BufferCoreProfiler:
    """Derives a buffer-core recommendation from the primary's burstiness."""

    def __init__(
        self,
        spec: IndexServeSpec,
        seed: int = 0,
        window: float = micros(5),
    ) -> None:
        if window <= 0:
            raise IsolationError("profiling window must be positive")
        self._spec = spec
        self._window = window
        self._streams = RandomStreams(seed)

    def profile(
        self,
        peak_qps: float = 4000.0,
        duration: float = 5.0,
        percentile: float = 99.0,
        minimum: int = 2,
    ) -> BurstProfile:
        """Replay ``duration`` seconds of peak-load arrivals and measure bursts.

        ``percentile`` selects how aggressive the recommendation is: the
        recommended buffer is the chosen percentile of the per-window burst
        size, never below ``minimum``.
        """
        if peak_qps <= 0 or duration <= 0:
            raise IsolationError("peak_qps and duration must be positive")
        rng = self._streams.stream("profiler")
        trace = QueryTrace(self._spec, size=min(20_000, max(1000, int(peak_qps * duration))),
                           rng=self._streams.stream("profiler-trace"))

        expected_arrivals = int(peak_qps * duration)
        gaps = rng.exponential(1.0 / peak_qps, size=expected_arrivals)
        arrival_times = np.cumsum(gaps)
        arrival_times = arrival_times[arrival_times < duration]

        # Every query wakes its whole worker pack essentially at once; two
        # queries landing in the same window compound.
        bursts: List[int] = []
        histogram: Dict[int, int] = {}
        trace_cycle = trace.cycle()
        window = self._window
        current_window_end = window
        current_burst = 0
        for arrival in arrival_times:
            workers = next(trace_cycle).worker_count
            if arrival <= current_window_end:
                current_burst += workers
            else:
                if current_burst > 0:
                    bursts.append(current_burst)
                    histogram[current_burst] = histogram.get(current_burst, 0) + 1
                current_window_end = (int(arrival / window) + 1) * window
                current_burst = workers
        if current_burst > 0:
            bursts.append(current_burst)
            histogram[current_burst] = histogram.get(current_burst, 0) + 1

        if not bursts:
            raise IsolationError("profiling produced no arrivals; increase qps or duration")
        burst_array = np.asarray(bursts, dtype=float)
        recommended = max(minimum, int(np.ceil(np.percentile(burst_array, percentile))))
        return BurstProfile(
            window=window,
            qps=peak_qps,
            duration=duration,
            max_burst=int(burst_array.max()),
            p50_burst=float(np.percentile(burst_array, 50.0)),
            p99_burst=float(np.percentile(burst_array, 99.0)),
            p999_burst=float(np.percentile(burst_array, 99.9)),
            recommended_buffer_cores=recommended,
            histogram=histogram,
        )
