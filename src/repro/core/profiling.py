"""Back-compat shim: the buffer-core profiler moved to
:mod:`repro.telemetry.profiling` when profiling was consolidated under the
telemetry subsystem.  Import from there in new code."""

from __future__ import annotations

from ..telemetry.profiling import BufferCoreProfiler, BurstProfile

__all__ = ["BurstProfile", "BufferCoreProfiler"]
