"""PerfIso itself: the controller, CPU policies and resource throttles."""

from .controller import PerfIsoController
from .io_throttle import DwrrIoThrottler, ProcessIoState
from .memory_guard import MemoryGuard
from .network_throttle import NetworkThrottle
from .policies import (
    AllocationDecision,
    BlindIsolationPolicy,
    ControllerObservation,
    CpuCyclesPolicy,
    CpuIsolationPolicy,
    ModelPredictivePolicy,
    NoIsolationPolicy,
    OraclePolicy,
    PidPolicy,
    StaticCoresPolicy,
    UtilizationTargetPolicy,
    build_policy,
    policy_class,
    policy_from_spec,
)
from .profiling import BufferCoreProfiler, BurstProfile

__all__ = [
    "PerfIsoController",
    "DwrrIoThrottler",
    "ProcessIoState",
    "MemoryGuard",
    "NetworkThrottle",
    "AllocationDecision",
    "BlindIsolationPolicy",
    "ControllerObservation",
    "CpuCyclesPolicy",
    "CpuIsolationPolicy",
    "ModelPredictivePolicy",
    "NoIsolationPolicy",
    "OraclePolicy",
    "PidPolicy",
    "StaticCoresPolicy",
    "UtilizationTargetPolicy",
    "build_policy",
    "policy_class",
    "policy_from_spec",
    "BufferCoreProfiler",
    "BurstProfile",
]
