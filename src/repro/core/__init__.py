"""PerfIso itself: the controller, CPU policies and resource throttles."""

from .controller import PerfIsoController
from .io_throttle import DwrrIoThrottler, ProcessIoState
from .memory_guard import MemoryGuard
from .network_throttle import NetworkThrottle
from .policies import (
    AllocationDecision,
    BlindIsolationPolicy,
    CpuCyclesPolicy,
    CpuIsolationPolicy,
    NoIsolationPolicy,
    StaticCoresPolicy,
    build_policy,
)
from .profiling import BufferCoreProfiler, BurstProfile

__all__ = [
    "PerfIsoController",
    "DwrrIoThrottler",
    "ProcessIoState",
    "MemoryGuard",
    "NetworkThrottle",
    "AllocationDecision",
    "BlindIsolationPolicy",
    "CpuCyclesPolicy",
    "CpuIsolationPolicy",
    "NoIsolationPolicy",
    "StaticCoresPolicy",
    "build_policy",
    "BufferCoreProfiler",
    "BurstProfile",
]
