"""The PerfIso user-mode controller service (Section 4).

The controller owns one job object holding every secondary-tenant process on
the machine and drives four mechanisms:

* the CPU isolation policy (blind isolation by default), fed by a tight poll
  loop over the idle-core syscall — polling is continuous, but the job object
  is only *updated* when the policy asks for a change (the poll/update split
  the paper emphasises, because pointless updates are themselves harmful);
* the DWRR disk I/O throttler;
* the memory guard;
* the egress network throttle.

It also implements the operational features the paper calls out for
production deployment: a kill switch that instantly removes every restriction
(debugging aid), full recoverability from a serialisable state snapshot, and
runtime reconfiguration from cluster-wide configuration pushes.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Dict, FrozenSet, List, Optional

from ..config.schema import PerfIsoSpec
from ..errors import IsolationError
from ..hostos.jobobject import JobObject
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from ..simulation.events import EventPriority
from ..tenants.base import SecondaryTenant
from .io_throttle import DwrrIoThrottler
from .memory_guard import MemoryGuard
from .network_throttle import NetworkThrottle
from .policies import (
    AllocationDecision,
    ControllerObservation,
    CpuIsolationPolicy,
    policy_from_spec,
)

__all__ = ["PerfIsoController"]


class PerfIsoController:
    """One machine's PerfIso service instance."""

    JOB_NAME = "perfiso-secondary"

    def __init__(
        self,
        kernel: Kernel,
        spec: Optional[PerfIsoSpec] = None,
        io_volume: str = "hdd",
    ) -> None:
        self._kernel = kernel
        self._spec = spec if spec is not None else PerfIsoSpec()
        self._job: JobObject = kernel.create_job_object(self.JOB_NAME)
        self._policy: CpuIsolationPolicy = policy_from_spec(self._spec)
        self._io_throttler = DwrrIoThrottler(kernel, self._spec.io_throttle, volume=io_volume)
        self._memory_guard = MemoryGuard(kernel, self._spec.memory_guard, self._job)
        self._network_throttle = NetworkThrottle(kernel, self._spec.network_throttle)
        self._enabled = self._spec.enabled
        self._running = False
        #: The pending poll event, cancelled on stop() so a stopped-then-
        #: restarted controller (crash recovery) cannot resurrect its old
        #: poll chain alongside the new one and poll at double rate.
        self._poll_event = None
        self._current_core_count: Optional[int] = None
        # Optional telemetry sources for observation-driven policies; polled
        # lazily and only for policies that declare the matching capability.
        self._forecast = None
        self._latency_window = None
        # Optional span tracer (telemetry subsystem).  None keeps _poll on
        # its untraced path; decisions and results are unaffected either way.
        self._tracer = None
        # statistics
        self.polls = 0
        self.updates_applied = 0
        self.core_count_history: List[int] = []

    # ------------------------------------------------------------ properties
    @property
    def spec(self) -> PerfIsoSpec:
        return self._spec

    @property
    def job(self) -> JobObject:
        return self._job

    @property
    def policy(self) -> CpuIsolationPolicy:
        return self._policy

    @property
    def io_throttler(self) -> DwrrIoThrottler:
        return self._io_throttler

    @property
    def memory_guard(self) -> MemoryGuard:
        return self._memory_guard

    @property
    def network_throttle(self) -> NetworkThrottle:
        return self._network_throttle

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def secondary_core_count(self) -> Optional[int]:
        """Number of cores the secondary may currently use (None = all)."""
        return self._current_core_count

    @property
    def secondary_affinity(self) -> Optional[FrozenSet[int]]:
        return self._job.cpu_affinity

    # ------------------------------------------------------------ membership
    def manage(self, tenant: SecondaryTenant) -> None:
        """Place a secondary tenant under PerfIso's job object."""
        tenant.attach_to_job(self._job)
        for process in tenant.processes():
            self._register_process(process)

    def manage_process(self, process: OsProcess) -> None:
        """Place a single secondary process under PerfIso's control."""
        if process.category == TenantCategory.PRIMARY:
            raise IsolationError("the primary tenant is never placed under PerfIso's job object")
        self._job.assign(process)
        self._register_process(process)

    def observe_primary(self, process: OsProcess) -> None:
        """Register the primary for I/O measurement (never restricted)."""
        self._io_throttler.register(process)

    def attach_telemetry(self, forecast=None, latency_window=None) -> None:
        """Connect optional telemetry for observation-driven policies.

        ``forecast`` is an :class:`~repro.workloads.arrival_models.ArrivalModel`
        (for ``uses_forecast`` policies); ``latency_window`` is a
        :class:`~repro.metrics.latency.SlidingLatencyWindow` fed by the
        experiment's collector (for ``uses_latency`` policies).  Attaching
        telemetry a policy does not read has no effect on its decisions.
        """
        if forecast is not None:
            self._forecast = forecast
        if latency_window is not None:
            self._latency_window = latency_window

    def attach_tracer(self, tracer) -> None:
        """Stream one ``controller.decide`` span per enabled poll to ``tracer``.

        Tracing is observational only: the policy sees the identical
        observation and its decision is applied identically, so traced and
        untraced runs produce the same simulation results.
        """
        self._tracer = tracer

    def _register_process(self, process: OsProcess) -> None:
        if self._spec.io_throttle.enabled:
            self._io_throttler.register(process)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Apply the initial policy and begin the poll loop."""
        if self._running:
            raise IsolationError("PerfIso controller started twice")
        self._running = True
        if self._enabled:
            self._apply(self._policy.initial_decision(self._kernel.logical_cores))
            self._io_throttler.start()
            self._memory_guard.start()
            self._network_throttle.start()
        self._poll_event = self._kernel.engine.schedule(
            self._spec.poll_interval, self._poll, priority=EventPriority.CONTROLLER
        )

    def stop(self) -> None:
        self._running = False
        self._kernel.engine.cancel(self._poll_event)
        self._poll_event = None
        self._io_throttler.stop()
        self._memory_guard.stop()
        self._network_throttle.stop()

    # ------------------------------------------------------------ kill switch
    def disable(self) -> None:
        """The kill switch: immediately lift every restriction (Section 4.2)."""
        self._enabled = False
        self._lift_restrictions()

    def _lift_restrictions(self) -> None:
        self._job.set_cpu_affinity(None)
        self._job.set_cpu_rate(None)
        self._current_core_count = None
        self._io_throttler.stop()
        self._io_throttler.clear_caps()
        self._memory_guard.stop()
        self._network_throttle.stop()

    def enable(self) -> None:
        """Re-enable isolation after the kill switch was used."""
        if self._enabled:
            return
        self._enabled = True
        self._apply(self._policy.initial_decision(self._kernel.logical_cores))
        if self._running:
            self._io_throttler.start()
            self._memory_guard.start()
            self._network_throttle.start()

    # -------------------------------------------------------- reconfiguration
    def update_spec(self, spec: PerfIsoSpec) -> None:
        """Apply a new cluster-wide configuration at runtime.

        Every mechanism is reconfigured, not just the CPU policy: the I/O
        throttler, memory guard and network throttle swap to their new
        sub-specs in place, and ``spec.enabled`` transitions act like the
        kill switch (a push with ``enabled=False`` lifts every restriction,
        a later push with ``enabled=True`` restores isolation).
        """
        was_enabled = self._enabled
        self._spec = spec
        self._policy = policy_from_spec(spec)
        self._io_throttler.update_spec(spec.io_throttle)
        self._memory_guard.update_spec(spec.memory_guard)
        self._network_throttle.update_spec(spec.network_throttle)
        self._enabled = spec.enabled
        if not self._running:
            return
        if self._enabled:
            self._apply(self._policy.initial_decision(self._kernel.logical_cores))
            self._io_throttler.start()
            self._memory_guard.start()
            self._network_throttle.start()
        elif was_enabled:
            self._lift_restrictions()

    def state_dict(self) -> Dict[str, object]:
        """Serialisable controller state, for crash recovery via Autopilot."""
        return {
            "enabled": self._enabled,
            "cpu_policy": self._spec.cpu_policy,
            "current_core_count": self._current_core_count,
            "cpu_rate": self._job.cpu_rate_fraction,
            "updates_applied": self.updates_applied,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Resume after a crash: re-apply the last known allocation.

        An enabled snapshot with neither a core count nor a CPU rate means
        the controller was deliberately unrestricted at crash time — the
        replacement must *lift* any restriction it already applied, not keep
        it.  A policy mismatch between the snapshot and this instance's
        configuration is tolerated with a warning: the snapshot allocation is
        restored verbatim, then future polls follow the configured policy.
        """
        snapshot_policy = state.get("cpu_policy")
        if snapshot_policy is not None and snapshot_policy != self._spec.cpu_policy:
            warnings.warn(
                f"controller snapshot was taken under cpu_policy={snapshot_policy!r} "
                f"but this instance is configured for {self._spec.cpu_policy!r}; "
                "restoring the snapshot allocation, then following the configured "
                "policy",
                RuntimeWarning,
                stacklevel=2,
            )
        self._enabled = bool(state.get("enabled", True))
        # Carry the update counter across the restart; a re-application
        # below then counts as one more genuine job-object update.
        self.updates_applied = int(state.get("updates_applied", self.updates_applied))
        if not self._enabled:
            # The kill switch was active at crash time: mirror it without
            # counting a job-object update (disable() semantics).
            self._job.set_cpu_affinity(None)
            self._job.set_cpu_rate(None)
            self._current_core_count = None
            return
        core_count = state.get("current_core_count")
        cpu_rate = state.get("cpu_rate")
        if core_count is not None:
            self._apply(AllocationDecision(core_count=int(core_count)))
        elif cpu_rate is not None:
            self._apply(AllocationDecision(cpu_rate=float(cpu_rate)))
        else:
            self._apply(AllocationDecision(unrestricted=True))

    # ------------------------------------------------------------- internals
    def _poll(self) -> None:
        if not self._running:
            return
        self.polls += 1
        if self._enabled:
            if self._tracer is None:
                decision = self._policy.decide(self._observe())
                if decision is not None:
                    self._apply(decision)
            else:
                self._traced_decide()
        self._poll_event = self._kernel.engine.schedule(
            self._spec.poll_interval, self._poll, priority=EventPriority.CONTROLLER
        )

    def _traced_decide(self) -> None:
        # One span per poll at millisecond cadence: emitted via record()
        # with explicit wall timing because the contextmanager span form's
        # generator machinery costs more than the decision itself, which
        # is what pushed telemetry overhead over its benchmark budget.
        # Neither decide() nor _apply() advances simulation time, so
        # record()'s sim_duration of 0.0 matches the traced block exactly.
        observation = self._observe()
        started_wall = _time.perf_counter()
        try:
            decision = self._policy.decide(observation)
            if decision is not None:
                self._apply(decision)
        except BaseException as exc:
            self._tracer.record(
                "controller.decide",
                wall_ms=(_time.perf_counter() - started_wall) * 1e3,
                status="error",
                policy=self._policy.name,
                idle_cores=observation.idle_cores,
                cores_before=observation.current_core_count,
                exception=type(exc).__name__,
            )
            raise
        self._tracer.record(
            "controller.decide",
            wall_ms=(_time.perf_counter() - started_wall) * 1e3,
            policy=self._policy.name,
            idle_cores=observation.idle_cores,
            cores_before=observation.current_core_count,
            decision=self._describe(decision),
        )

    @staticmethod
    def _describe(decision: Optional[AllocationDecision]) -> str:
        if decision is None:
            return "hold"
        if decision.unrestricted:
            return "unrestricted"
        if decision.cpu_rate is not None:
            return f"cpu_rate={decision.cpu_rate:.3f}"
        return f"cores={decision.core_count}"

    def _observe(self) -> ControllerObservation:
        """One poll's observation, gathering only what the policy reads."""
        policy = self._policy
        now = self._kernel.engine.now
        windowed_p99 = None
        if policy.uses_latency and self._latency_window is not None:
            windowed_p99 = self._latency_window.p99(now)
        forecast_peak = None
        if policy.uses_forecast and self._forecast is not None:
            horizon = policy.forecast_horizon(self._spec.poll_interval)
            forecast_peak = self._forecast.peak_in(now, now + horizon)
        return ControllerObservation(
            now=now,
            total_cores=self._kernel.logical_cores,
            idle_cores=self._kernel.idle_core_count(),
            current_core_count=self._current_core_count,
            poll_interval=self._spec.poll_interval,
            windowed_p99=windowed_p99,
            forecast_peak_qps=forecast_peak,
        )

    def _apply(self, decision: AllocationDecision) -> None:
        self.updates_applied += 1
        if decision.unrestricted:
            self._job.set_cpu_affinity(None)
            self._job.set_cpu_rate(None)
            self._current_core_count = None
            return
        if decision.cpu_rate is not None:
            self._job.set_cpu_affinity(None)
            self._job.set_cpu_rate(decision.cpu_rate)
            self._current_core_count = None
            return
        count = decision.core_count
        order = self._kernel.machine.topology.secondary_allocation_order()
        allowed = frozenset(order[:count])
        self._job.set_cpu_rate(None)
        self._job.set_cpu_affinity(allowed)
        self._current_core_count = count
        self.core_count_history.append(count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PerfIsoController(policy={self._policy.name}, enabled={self._enabled}, "
            f"cores={self._current_core_count})"
        )
