"""Fleet-level fault timelines and the fault-injecting configuration store.

The fleet tier is analytic, so machine faults are folded into the shard math
rather than simulated: a :class:`FleetFaultTimeline` draws every machine's
crash/restart episodes and straggler membership *once* per run (keyed by the
spec seed and the machine's global identity, so the timeline is byte-identical
at any worker count or shard partition), and :meth:`FleetFaultTimeline.shard_plan`
slices it into the small, picklable :class:`ShardFaultPlan` each shard task
carries.  Sampled (hyperscale) mode needs no extra randomness: unsampled
machines' closed-form histogram contributions are corrected with the *exact*
per-bucket count of up/degraded unsampled machines from the same timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..config.schema import ConfigPushFaultSpec, FaultPlanSpec, FleetSpec
from ..errors import ConfigPushError
from .schedule import fault_rng, machine_crash_episodes, machine_is_degraded

__all__ = [
    "FaultyConfigStore",
    "FleetFaultTimeline",
    "ShardFaultPlan",
    "fleet_fault_horizon",
]


def fleet_fault_horizon(spec: FleetSpec) -> float:
    """A spec-only upper bound on the simulated time a fleet run can reach.

    Stage retries extend a faulty run past the nominal bucket count, so crash
    schedules are drawn out to the worst case the rollout spec allows — every
    stage burning all its attempts at the capped backoff.  Deriving the
    horizon from the spec alone (never from guardrail outcomes) keeps the
    timeline a pure function of the configuration.
    """
    rollout = spec.rollout
    per_stage = rollout.stage_attempts * (
        rollout.stage_buckets + rollout.retry_backoff_cap_buckets
    )
    buckets = rollout.bake_buckets + len(rollout.stage_fractions) * per_stage
    return buckets * spec.bucket_seconds


@dataclass(frozen=True)
class ShardFaultPlan:
    """One shard task's fault timeline over its bucket window (picklable).

    All machine references are shard-relative positions; a machine counts as
    down for a bucket when a crash episode covers the bucket's midpoint.
    """

    #: Per bucket offset: positions down during that bucket.
    down: Tuple[Tuple[int, ...], ...]
    #: Positions that straggle whenever the degraded window is active.
    degraded: Tuple[int, ...]
    #: Latency multiplier for degraded machines in degraded buckets.
    slowdown: float
    #: Bucket offsets covered by the degraded window.
    degraded_buckets: Tuple[int, ...]

    @property
    def is_noop(self) -> bool:
        return not any(self.down) and not (self.degraded and self.degraded_buckets)


class FleetFaultTimeline:
    """Absolute-time machine fault timelines for one fleet run.

    Built once per run from the fault plan; every per-machine draw is keyed
    by ``(seed, group name, global machine index)``, so the same spec yields
    the same timeline in every process regardless of sharding.
    """

    def __init__(self, plan: FaultPlanSpec, spec: FleetSpec) -> None:
        self._plan = plan
        self.horizon = fleet_fault_horizon(spec)
        self._episodes: Dict[Tuple[str, int], Tuple[Tuple[float, float], ...]] = {}
        self._degraded: Dict[str, FrozenSet[int]] = {}
        machines = plan.machines
        degraded = plan.degraded
        for group in spec.groups:
            if machines is not None and machines.enabled:
                for index in range(group.machines):
                    episodes = machine_crash_episodes(
                        machines,
                        seed=spec.seed,
                        group=group.name,
                        machine_index=index,
                        horizon=self.horizon,
                    )
                    if episodes:
                        self._episodes[(group.name, index)] = episodes
            if degraded is not None and degraded.enabled:
                self._degraded[group.name] = frozenset(
                    index
                    for index in range(group.machines)
                    if machine_is_degraded(
                        degraded, seed=spec.seed, group=group.name, machine_index=index
                    )
                )

    # -------------------------------------------------------------- queries
    @property
    def plan(self) -> FaultPlanSpec:
        return self._plan

    def crashing_machines(self) -> int:
        """Machines with at least one crash episode inside the horizon."""
        return len(self._episodes)

    def degraded_machines(self) -> int:
        return sum(len(members) for members in self._degraded.values())

    def down_at(self, group: str, machine_index: int, time: float) -> bool:
        episodes = self._episodes.get((group, machine_index))
        if not episodes:
            return False
        return any(start <= time < end for start, end in episodes)

    def shard_plan(
        self,
        *,
        group: str,
        start: int,
        stop: int,
        start_time: float,
        bucket_seconds: float,
        buckets: int,
    ) -> Optional[ShardFaultPlan]:
        """The fault plan for machines ``[start, stop)`` of ``group`` across
        ``buckets`` buckets beginning at absolute time ``start_time``, or
        ``None`` when nothing in the window affects this shard."""
        count = stop - start
        down = []
        for bucket in range(buckets):
            midpoint = start_time + (bucket + 0.5) * bucket_seconds
            down.append(
                tuple(
                    local
                    for local in range(count)
                    if self.down_at(group, start + local, midpoint)
                )
            )
        degraded_spec = self._plan.degraded
        degraded_positions: Tuple[int, ...] = ()
        degraded_buckets: Tuple[int, ...] = ()
        if degraded_spec is not None and degraded_spec.enabled:
            degraded_buckets = tuple(
                bucket
                for bucket in range(buckets)
                if degraded_spec.start
                <= start_time + (bucket + 0.5) * bucket_seconds
                < degraded_spec.end
            )
            if degraded_buckets:
                members = self._degraded.get(group, frozenset())
                degraded_positions = tuple(
                    local for local in range(count) if start + local in members
                )
        plan = ShardFaultPlan(
            down=tuple(down),
            degraded=degraded_positions,
            slowdown=degraded_spec.slowdown if degraded_spec is not None else 1.0,
            degraded_buckets=degraded_buckets,
        )
        return None if plan.is_noop else plan


class FaultyConfigStore:
    """A ConfigStore wrapper whose pushes fail transiently and deterministically.

    Each ``publish``/``rollback`` attempt independently fails with the spec's
    ``failure_rate`` (drawn from the faults stream keyed by the attempt
    ordinal), raising :class:`~repro.errors.ConfigPushError` instead of
    reaching the store, up to ``max_failures`` injected failures in total.
    Everything else delegates to the wrapped store, which remains the source
    of truth for versions and history.
    """

    def __init__(self, store, spec: ConfigPushFaultSpec, *, seed: int) -> None:
        self._store = store
        self._spec = spec
        self._seed = seed
        self._attempts = 0
        self.injected_failures = 0

    @property
    def store(self):
        return self._store

    def publish(self, name: str, spec: object) -> int:
        self._maybe_fail("publish", name)
        return self._store.publish(name, spec)

    def rollback(self, name: str, version: Optional[int] = None) -> int:
        self._maybe_fail("rollback", name)
        return self._store.rollback(name, version)

    def _maybe_fail(self, operation: str, name: str) -> None:
        self._attempts += 1
        if self.injected_failures >= self._spec.max_failures:
            return
        rng = fault_rng("config-push", self._seed, self._attempts)
        if rng.random() < self._spec.failure_rate:
            self.injected_failures += 1
            raise ConfigPushError(
                f"injected transient failure on {operation} of {name!r} "
                f"(attempt {self._attempts})"
            )

    def __getattr__(self, attr: str):
        return getattr(self._store, attr)
