"""Deterministic fault injection for the PerfIso reproduction.

The paper's production story is not "nothing ever failed": machines crash
mid-rollout, cores degrade, telemetry pipelines stall, and the controller
itself gets restarted by Autopilot.  This package turns those events into
*declared, reproducible* parts of an experiment: a
:class:`~repro.config.schema.FaultPlanSpec` on an ``ExperimentSpec`` or
``FleetSpec`` describes the fault timeline, and every schedule is drawn from
the named ``"faults"`` random stream — so fault schedules are a pure function
of the spec (byte-identical at any worker count) and enabling faults cannot
perturb any other component's random draws.

Layering:

* :mod:`repro.faults.schedule` — the deterministic draws themselves (crash
  episodes, straggler membership), a leaf module shared by both tiers;
* :mod:`repro.faults.injector` — engine-level injection for single-machine
  experiments (degraded cores, telemetry dropout, controller crash/recovery);
* :mod:`repro.faults.fleet` — fleet-level timelines folded into the analytic
  shard math, plus the fault-injecting configuration store.
"""

from .fleet import (
    FaultyConfigStore,
    FleetFaultTimeline,
    ShardFaultPlan,
    fleet_fault_horizon,
)
from .injector import (
    DegradedForecast,
    DegradedLatencyWindow,
    SingleMachineFaultInjector,
)
from .schedule import (
    FAULTS_STREAM,
    expected_availability,
    fault_rng,
    fault_seed,
    machine_crash_episodes,
    machine_is_degraded,
)

__all__ = [
    "FAULTS_STREAM",
    "DegradedForecast",
    "DegradedLatencyWindow",
    "FaultyConfigStore",
    "FleetFaultTimeline",
    "ShardFaultPlan",
    "SingleMachineFaultInjector",
    "expected_availability",
    "fault_rng",
    "fault_seed",
    "fleet_fault_horizon",
    "machine_crash_episodes",
    "machine_is_degraded",
]
