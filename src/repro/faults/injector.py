"""Engine-level fault injection for single-machine experiments.

Faults are ordinary scheduled events: the injector translates a
:class:`~repro.config.schema.FaultPlanSpec` into engine callbacks at the
declared times, each acting through a seam the healthy path already has —
the scheduler's dispatch-rate factor for degraded cores, the controller's
telemetry attachment for dropout/staleness, and the controller's own
``stop()``/``start()``/``restore_state()`` lifecycle for crash recovery.
A disabled plan schedules nothing, so the zero-fault path is untouched.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..config.schema import FaultPlanSpec
from ..simulation.events import EventPriority

__all__ = [
    "DegradedForecast",
    "DegradedLatencyWindow",
    "SingleMachineFaultInjector",
]


class DegradedLatencyWindow:
    """Telemetry-fault proxy over a sliding latency window.

    The controller reads ``p99(now)`` through this proxy; the real window
    keeps receiving every observation from the collector.  In ``"missing"``
    mode reads return ``None`` (the metrics feed dropped); in ``"frozen"``
    mode they return the last value served while healthy (a stale cache that
    keeps answering).  Policies already treat ``None`` as "no data: hold".
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._mode = "ok"
        self._last_good: Optional[float] = None

    @property
    def mode(self) -> str:
        return self._mode

    def set_mode(self, mode: str) -> None:
        self._mode = mode

    def p99(self, now: float) -> Optional[float]:
        if self._mode == "missing":
            return None
        if self._mode == "frozen":
            return self._last_good
        value = self._inner.p99(now)
        if value is not None:
            self._last_good = value
        return value

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class DegradedForecast:
    """Telemetry-fault proxy over an arrival-model forecast (``peak_in``)."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self._mode = "ok"
        self._last_good: Optional[float] = None

    @property
    def mode(self) -> str:
        return self._mode

    def set_mode(self, mode: str) -> None:
        self._mode = mode

    def peak_in(self, start: float, end: float) -> Optional[float]:
        if self._mode == "missing":
            return None
        if self._mode == "frozen":
            return self._last_good
        value = self._inner.peak_in(start, end)
        if value is not None:
            self._last_good = value
        return value

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


class SingleMachineFaultInjector:
    """Schedules one experiment's fault plan as engine events.

    ``install()`` must run before ``engine.run``; every fault window was
    validated to open inside the experiment, so all events schedule cleanly.
    The injector records what it did in ``events`` (``(time, description)``
    pairs) for the experiment harness to surface in result extras.
    """

    def __init__(
        self,
        plan: FaultPlanSpec,
        *,
        engine,
        kernel,
        controller=None,
        latency_proxy: Optional[DegradedLatencyWindow] = None,
        forecast_proxy: Optional[DegradedForecast] = None,
    ) -> None:
        self._plan = plan
        self._engine = engine
        self._kernel = kernel
        self._controller = controller
        self._latency_proxy = latency_proxy
        self._forecast_proxy = forecast_proxy
        self._checkpoint: Optional[dict] = None
        self.events: List[Tuple[float, str]] = []
        self.controller_restarts = 0

    # ------------------------------------------------------------- lifecycle
    def install(self) -> None:
        """Schedule every enabled fault's events on the engine."""
        degraded = self._plan.degraded
        if degraded is not None and degraded.enabled:
            self._engine.schedule_at(
                degraded.start,
                self._degrade_start,
                priority=EventPriority.KERNEL,
            )
            self._engine.schedule_at(
                degraded.end, self._degrade_end, priority=EventPriority.KERNEL
            )
        telemetry = self._plan.telemetry
        if telemetry is not None and telemetry.enabled:
            # KERNEL priority: the mode flips before any same-instant
            # controller poll observes, so the window boundary is crisp.
            self._engine.schedule_at(
                telemetry.start,
                self._telemetry_start,
                priority=EventPriority.KERNEL,
            )
            self._engine.schedule_at(
                telemetry.end, self._telemetry_end, priority=EventPriority.KERNEL
            )
        crash = self._plan.controller_crash
        if crash is not None and crash.enabled and self._controller is not None:
            # Periodic checkpoints up to the crash: recovery restores the
            # *last checkpoint*, not the state at the instant of the crash.
            tick = crash.checkpoint_interval
            while tick < crash.at:
                self._engine.schedule_at(
                    tick, self._checkpoint_controller, priority=EventPriority.MEASUREMENT
                )
                tick += crash.checkpoint_interval
            self._engine.schedule_at(
                crash.at, self._crash_controller, priority=EventPriority.KERNEL
            )
            self._engine.schedule_at(
                crash.at + crash.recovery_delay,
                self._recover_controller,
                priority=EventPriority.KERNEL,
            )

    # --------------------------------------------------------- degraded cores
    def _degrade_start(self) -> None:
        slowdown = self._plan.degraded.slowdown
        self._kernel.scheduler.set_speed_factor(1.0 / slowdown)
        self._record(f"cores degraded: {slowdown:g}x slowdown")

    def _degrade_end(self) -> None:
        self._kernel.scheduler.set_speed_factor(None)
        self._record("cores recovered: full speed")

    # ------------------------------------------------------- telemetry faults
    def _telemetry_start(self) -> None:
        mode = self._plan.telemetry.mode
        for proxy in (self._latency_proxy, self._forecast_proxy):
            if proxy is not None:
                proxy.set_mode(mode)
        self._record(f"telemetry {mode}")

    def _telemetry_end(self) -> None:
        for proxy in (self._latency_proxy, self._forecast_proxy):
            if proxy is not None:
                proxy.set_mode("ok")
        self._record("telemetry restored")

    # ------------------------------------------------- controller crash cycle
    def _checkpoint_controller(self) -> None:
        self._checkpoint = dict(self._controller.state_dict())

    def _crash_controller(self) -> None:
        self._controller.stop()
        self._record("controller crashed")

    def _recover_controller(self) -> None:
        self._controller.start()
        if self._checkpoint is not None:
            self._controller.restore_state(dict(self._checkpoint))
        self.controller_restarts += 1
        self._record("controller recovered from checkpoint")

    # --------------------------------------------------------------- internals
    def _record(self, description: str) -> None:
        self.events.append((float(self._engine.now), description))
