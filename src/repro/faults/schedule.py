"""Deterministic fault schedules, drawn from the named ``"faults"`` stream.

Every draw here is keyed by a cryptographic digest of
``("faults", purpose, seed, ...identity parts)`` — the same construction as
:func:`repro.fleet.model.stable_seed`, with the stream name as the leading
part so fault draws can never collide with any other subsystem's seeds.  A
machine's crash schedule therefore depends only on the spec's seed and the
machine's identity (group name + index), never on worker count, shard
partition, or which other faults are enabled.

This module is a deliberate leaf: it imports only the config schema and
numpy, so both the simulation tier (:mod:`repro.faults.injector`) and the
fleet tier (:mod:`repro.faults.fleet`) can share it without import cycles.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

import numpy as np

from ..config.schema import DegradedCoreSpec, MachineFaultSpec

__all__ = [
    "FAULTS_STREAM",
    "fault_seed",
    "fault_rng",
    "machine_crash_episodes",
    "machine_is_degraded",
    "expected_availability",
]

#: The reserved stream name.  All fault randomness hangs off this prefix.
FAULTS_STREAM = "faults"


def fault_seed(*parts: object) -> int:
    """A process-independent integer seed for one fault draw.

    Mirrors :func:`repro.fleet.model.stable_seed` (sha256 of the parts'
    reprs) with :data:`FAULTS_STREAM` prepended, so a fault schedule is a
    pure function of the identifying parts and disjoint from every other
    stream in the library.
    """
    text = "\x1f".join(repr(part) for part in (FAULTS_STREAM, *parts))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def fault_rng(*parts: object) -> np.random.Generator:
    """A fresh generator seeded by :func:`fault_seed` of ``parts``."""
    return np.random.default_rng(fault_seed(*parts))


def machine_crash_episodes(
    spec: MachineFaultSpec,
    *,
    seed: int,
    group: str,
    machine_index: int,
    horizon: float,
) -> Tuple[Tuple[float, float], ...]:
    """One machine's crash/restart episodes as ``((down_at, up_at), ...)``.

    Crashes arrive as a Poisson process at ``crash_rate_per_hour`` while the
    machine is up; each outage lasts an exponential downtime with mean
    ``mean_downtime`` seconds.  Episodes are drawn sequentially from the
    machine's own stream, so truncating at a longer ``horizon`` only ever
    *appends* episodes — the schedule up to any time t is identical for
    every horizon >= t.  At most ``max_crashes`` episodes are drawn.

    Episodes are half-open intervals and may extend past ``horizon``; callers
    clamp as needed.  An empty tuple means the machine never crashes.
    """
    if not spec.enabled or horizon <= 0.0:
        return ()
    rng = fault_rng("machine-crash", seed, group, machine_index)
    mean_gap = 3600.0 / spec.crash_rate_per_hour
    episodes = []
    clock = 0.0
    for _ in range(spec.max_crashes):
        clock += float(rng.exponential(mean_gap))
        if clock >= horizon:
            break
        downtime = float(rng.exponential(spec.mean_downtime))
        episodes.append((clock, clock + downtime))
        clock += downtime
    return tuple(episodes)


def machine_is_degraded(
    spec: DegradedCoreSpec, *, seed: int, group: str, machine_index: int
) -> bool:
    """Whether one machine straggles during the degraded-core window.

    An independent Bernoulli(``fraction_of_machines``) draw per machine from
    its own fault stream: deterministic per spec, independent of sharding.
    """
    if not spec.enabled:
        return False
    rng = fault_rng("degraded-core", seed, group, machine_index)
    return bool(rng.random() < spec.fraction_of_machines)


def expected_availability(spec: MachineFaultSpec) -> float:
    """Steady-state fraction of time a machine is up under ``spec``.

    With crashes arriving at rate lambda (per second of uptime) and mean
    downtime D, the renewal cycle is ``1/lambda`` up followed by ``D`` down:
    availability ``= 1 / (1 + lambda * D)``.  Used for sanity checks and
    documentation; the fleet tier uses the *exact* drawn schedules, which
    converge on this value in expectation.
    """
    if not spec.enabled:
        return 1.0
    rate_per_s = spec.crash_rate_per_hour / 3600.0
    return 1.0 / (1.0 + rate_per_s * spec.mean_downtime)
