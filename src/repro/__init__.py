"""PerfIso reproduction: performance isolation for latency-sensitive services.

This package reproduces, in simulation, the system described in
"PerfIso: Performance Isolation for Commercial Latency-Sensitive Services"
(Iorgulescu et al., USENIX ATC 2018): a user-mode controller that colocates
best-effort batch jobs with a latency-sensitive service by keeping a buffer
of idle cores at all times (*CPU blind isolation*), plus disk, memory and
network safeguards.

The public API is organised in layers:

* :mod:`repro.simulation`, :mod:`repro.hardware`, :mod:`repro.hostos` — the
  substrate: a discrete-event kernel, the machine model and a simulated OS.
* :mod:`repro.tenants`, :mod:`repro.workloads` — the primary (IndexServe-like)
  service, batch-job secondaries and load generation.
* :mod:`repro.core` — PerfIso itself: the controller, CPU blind isolation and
  the alternative policies, DWRR I/O throttling, memory and network guards.
* :mod:`repro.cluster` — the multi-machine serving topology (TLA/MLA fan-out).
* :mod:`repro.experiments`, :mod:`repro.metrics` — the harnesses reproducing
  every figure of the paper's evaluation.
* :mod:`repro.runtime` — the parallel experiment runtime: process fan-out
  over ``ExperimentSpec`` batches plus a content-addressed result cache.
* :mod:`repro.fleet` — fleet operations: staged PerfIso rollout, secondary
  placement and capacity-reclamation accounting over sharded execution.
"""

from .config.schema import ExperimentSpec, FleetSpec, PerfIsoSpec
from .core.controller import PerfIsoController
from .core.policies import (
    AllocationDecision,
    BlindIsolationPolicy,
    CpuCyclesPolicy,
    NoIsolationPolicy,
    StaticCoresPolicy,
)
from .experiments.matrix import MatrixResult, Scenario, run_matrix, run_scenario
from .experiments.single_machine import SingleMachineExperiment, SingleMachineResult
from .fleet.simulate import FleetSimulation
from .runtime import ExperimentRunner, ExperimentTask, ResultCache

__version__ = "1.8.0"

__all__ = [
    "FleetSimulation",
    "FleetSpec",
    "MatrixResult",
    "Scenario",
    "run_matrix",
    "run_scenario",
    "ExperimentRunner",
    "ExperimentTask",
    "ResultCache",
    "ExperimentSpec",
    "PerfIsoSpec",
    "PerfIsoController",
    "AllocationDecision",
    "BlindIsolationPolicy",
    "CpuCyclesPolicy",
    "NoIsolationPolicy",
    "StaticCoresPolicy",
    "SingleMachineExperiment",
    "SingleMachineResult",
    "__version__",
]
