"""Network interface with priority-aware egress scheduling.

PerfIso throttles the *outbound* traffic of the secondary and marks it
low-priority so the primary's responses are never queued behind bulk batch
traffic (Section 3.2).  The model is a single transmit link shared by a
high-priority queue (primary) and a low-priority queue (secondary), plus an
optional token-bucket rate cap applied to the low-priority class.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..config.schema import NicSpec
from ..errors import ResourceError
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority

__all__ = ["NetworkInterface"]


class NetworkInterface:
    """Egress link of one machine."""

    HIGH = "high"
    LOW = "low"

    def __init__(self, engine: SimulationEngine, spec: NicSpec) -> None:
        self._engine = engine
        self._spec = spec
        self._busy = False
        self._queues: Dict[str, Deque[Tuple[str, int, Optional[Callable[[], None]]]]] = {
            self.HIGH: deque(),
            self.LOW: deque(),
        }
        # Token bucket for the low-priority class; None means uncapped.
        self._low_rate_limit: Optional[float] = None
        self._low_tokens = 0.0
        self._low_last_refill = 0.0
        # statistics
        self.bytes_sent: Dict[str, int] = {}
        self.packets_sent: Dict[str, int] = {}
        self.busy_time = 0.0

    @property
    def spec(self) -> NicSpec:
        return self._spec

    @property
    def queued_packets(self) -> int:
        return len(self._queues[self.HIGH]) + len(self._queues[self.LOW])

    def set_low_priority_rate_limit(self, bytes_per_second: Optional[float]) -> None:
        """Cap the low-priority (secondary) egress rate; ``None`` removes it."""
        if bytes_per_second is not None and bytes_per_second <= 0:
            raise ResourceError("egress rate limit must be positive or None")
        self._low_rate_limit = bytes_per_second
        self._low_tokens = 0.0
        self._low_last_refill = self._engine.now

    def send(
        self,
        owner: str,
        size_bytes: int,
        *,
        priority: str = HIGH,
        callback: Optional[Callable[[], None]] = None,
    ) -> None:
        """Queue ``size_bytes`` for transmission on behalf of ``owner``."""
        if priority not in (self.HIGH, self.LOW):
            raise ResourceError(f"priority must be 'high' or 'low', got {priority!r}")
        if size_bytes <= 0:
            raise ResourceError("packet size must be positive")
        self._queues[priority].append((owner, int(size_bytes), callback))
        if not self._busy:
            self._transmit_next()

    # ------------------------------------------------------------- internals
    def _refill_low_tokens(self) -> None:
        if self._low_rate_limit is None:
            return
        now = self._engine.now
        elapsed = now - self._low_last_refill
        self._low_last_refill = now
        # Debt-based bucket: sending a packet may push the balance negative;
        # the class is then paused until the balance recovers to zero.  The
        # positive balance is capped at 50 ms of burst so idle periods do not
        # accumulate unbounded credit.
        burst = self._low_rate_limit * 0.05
        self._low_tokens = min(burst, self._low_tokens + elapsed * self._low_rate_limit)

    def _transmit_next(self) -> None:
        queue_name = None
        if self._queues[self.HIGH]:
            queue_name = self.HIGH
        elif self._queues[self.LOW]:
            self._refill_low_tokens()
            if self._low_rate_limit is None or self._low_tokens >= 0:
                queue_name = self.LOW
            else:
                # In debt: wait until the balance recovers to zero.
                delay = -self._low_tokens / self._low_rate_limit
                self._busy = True
                self._engine.schedule(
                    delay, self._resume_after_throttle, priority=EventPriority.HARDWARE
                )
                return
        if queue_name is None:
            self._busy = False
            return
        owner, size_bytes, callback = self._queues[queue_name].popleft()
        if queue_name == self.LOW and self._low_rate_limit is not None:
            self._low_tokens -= size_bytes
        self._busy = True
        duration = self._spec.base_latency + size_bytes / self._spec.bandwidth_bytes_per_s
        self.busy_time += duration
        self.bytes_sent[owner] = self.bytes_sent.get(owner, 0) + size_bytes
        self.packets_sent[owner] = self.packets_sent.get(owner, 0) + 1
        self._engine.schedule(
            duration, self._transmit_done, callback, priority=EventPriority.HARDWARE
        )

    def _resume_after_throttle(self) -> None:
        self._busy = False
        self._transmit_next()

    def _transmit_done(self, callback: Optional[Callable[[], None]]) -> None:
        self._busy = False
        if callback is not None:
            callback()
        self._transmit_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkInterface(queued={self.queued_packets}, busy={self._busy})"
