"""The machine: topology, memory, storage volumes and NIC in one container.

A :class:`Machine` is pure hardware — it has no notion of threads or
scheduling.  The simulated operating system (:mod:`repro.hostos`) is built on
top of a machine and is what tenants and PerfIso interact with.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..config.schema import MachineSpec
from ..errors import ResourceError
from ..simulation.engine import SimulationEngine
from .disk import StripedVolume, jitter_source
from .memory import MemorySubsystem
from .nic import NetworkInterface
from .topology import CpuTopology

__all__ = ["Machine"]


class Machine:
    """One server of the production fleet (Section 5.2 hardware)."""

    def __init__(
        self,
        engine: SimulationEngine,
        spec: MachineSpec,
        name: str = "machine-0",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._engine = engine
        self._spec = spec
        self._name = name
        self.topology = CpuTopology.from_spec(spec)
        self.memory = MemorySubsystem(spec.memory_bytes)
        # One batched jitter source spans both volumes so service-time draws
        # keep the exact machine-wide ordering of per-request draws.
        jitter = None if rng is None else jitter_source(rng)
        self.volumes: Dict[str, StripedVolume] = {
            spec.ssd_volume.name: StripedVolume(engine, spec.ssd_volume, rng, jitter=jitter),
            spec.hdd_volume.name: StripedVolume(engine, spec.hdd_volume, rng, jitter=jitter),
        }
        self.nic = NetworkInterface(engine, spec.nic)

    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    @property
    def spec(self) -> MachineSpec:
        return self._spec

    @property
    def name(self) -> str:
        return self._name

    @property
    def logical_cores(self) -> int:
        return self.topology.logical_core_count

    def volume(self, name: str) -> StripedVolume:
        """Look up a volume by name ('ssd' or 'hdd' with default specs)."""
        try:
            return self.volumes[name]
        except KeyError:
            raise ResourceError(
                f"machine {self._name!r} has no volume {name!r}; "
                f"available: {sorted(self.volumes)}"
            ) from None

    @property
    def ssd(self) -> StripedVolume:
        return self.volume(self._spec.ssd_volume.name)

    @property
    def hdd(self) -> StripedVolume:
        return self.volume(self._spec.hdd_volume.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self._name!r}, cores={self.logical_cores})"
