"""Hardware substrate: CPU topology, memory, disks, NIC and the machine."""

from .disk import DiskDevice, IoRequest, StripedVolume
from .machine import Machine
from .memory import MemorySubsystem
from .nic import NetworkInterface
from .topology import CpuTopology, LogicalCoreInfo

__all__ = [
    "DiskDevice",
    "IoRequest",
    "StripedVolume",
    "Machine",
    "MemorySubsystem",
    "NetworkInterface",
    "CpuTopology",
    "LogicalCoreInfo",
]
