"""Physical memory accounting.

PerfIso's memory management (Section 3.2) is deliberately simple: the primary
has a fixed working set that must always fit, the secondary's footprint is
capped, and when free memory gets very low the secondary is killed.  The
model below therefore tracks allocations per owner without simulating paging.
"""

from __future__ import annotations

from typing import Dict

from ..errors import ResourceError

__all__ = ["MemorySubsystem"]


class MemorySubsystem:
    """Tracks per-owner physical memory reservations on one machine."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ResourceError("memory capacity must be positive")
        self._capacity = int(capacity_bytes)
        self._allocations: Dict[str, int] = {}

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self._capacity - self.used_bytes

    def usage_of(self, owner: str) -> int:
        """Bytes currently reserved by ``owner`` (0 if unknown)."""
        return self._allocations.get(owner, 0)

    def owners(self) -> Dict[str, int]:
        """Snapshot of every owner's reservation."""
        return dict(self._allocations)

    def allocate(self, owner: str, size_bytes: int, *, allow_overcommit: bool = False) -> None:
        """Reserve ``size_bytes`` for ``owner``.

        Raises :class:`ResourceError` when the machine does not have enough
        free memory, unless ``allow_overcommit`` is set (used by tests that
        exercise the memory guard's kill path).
        """
        if size_bytes < 0:
            raise ResourceError("cannot allocate a negative amount of memory")
        if not allow_overcommit and size_bytes > self.free_bytes:
            raise ResourceError(
                f"allocation of {size_bytes} B for {owner!r} exceeds free memory "
                f"({self.free_bytes} B)"
            )
        self._allocations[owner] = self._allocations.get(owner, 0) + int(size_bytes)

    def release(self, owner: str, size_bytes: int) -> None:
        """Release ``size_bytes`` previously reserved by ``owner``."""
        current = self._allocations.get(owner, 0)
        if size_bytes < 0 or size_bytes > current:
            raise ResourceError(
                f"{owner!r} cannot release {size_bytes} B (holds {current} B)"
            )
        remaining = current - int(size_bytes)
        if remaining:
            self._allocations[owner] = remaining
        else:
            self._allocations.pop(owner, None)

    def release_all(self, owner: str) -> int:
        """Release everything held by ``owner`` and return the amount freed."""
        return self._allocations.pop(owner, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemorySubsystem(used={self.used_bytes}/{self._capacity})"
