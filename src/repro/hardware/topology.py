"""CPU topology: sockets, physical cores and hyper-threaded logical cores.

The paper's servers have two 12-core sockets with hyper-threading, giving 48
logical cores.  PerfIso operates purely on logical core ids (its idle-core
mask is a bitmask of logical processors), but the topology is still modelled
explicitly so core allocation policies can prefer to hand whole physical
cores to the secondary, and so tests can reason about sibling relationships.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..config.schema import MachineSpec
from ..errors import ConfigError

__all__ = ["LogicalCoreInfo", "CpuTopology"]


@dataclass(frozen=True)
class LogicalCoreInfo:
    """Static identity of one logical core."""

    core_id: int
    socket: int
    physical_core: int
    smt_index: int

    @property
    def is_primary_sibling(self) -> bool:
        """True for the first hyper-thread of each physical core."""
        return self.smt_index == 0


class CpuTopology:
    """Socket / physical-core / logical-core layout of one machine."""

    def __init__(self, sockets: int, cores_per_socket: int, threads_per_core: int) -> None:
        if sockets < 1 or cores_per_socket < 1 or threads_per_core < 1:
            raise ConfigError("topology dimensions must all be >= 1")
        self._sockets = sockets
        self._cores_per_socket = cores_per_socket
        self._threads_per_core = threads_per_core
        self._cores: List[LogicalCoreInfo] = []
        core_id = 0
        for socket in range(sockets):
            for physical in range(cores_per_socket):
                for smt in range(threads_per_core):
                    self._cores.append(
                        LogicalCoreInfo(
                            core_id=core_id,
                            socket=socket,
                            physical_core=socket * cores_per_socket + physical,
                            smt_index=smt,
                        )
                    )
                    core_id += 1
        self._siblings: Dict[int, Tuple[int, ...]] = {}
        by_physical: Dict[int, List[int]] = {}
        for info in self._cores:
            by_physical.setdefault(info.physical_core, []).append(info.core_id)
        for ids in by_physical.values():
            group = tuple(sorted(ids))
            for cid in ids:
                self._siblings[cid] = group
        self._secondary_order: Optional[List[int]] = None

    @classmethod
    def from_spec(cls, spec: MachineSpec) -> "CpuTopology":
        return cls(spec.sockets, spec.cores_per_socket, spec.threads_per_core)

    # ------------------------------------------------------------ properties
    @property
    def sockets(self) -> int:
        return self._sockets

    @property
    def physical_core_count(self) -> int:
        return self._sockets * self._cores_per_socket

    @property
    def logical_core_count(self) -> int:
        return len(self._cores)

    @property
    def cores(self) -> Sequence[LogicalCoreInfo]:
        return tuple(self._cores)

    def all_core_ids(self) -> FrozenSet[int]:
        """The full affinity mask (every logical core)."""
        return frozenset(info.core_id for info in self._cores)

    def core_info(self, core_id: int) -> LogicalCoreInfo:
        if not 0 <= core_id < len(self._cores):
            raise ConfigError(f"core id {core_id} out of range (0..{len(self._cores) - 1})")
        return self._cores[core_id]

    def siblings(self, core_id: int) -> Tuple[int, ...]:
        """Logical cores sharing the same physical core (including ``core_id``)."""
        self.core_info(core_id)
        return self._siblings[core_id]

    def cores_on_socket(self, socket: int) -> Tuple[int, ...]:
        if not 0 <= socket < self._sockets:
            raise ConfigError(f"socket {socket} out of range (0..{self._sockets - 1})")
        return tuple(info.core_id for info in self._cores if info.socket == socket)

    def secondary_allocation_order(self) -> List[int]:
        """Core ids in the order they should be handed to the secondary.

        The secondary gets cores from the *end* of the id space first, whole
        physical cores at a time, so the primary keeps contiguous low-numbered
        cores.  This mirrors how PerfIso carves an affinity mask out of the
        tail of the processor mask without touching the primary's preferred
        cores (Section 4.2: PerfIso never overrides the primary's own
        affinitisation).

        The order is a pure function of the (immutable) topology, so it is
        computed once and replayed — the PerfIso controller asks for it on
        every allocation change.
        """
        if self._secondary_order is None:
            by_physical: Dict[int, List[int]] = {}
            for info in self._cores:
                by_physical.setdefault(info.physical_core, []).append(info.core_id)
            order: List[int] = []
            for physical in sorted(by_physical, reverse=True):
                order.extend(sorted(by_physical[physical], reverse=True))
            self._secondary_order = order
        return list(self._secondary_order)

    # ----------------------------------------------------------------- masks
    def mask_from_ids(self, core_ids: Sequence[int]) -> int:
        """Pack logical core ids into a bitmask (bit *i* set => core *i*)."""
        mask = 0
        for core_id in core_ids:
            self.core_info(core_id)
            mask |= 1 << core_id
        return mask

    def ids_from_mask(self, mask: int) -> FrozenSet[int]:
        """Unpack a bitmask into the set of logical core ids it selects."""
        if mask < 0:
            raise ConfigError("core mask cannot be negative")
        ids = set()
        core_id = 0
        while mask:
            if mask & 1:
                if core_id >= len(self._cores):
                    raise ConfigError(f"mask selects core {core_id}, beyond machine size")
                ids.add(core_id)
            mask >>= 1
            core_id += 1
        return frozenset(ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CpuTopology(sockets={self._sockets}, physical={self.physical_core_count}, "
            f"logical={self.logical_core_count})"
        )
