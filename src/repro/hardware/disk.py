"""Disk devices and striped volumes.

The paper's servers carry two striped volumes: 4x SSD (exclusive to the
primary's index) and 4x HDD (logging plus everything the secondary does).
Requests are modelled with a base latency plus a size-proportional transfer
time, a bounded number of in-flight requests per device, and FIFO queueing
beyond that.  Striped volumes split large requests across member disks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..config.schema import DiskSpec, VolumeSpec
from ..errors import ResourceError
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from ..simulation.randomness import BatchedDraws

__all__ = ["IoRequest", "DiskDevice", "StripedVolume", "jitter_source"]

_READ = "read"
_WRITE = "write"
_VALID_OPS = (_READ, _WRITE)


def jitter_source(rng: np.random.Generator) -> BatchedDraws:
    """Batched ``uniform(0.8, 1.2)`` service-time jitter draws.

    Every device sharing one RNG must also share one source, so the draws
    are handed out in exactly the order the devices used to pull them one by
    one from the generator — batching is invisible to the simulation output.
    """
    return BatchedDraws(lambda size: rng.uniform(0.8, 1.2, size))


class IoRequest:
    """One logical I/O request against a volume."""

    __slots__ = (
        "owner",
        "category",
        "op",
        "size_bytes",
        "volume",
        "callback",
        "submit_time",
        "start_time",
        "complete_time",
        "chunks_pending",
    )

    def __init__(
        self,
        owner: str,
        category: str,
        op: str,
        size_bytes: int,
        volume: str,
        callback: Optional[Callable[["IoRequest"], None]],
        submit_time: float,
    ) -> None:
        if op not in _VALID_OPS:
            raise ResourceError(f"I/O op must be one of {_VALID_OPS}, got {op!r}")
        if size_bytes <= 0:
            raise ResourceError("I/O request size must be positive")
        self.owner = owner
        self.category = category
        self.op = op
        self.size_bytes = int(size_bytes)
        self.volume = volume
        self.callback = callback
        self.submit_time = submit_time
        self.start_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self.chunks_pending = 0

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency, available once the request completed."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IoRequest({self.owner}, {self.op}, {self.size_bytes}B on {self.volume}, "
            f"submitted t={self.submit_time:.6f})"
        )


class DiskDevice:
    """A single disk with bounded in-flight requests and FIFO overflow queue."""

    def __init__(
        self,
        engine: SimulationEngine,
        spec: DiskSpec,
        name: str,
        rng: Optional[np.random.Generator] = None,
        jitter: Optional[BatchedDraws] = None,
    ) -> None:
        self._engine = engine
        self._spec = spec
        self._name = name
        self._rng = rng
        if jitter is None and rng is not None:
            jitter = jitter_source(rng)
        self._jitter = jitter
        self._in_service = 0
        self._queue: Deque[tuple] = deque()
        # statistics
        self.completed_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_time = 0.0
        self.total_queue_delay = 0.0

    @property
    def name(self) -> str:
        return self._name

    @property
    def spec(self) -> DiskSpec:
        return self._spec

    @property
    def queue_depth(self) -> int:
        """Requests waiting (not yet in service)."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        return self._in_service

    def service_time(self, size_bytes: int) -> float:
        """Deterministic part of the service time for a chunk of this size."""
        return self._spec.base_latency + size_bytes / self._spec.bandwidth_bytes_per_s

    def submit_chunk(
        self, size_bytes: int, op: str, done: Callable[[float], None]
    ) -> None:
        """Queue one chunk; ``done(queue_delay)`` fires when it completes."""
        if op not in _VALID_OPS:
            raise ResourceError(f"I/O op must be one of {_VALID_OPS}, got {op!r}")
        entry = (self._engine.now, size_bytes, op, done)
        if self._in_service < self._spec.max_queue_depth:
            self._start(entry)
        else:
            self._queue.append(entry)

    # ------------------------------------------------------------- internals
    def _start(self, entry: tuple) -> None:
        enqueue_time, size_bytes, op, done = entry
        self._in_service += 1
        spec = self._spec
        engine = self._engine
        duration = spec.base_latency + size_bytes / spec.bandwidth_bytes_per_s
        if self._jitter is not None:
            # Mild service-time variability: +/-20 % uniform jitter, which is
            # enough to avoid artificial synchronisation between devices.
            duration *= float(self._jitter.next())
        queue_delay = engine.now - enqueue_time
        self.total_queue_delay += queue_delay
        self.busy_time += duration
        if op == _READ:
            self.bytes_read += size_bytes
        else:
            self.bytes_written += size_bytes
        engine.schedule(
            duration, self._complete, done, queue_delay, priority=EventPriority.HARDWARE
        )

    def _complete(self, done: Callable[[float], None], queue_delay: float) -> None:
        self._in_service -= 1
        self.completed_requests += 1
        if self._queue:
            self._start(self._queue.popleft())
        done(queue_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskDevice({self._name}, {self._spec.kind}, queued={len(self._queue)})"


class StripedVolume:
    """A RAID-0 style striped set of identical disks.

    Requests larger than one stripe are split into up to ``len(disks)`` chunks
    issued in parallel, one per member disk; the request completes when all
    chunks have completed.  Member disks are also rotated per request so
    small requests spread evenly.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        spec: VolumeSpec,
        rng: Optional[np.random.Generator] = None,
        jitter: Optional[BatchedDraws] = None,
    ) -> None:
        self._engine = engine
        self._spec = spec
        # Every member disk draws its service-time jitter from one shared,
        # batched source so the values land on requests in exactly the order
        # they would with per-request draws from the shared generator.  A
        # machine passes one source spanning all its volumes.
        if jitter is None and rng is not None:
            jitter = jitter_source(rng)
        self._disks: List[DiskDevice] = [
            DiskDevice(engine, spec.disk, f"{spec.name}{index}", rng, jitter=jitter)
            for index in range(spec.count)
        ]
        self._next_disk = 0
        # statistics
        self.completed_requests = 0
        self.completed_by_category: Dict[str, int] = {}
        self.bytes_by_category: Dict[str, int] = {}

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def spec(self) -> VolumeSpec:
        return self._spec

    @property
    def disks(self) -> List[DiskDevice]:
        return list(self._disks)

    @property
    def queue_depth(self) -> int:
        return sum(disk.queue_depth for disk in self._disks)

    def submit(
        self,
        owner: str,
        category: str,
        op: str,
        size_bytes: int,
        callback: Optional[Callable[[IoRequest], None]] = None,
    ) -> IoRequest:
        """Submit a request; ``callback(request)`` fires on completion."""
        now = self._engine.now
        spec = self._spec
        request = IoRequest(owner, category, op, size_bytes, spec.name, callback, now)
        request.start_time = now
        disks = self._disks
        next_disk = self._next_disk
        if size_bytes <= spec.stripe_bytes:
            # Single-chunk fast path (the overwhelmingly common request size).
            request.chunks_pending = 1
            self._next_disk = (next_disk + 1) % len(disks)
            disks[next_disk].submit_chunk(
                size_bytes, op, lambda _delay, r=request: self._chunk_done(r)
            )
            return request
        chunks = self._split(size_bytes)
        request.chunks_pending = len(chunks)
        for chunk_size in chunks:
            disk = disks[self._next_disk]
            self._next_disk = (self._next_disk + 1) % len(disks)
            disk.submit_chunk(chunk_size, op, lambda _delay, r=request: self._chunk_done(r))
        return request

    # ------------------------------------------------------------- internals
    def _split(self, size_bytes: int) -> List[int]:
        stripe = self._spec.stripe_bytes
        if size_bytes <= stripe:
            return [size_bytes]
        chunk_count = min(len(self._disks), -(-size_bytes // stripe))
        base = size_bytes // chunk_count
        chunks = [base] * chunk_count
        chunks[0] += size_bytes - base * chunk_count
        return chunks

    def _chunk_done(self, request: IoRequest) -> None:
        request.chunks_pending -= 1
        if request.chunks_pending > 0:
            return
        request.complete_time = self._engine.now
        self.completed_requests += 1
        self.completed_by_category[request.category] = (
            self.completed_by_category.get(request.category, 0) + 1
        )
        self.bytes_by_category[request.category] = (
            self.bytes_by_category.get(request.category, 0) + request.size_bytes
        )
        if request.callback is not None:
            request.callback(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StripedVolume({self._spec.name}, disks={len(self._disks)})"
