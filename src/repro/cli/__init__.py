"""Shared command-line fragments and the uniform CLI contract.

Every ``python -m repro.*`` entry point (matrix, fleet, showdown, workloads,
reporting) builds its parser from the canonical fragments below, so the same
flag means the same thing everywhere:

* ``--workers N`` — worker process count (0/1 forces serial; results are
  byte-identical at any value).
* ``--out`` — *where* output goes.  A path writes the rendered rows to that
  file; the legacy format keywords (``table``/``json``/``jsonl``/``csv``)
  keep writing that format to stdout, so existing invocations and scripts
  are unchanged.
* ``--format table|json|jsonl|csv`` — *how* rows are rendered.  Optional:
  when ``--out`` is a path the format is inferred from its extension
  (``.json``/``.jsonl``/``.csv``), and stdout defaults to ``table``.
* ``--telemetry [PATH]`` — stream JSONL telemetry to PATH.
* ``--profile PATH`` — run under cProfile, write a cumulative-time report.
* ``--seed N`` — the base seed.
* ``--bundle DIR`` — additionally emit a versioned run-artifact bundle
  (see :mod:`repro.reporting.bundle`).

**Exit-code contract**, enforced uniformly:

* ``0`` — everything ran.
* ``1`` — the invocation was valid but one or more *isolated* scenario runs
  failed; completed results are still flushed.
* ``2`` — caller error (unknown scenario, malformed flag, invalid config):
  rejected before any work runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..reporting.rows import render_rows

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURES",
    "EXIT_USAGE",
    "OUTPUT_FORMATS",
    "add_workers_option",
    "add_seed_option",
    "add_profile_option",
    "add_telemetry_option",
    "add_output_options",
    "add_bundle_option",
    "resolve_output",
    "render_output",
    "write_output",
    "parse_grid",
]

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2

#: Row renderings the shared ``--out``/``--format`` fragment understands.
OUTPUT_FORMATS = ("table", "json", "jsonl", "csv")

#: Extension → format inference for ``--out PATH``.
_SUFFIX_FORMATS = {".json": "json", ".jsonl": "jsonl", ".csv": "csv", ".txt": "table"}


# ------------------------------------------------------------------ fragments
def add_workers_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, help="worker process count"
    )


def add_seed_option(
    parser: argparse.ArgumentParser, default: Optional[int], help: str = "the base seed"
) -> None:
    parser.add_argument("--seed", type=int, default=default, help=help)


def add_profile_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="run under cProfile and write a cumulative-time report to PATH",
    )


def add_telemetry_option(parser: argparse.ArgumentParser, detail: str = "") -> None:
    parser.add_argument(
        "--telemetry",
        nargs="?",
        const="telemetry.jsonl",
        default=None,
        metavar="PATH",
        help="stream JSONL telemetry to PATH (default telemetry.jsonl)"
        + (f"; {detail}" if detail else ""),
    )


def add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH|FORMAT",
        help="output file path (format inferred from the extension), or one "
        f"of {'/'.join(OUTPUT_FORMATS)} to print that format to stdout",
    )
    parser.add_argument(
        "--format",
        choices=OUTPUT_FORMATS,
        default=None,
        help="output format override (defaults: extension inference for "
        "--out paths, table on stdout)",
    )


def add_bundle_option(parser: argparse.ArgumentParser, default: Optional[str] = None) -> None:
    parser.add_argument(
        "--bundle",
        metavar="DIR",
        default=default,
        help="additionally write a versioned run-artifact bundle to DIR"
        + (f" (default {default})" if default else ""),
    )


# ----------------------------------------------------------------- resolution
def resolve_output(
    out: Optional[str], fmt: Optional[str], default_format: str = "table"
) -> Tuple[str, Optional[Path]]:
    """Resolve the shared ``--out``/``--format`` pair to ``(format, path)``.

    ``path`` is ``None`` for stdout.  A bare format keyword as ``--out`` is
    the legacy spelling of ``--format`` (kept so existing invocations emit
    identical bytes); naming both with different values is a caller error,
    as is an ``--out`` path whose extension the format cannot be inferred
    from when ``--format`` is absent.
    """
    if out is None:
        return fmt or default_format, None
    if out in OUTPUT_FORMATS:
        if fmt is not None and fmt != out:
            raise ConfigError(
                f"--out {out} conflicts with --format {fmt}; pass a path to "
                "--out or drop one of the flags"
            )
        return out, None
    path = Path(out)
    if fmt is not None:
        return fmt, path
    inferred = _SUFFIX_FORMATS.get(path.suffix.lower())
    if inferred is None:
        raise ConfigError(
            f"cannot infer an output format from {out!r}; pass --format "
            f"{'|'.join(OUTPUT_FORMATS)} or use a .json/.jsonl/.csv/.txt path"
        )
    return inferred, path


def render_output(
    rows: Sequence[Dict[str, Any]], fmt: str, columns: Optional[Sequence[str]] = None
) -> str:
    """Render rows in any shared output format, trailing newline included."""
    if fmt == "table":
        from ..experiments.reporting import format_table

        return format_table(rows, columns) + "\n"
    return render_rows(rows, fmt, columns=columns)


def write_output(text: str, path: Optional[Path]) -> None:
    """Write rendered output to ``path``, or stdout when ``path`` is None."""
    if path is None:
        sys.stdout.write(text)
    else:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


# ----------------------------------------------------------------------- grid
def _parse_grid_value(text: str) -> Any:
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def parse_grid(entries: Sequence[str]) -> Dict[str, Tuple[Any, ...]]:
    """Parse repeated ``--grid axis=v1,v2`` flags into an axis-override map."""
    grid: Dict[str, Tuple[Any, ...]] = {}
    for entry in entries:
        axis, sep, values = entry.partition("=")
        if not sep or not axis or not values:
            raise ConfigError(f"--grid expects axis=v1,v2,..., got {entry!r}")
        grid[axis] = tuple(_parse_grid_value(value) for value in values.split(","))
    return grid
