"""The synthetic primary tenant: an IndexServe-like query serving service.

Behavioural model (calibrated to Section 5/6 of the paper):

* A query arrives and immediately fans out into a *burst* of worker threads —
  this is the "up to 15 threads become ready within 5 microseconds" property
  that makes static isolation insufficient.
* Each worker may first read an index chunk from the SSD volume (cache miss)
  and then burns a short, heavy-tailed CPU burst.
* When the last worker finishes, a short aggregation burst merges the results,
  the response is sent on the NIC, and a log record is written asynchronously
  to the shared HDD volume.
* Queries that exceed the timeout are dropped: remaining workers are killed
  and the query is counted in the drop statistics (Figure 7c).
* Under backlog the service adaptively spawns extra workers per query (the
  compensation behaviour the paper observes in Section 6.1.2), which raises
  primary CPU usage when it is being interfered with.

The primary always runs unrestricted: it is never placed in a job object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..config.schema import IndexServeSpec
from ..errors import TenantError
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from ..hostos.thread import SimThread, cpu_phase, io_phase
from ..metrics.latency import LatencyCollector
from ..simulation.events import EventPriority
from ..units import micros
from ..workloads.query_trace import QueryDescriptor
from .base import Tenant

__all__ = ["QueryOutcome", "IndexServeTenant"]

#: Kernel overhead charged per query for network receive + request setup.
QUERY_OS_OVERHEAD = micros(15)


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one query, delivered to the optional completion callback."""

    query_id: int
    arrival_time: float
    completion_time: float
    latency: float
    dropped: bool


class _QueryRuntime:
    """Mutable in-flight state of one query (slots: built once per query on
    the submit hot path, so attribute storage must stay as lean as possible)."""

    __slots__ = (
        "descriptor",
        "arrival_time",
        "remaining_workers",
        "worker_threads",
        "timeout_event",
        "dropped",
        "done",
        "callback",
    )

    def __init__(
        self,
        descriptor: QueryDescriptor,
        arrival_time: float,
        remaining_workers: int,
        callback: Optional[Callable[[QueryOutcome], None]] = None,
    ) -> None:
        self.descriptor = descriptor
        self.arrival_time = arrival_time
        self.remaining_workers = remaining_workers
        self.worker_threads: List[SimThread] = []
        self.timeout_event: Optional[object] = None
        self.dropped = False
        self.done = False
        self.callback = callback


class IndexServeTenant(Tenant):
    """The latency-sensitive primary service of one machine."""

    def __init__(
        self,
        kernel: Kernel,
        spec: IndexServeSpec,
        rng: np.random.Generator,
        collector: Optional[LatencyCollector] = None,
        name: str = "indexserve",
    ) -> None:
        super().__init__(kernel, name)
        self._spec = spec
        self._rng = rng
        self._collector = collector if collector is not None else LatencyCollector()
        self._process: Optional[OsProcess] = None
        self._queries: Dict[int, _QueryRuntime] = {}
        self._next_runtime_id = 0
        # statistics
        self.submitted = 0
        self.completed = 0
        self.dropped = 0
        self.adaptive_boosts = 0

    # ------------------------------------------------------------ properties
    @property
    def spec(self) -> IndexServeSpec:
        return self._spec

    @property
    def collector(self) -> LatencyCollector:
        return self._collector

    @property
    def process(self) -> OsProcess:
        if self._process is None:
            raise TenantError("IndexServe has not been started")
        return self._process

    @property
    def in_flight(self) -> int:
        return len(self._queries)

    def processes(self) -> List[OsProcess]:
        return [self._process] if self._process is not None else []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._started:
            raise TenantError("IndexServe started twice")
        self._started = True
        self._process = self._kernel.create_process(
            self._name,
            category=TenantCategory.PRIMARY,
            memory_bytes=self._spec.memory_footprint_bytes,
        )

    # -------------------------------------------------------------- queries
    def submit(
        self,
        query: QueryDescriptor,
        arrival_time: Optional[float] = None,
        callback: Optional[Callable[[QueryOutcome], None]] = None,
    ) -> None:
        """Process ``query``; ``callback`` (if given) receives the outcome."""
        if not self._started or self._stopped:
            raise TenantError("IndexServe is not running")
        kernel = self._kernel
        spec = self._spec
        now = kernel.now
        arrival = now if arrival_time is None else arrival_time
        self.submitted += 1
        kernel.accounting.charge_os(QUERY_OS_OVERHEAD)

        runtime_id = self._next_runtime_id
        self._next_runtime_id += 1

        demands = query.worker_demands
        misses = query.cache_misses
        # Adaptive parallelism: compensate for a backlog by fanning out wider.
        # The total index-lookup work stays the same; the largest chunks are
        # split across extra workers (plus a small per-split overhead), which
        # shortens the critical path at the cost of more ready threads and a
        # higher primary CPU share — the compensation the paper observes.
        if (
            spec.adaptive_parallelism
            and len(self._queries) > spec.adaptive_threshold
            and len(demands) < spec.workers_per_query_max
        ):
            self.adaptive_boosts += 1
            demands = list(demands)
            misses = list(misses)
            extra = min(
                spec.adaptive_extra_workers,
                spec.workers_per_query_max - len(demands),
            )
            overhead = spec.adaptive_split_overhead
            for _ in range(extra):
                # First index of the maximum, like np.argmax, without the
                # list->array conversion.
                largest = max(range(len(demands)), key=demands.__getitem__)
                half = demands[largest] / 2.0
                demands[largest] = half + overhead
                demands.append(half + overhead)
                misses.append(False)

        runtime = _QueryRuntime(
            descriptor=query,
            arrival_time=arrival,
            remaining_workers=len(demands),
            callback=callback,
        )
        self._queries[runtime_id] = runtime
        runtime.timeout_event = kernel.engine.schedule(
            max(0.0, arrival + spec.timeout - now),
            self._timeout,
            runtime_id,
            priority=EventPriority.TENANT,
        )

        # One shared completion callback per query (not one per worker).
        worker_done = lambda _t, rid=runtime_id: self._worker_done(rid)  # noqa: E731
        spawn_thread = kernel.spawn_thread
        process = self._process
        worker_threads = runtime.worker_threads
        miss_phase = None
        parse_cost = spec.parse_cost
        name = self._name
        for index, demand in enumerate(demands):
            if misses[index]:
                if miss_phase is None:
                    miss_phase = io_phase("ssd", "read", spec.cache_miss_read_bytes)
                program = [miss_phase, cpu_phase(demand + (parse_cost if index == 0 else 0.0))]
            else:
                program = [cpu_phase(demand + (parse_cost if index == 0 else 0.0))]
            worker_threads.append(
                spawn_thread(
                    process,
                    program,
                    name=f"{name}-q{runtime_id}-w{index}",
                    on_complete=worker_done,
                )
            )

    # ------------------------------------------------------------- internals
    def _worker_done(self, runtime_id: int) -> None:
        runtime = self._queries.get(runtime_id)
        if runtime is None or runtime.dropped or runtime.done:
            return
        runtime.remaining_workers -= 1
        if runtime.remaining_workers > 0:
            return
        # All workers finished: run the aggregation burst.
        self._kernel.spawn_thread(
            self._process,
            [cpu_phase(self._spec.aggregate_cost)],
            name=f"{self._name}-q{runtime_id}-agg",
            on_complete=lambda _t, rid=runtime_id: self._query_done(rid),
        )

    def _query_done(self, runtime_id: int) -> None:
        runtime = self._queries.pop(runtime_id, None)
        if runtime is None or runtime.dropped:
            return
        runtime.done = True
        if runtime.timeout_event is not None:
            self._kernel.engine.cancel(runtime.timeout_event)
        now = self._kernel.now
        latency = now - runtime.arrival_time
        self.completed += 1
        self._collector.record(now, latency)
        # Ship the response and write the (asynchronous) log record.
        self._kernel.machine.nic.send(
            self._name, self._spec.response_bytes, priority=self._kernel.machine.nic.HIGH
        )
        if self._spec.log_bytes_per_query > 0:
            self._kernel.submit_io(
                self._process, "hdd", "write", self._spec.log_bytes_per_query
            )
        if runtime.callback is not None:
            runtime.callback(
                QueryOutcome(
                    query_id=runtime.descriptor.query_id,
                    arrival_time=runtime.arrival_time,
                    completion_time=now,
                    latency=latency,
                    dropped=False,
                )
            )

    def _timeout(self, runtime_id: int) -> None:
        runtime = self._queries.pop(runtime_id, None)
        if runtime is None or runtime.done:
            return
        runtime.dropped = True
        self.dropped += 1
        now = self._kernel.now
        self._collector.record_drop(now)
        for thread in runtime.worker_threads:
            if not thread.terminated:
                self._kernel.terminate_thread(thread)
        if runtime.callback is not None:
            runtime.callback(
                QueryOutcome(
                    query_id=runtime.descriptor.query_id,
                    arrival_time=runtime.arrival_time,
                    completion_time=now,
                    latency=now - runtime.arrival_time,
                    dropped=True,
                )
            )

    # -------------------------------------------------------------- reports
    def drop_rate(self) -> float:
        total = self.completed + self.dropped
        return self.dropped / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexServeTenant(submitted={self.submitted}, completed={self.completed}, "
            f"dropped={self.dropped}, in_flight={self.in_flight})"
        )
