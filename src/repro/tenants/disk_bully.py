"""The disk bully: a DiskSPD-like I/O-bound secondary tenant.

Reproduces the cluster experiment's disk stressor (Section 5.3): a mixed
33 % read / 67 % write, sequential, synchronous workload against the shared
HDD volume.  Each worker keeps exactly one request outstanding (synchronous
I/O), issuing the next request as soon as the previous one completes, plus a
tiny CPU cost per request.  Progress is measured in bytes transferred.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config.schema import DiskBullySpec
from ..errors import TenantError
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from .base import SecondaryTenant

__all__ = ["DiskBullyTenant"]


class DiskBullyTenant(SecondaryTenant):
    """Saturates the HDD volume with synchronous sequential I/O."""

    def __init__(
        self,
        kernel: Kernel,
        spec: DiskBullySpec,
        rng: np.random.Generator,
        name: str = "disk-bully",
        volume: str = "hdd",
    ) -> None:
        super().__init__(kernel, name)
        self._spec = spec
        self._rng = rng
        self._volume = volume
        self._process: Optional[OsProcess] = None
        # statistics
        self.requests_completed = 0
        self.bytes_completed = 0

    @property
    def spec(self) -> DiskBullySpec:
        return self._spec

    @property
    def process(self) -> OsProcess:
        if self._process is None:
            raise TenantError("disk bully has not been started")
        return self._process

    def processes(self) -> List[OsProcess]:
        return [self._process] if self._process is not None else []

    def start(self) -> None:
        if self._started:
            raise TenantError("disk bully started twice")
        self._started = True
        self._process = self._kernel.create_process(
            self._name,
            category=TenantCategory.SECONDARY,
            memory_bytes=self._spec.memory_bytes,
        )
        if self._job is not None:
            self._job.assign(self._process)
        for worker in range(self._spec.threads * self._spec.queue_depth):
            self._issue(worker)

    def stop(self) -> None:
        super().stop()

    # ------------------------------------------------------------- internals
    def _issue(self, worker: int) -> None:
        if self._stopped or self._process is None or not self._process.alive:
            return
        op = "read" if self._rng.random() < self._spec.read_fraction else "write"
        # The per-request CPU cost is tiny; charge it directly rather than
        # paying for a scheduler round-trip per 8 KiB request.
        self._kernel.accounting.charge(
            TenantCategory.SECONDARY, self._spec.cpu_per_request, self._process.name
        )
        self._process.charge_cpu(self._spec.cpu_per_request)
        self._kernel.iostack.submit(
            self._process,
            self._volume,
            op,
            self._spec.request_bytes,
            callback=lambda request, w=worker: self._completed(w, request.size_bytes),
        )

    def _completed(self, worker: int, size_bytes: int) -> None:
        self.requests_completed += 1
        self.bytes_completed += size_bytes
        self._issue(worker)

    # -------------------------------------------------------------- progress
    def progress(self) -> float:
        """Progress in bytes transferred."""
        return float(self.bytes_completed)

    def throughput_bytes_per_s(self, elapsed: float) -> float:
        return self.bytes_completed / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskBullyTenant(requests={self.requests_completed}, "
            f"bytes={self.bytes_completed})"
        )
