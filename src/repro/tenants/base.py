"""Common tenant interface.

A *tenant* is anything that consumes machine resources: the latency-sensitive
primary service, and the best-effort secondary batch jobs.  Tenants expose a
uniform ``start`` / ``stop`` lifecycle plus a progress indicator so the
experiment harness can compare how much useful work the secondary completed
under different isolation policies (Figure 8c).
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ..hostos.jobobject import JobObject
from ..hostos.process import OsProcess
from ..hostos.syscalls import Kernel

__all__ = ["Tenant", "SecondaryTenant"]


class Tenant(abc.ABC):
    """Base class for all tenants."""

    def __init__(self, kernel: Kernel, name: str) -> None:
        self._kernel = kernel
        self._name = name
        self._started = False
        self._stopped = False

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @property
    def name(self) -> str:
        return self._name

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stopped(self) -> bool:
        return self._stopped

    @abc.abstractmethod
    def start(self) -> None:
        """Create processes/threads and begin doing work."""

    def stop(self) -> None:
        """Stop doing new work.  Existing threads are left to the kernel."""
        self._stopped = True

    @abc.abstractmethod
    def processes(self) -> List[OsProcess]:
        """Processes owned by this tenant (used by PerfIso to build job objects)."""


class SecondaryTenant(Tenant):
    """A best-effort tenant that can be placed under a PerfIso job object."""

    def __init__(self, kernel: Kernel, name: str) -> None:
        super().__init__(kernel, name)
        self._job: Optional[JobObject] = None

    @property
    def job(self) -> Optional[JobObject]:
        return self._job

    def attach_to_job(self, job: JobObject) -> None:
        """Place every process of this tenant under ``job``."""
        self._job = job
        for process in self.processes():
            job.assign(process)

    @abc.abstractmethod
    def progress(self) -> float:
        """Application-level progress (arbitrary units, monotone increasing)."""
