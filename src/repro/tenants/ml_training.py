"""Machine-learning training batch job (the Figure 10 secondary).

The production result of Section 6.2 colocates IndexServe with the training
phase of a machine-learning computation.  The model is a CPU-dominant job
with periodic bulk reads of training data from the shared HDD volume:
``threads`` always-runnable compute workers plus an asynchronous input
pipeline that fetches mini-batch data.  Progress is reported in mini-batches,
derived from consumed CPU time.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..config.schema import MlTrainingSpec
from ..errors import TenantError
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from ..hostos.thread import cpu_phase
from .base import SecondaryTenant

__all__ = ["MlTrainingTenant"]


class MlTrainingTenant(SecondaryTenant):
    """CPU-heavy training job with a bulk-read input pipeline."""

    def __init__(
        self,
        kernel: Kernel,
        spec: MlTrainingSpec,
        rng: np.random.Generator,
        name: str = "ml-training",
        volume: str = "hdd",
    ) -> None:
        super().__init__(kernel, name)
        self._spec = spec
        self._rng = rng
        self._volume = volume
        self._process: Optional[OsProcess] = None
        self.input_bytes_read = 0

    @property
    def spec(self) -> MlTrainingSpec:
        return self._spec

    @property
    def process(self) -> OsProcess:
        if self._process is None:
            raise TenantError("ML training tenant has not been started")
        return self._process

    def processes(self) -> List[OsProcess]:
        return [self._process] if self._process is not None else []

    def start(self) -> None:
        if self._started:
            raise TenantError("ML training tenant started twice")
        self._started = True
        self._process = self._kernel.create_process(
            self._name,
            category=TenantCategory.SECONDARY,
            memory_bytes=self._spec.memory_bytes,
        )
        if self._job is not None:
            self._job.assign(self._process)
        for index in range(self._spec.threads):
            self._kernel.spawn_thread(
                self._process,
                [cpu_phase(math.inf)],
                name=f"{self._name}-w{index}",
            )
        self._issue_input_read()

    def stop(self) -> None:
        super().stop()
        if self._process is not None:
            self._kernel.scheduler.terminate_process(self._process)

    # ------------------------------------------------------------- internals
    def _issue_input_read(self) -> None:
        if self._stopped or self._process is None or not self._process.alive:
            return
        self._kernel.iostack.submit(
            self._process,
            self._volume,
            "read",
            self._spec.minibatch_read_bytes,
            callback=lambda request: self._input_read_done(request.size_bytes),
        )

    def _input_read_done(self, size_bytes: int) -> None:
        self.input_bytes_read += size_bytes
        # The input pipeline paces itself to roughly ``reads_per_minibatch``
        # reads per completed mini-batch worth of CPU.
        target_gap = self._spec.minibatch_cpu_cost / max(self._spec.reads_per_minibatch, 1e-6)
        jitter = float(self._rng.uniform(0.5, 1.5))
        self._kernel.engine.schedule(target_gap * jitter / max(self._spec.threads, 1),
                                     self._issue_input_read)

    # -------------------------------------------------------------- progress
    def cpu_seconds(self) -> float:
        return self._process.cpu_time if self._process is not None else 0.0

    def progress(self) -> float:
        """Completed mini-batches (CPU seconds / per-mini-batch cost)."""
        return self.cpu_seconds() / self._spec.minibatch_cpu_cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MlTrainingTenant(threads={self._spec.threads}, progress={self.progress():.0f})"
