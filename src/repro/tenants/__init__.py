"""Tenants: the primary service and the secondary batch jobs."""

from .base import SecondaryTenant, Tenant
from .cpu_bully import CpuBullyTenant
from .disk_bully import DiskBullyTenant
from .hdfs import HdfsTenant
from .indexserve import IndexServeTenant, QueryOutcome
from .ml_training import MlTrainingTenant

__all__ = [
    "SecondaryTenant",
    "Tenant",
    "CpuBullyTenant",
    "DiskBullyTenant",
    "HdfsTenant",
    "IndexServeTenant",
    "QueryOutcome",
    "MlTrainingTenant",
]
