"""The CPU bully: a configurable always-runnable compute-bound secondary.

Identical in spirit to the paper's micro-benchmark (Section 5.3): each worker
thread spins on pure integer arithmetic with essentially no memory or storage
traffic, so it will consume every CPU cycle the OS gives it.  Progress is
measured in "iterations", where one iteration corresponds to a fixed amount of
CPU time, which makes the progress comparisons of Figure 8c straightforward.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..config.schema import CpuBullySpec
from ..errors import TenantError
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from ..hostos.thread import cpu_phase
from .base import SecondaryTenant

__all__ = ["CpuBullyTenant"]


class CpuBullyTenant(SecondaryTenant):
    """A multi-threaded CPU hog used to stress isolation mechanisms."""

    def __init__(
        self,
        kernel: Kernel,
        spec: CpuBullySpec,
        name: str = "cpu-bully",
    ) -> None:
        super().__init__(kernel, name)
        self._spec = spec
        self._process: Optional[OsProcess] = None

    @property
    def spec(self) -> CpuBullySpec:
        return self._spec

    @property
    def process(self) -> OsProcess:
        if self._process is None:
            raise TenantError("CPU bully has not been started")
        return self._process

    def processes(self) -> List[OsProcess]:
        return [self._process] if self._process is not None else []

    def start(self) -> None:
        if self._started:
            raise TenantError("CPU bully started twice")
        self._started = True
        self._process = self._kernel.create_process(
            self._name,
            category=TenantCategory.SECONDARY,
            memory_bytes=self._spec.memory_bytes,
        )
        if self._job is not None:
            self._job.assign(self._process)
        for index in range(self._spec.threads):
            self._kernel.spawn_thread(
                self._process,
                [cpu_phase(math.inf)],
                name=f"{self._name}-w{index}",
            )

    def stop(self) -> None:
        super().stop()
        if self._process is not None:
            self._kernel.scheduler.terminate_process(self._process)

    # -------------------------------------------------------------- progress
    def cpu_seconds(self) -> float:
        """Total CPU time the bully has consumed so far."""
        return self._process.cpu_time if self._process is not None else 0.0

    def progress(self) -> float:
        """Completed iterations (CPU seconds / per-iteration cost)."""
        return self.cpu_seconds() / self._spec.iteration_cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuBullyTenant(threads={self._spec.threads}, progress={self.progress():.0f})"
