"""HDFS DataNode + client colocated with the primary (Section 5.3).

Every IndexServe machine in the cluster experiment also runs an HDFS DataNode
(for replication) and a YARN/HDFS client used by batch jobs.  Their
interference footprint is disk bandwidth on the shared HDD volume plus a few
percent of CPU, and the paper statically caps them at 20 MB/s (replication)
and 60 MB/s (client).  This tenant generates that traffic and registers the
static caps with the kernel I/O stack — the same mechanism the PerfIso DWRR
throttler drives dynamically.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config.schema import HdfsSpec
from ..errors import TenantError
from ..hostos.process import OsProcess, TenantCategory
from ..hostos.syscalls import Kernel
from ..hostos.thread import cpu_phase
from .base import SecondaryTenant

__all__ = ["HdfsTenant"]


class HdfsTenant(SecondaryTenant):
    """DataNode replication stream plus client read/write stream."""

    def __init__(
        self,
        kernel: Kernel,
        spec: HdfsSpec,
        rng: np.random.Generator,
        name: str = "hdfs",
        volume: str = "hdd",
    ) -> None:
        super().__init__(kernel, name)
        self._spec = spec
        self._rng = rng
        self._volume = volume
        self._datanode: Optional[OsProcess] = None
        self._client: Optional[OsProcess] = None
        # statistics
        self.replication_bytes = 0
        self.client_bytes = 0

    @property
    def spec(self) -> HdfsSpec:
        return self._spec

    def processes(self) -> List[OsProcess]:
        return [p for p in (self._datanode, self._client) if p is not None]

    def start(self) -> None:
        if self._started:
            raise TenantError("HDFS tenant started twice")
        self._started = True
        self._datanode = self._kernel.create_process(
            f"{self._name}-datanode",
            category=TenantCategory.SECONDARY,
            memory_bytes=self._spec.memory_bytes // 2,
        )
        self._client = self._kernel.create_process(
            f"{self._name}-client",
            category=TenantCategory.SECONDARY,
            memory_bytes=self._spec.memory_bytes // 2,
        )
        if self._job is not None:
            self._job.assign(self._datanode)
            self._job.assign(self._client)
        # Static bandwidth caps from the cluster configuration (Section 5.3).
        self._kernel.iostack.set_bandwidth_limit(
            self._datanode.name, self._volume, self._spec.replication_bandwidth_limit
        )
        self._kernel.iostack.set_bandwidth_limit(
            self._client.name, self._volume, self._spec.client_bandwidth_limit
        )
        # A small amount of always-on CPU (heartbeat, checksumming, JVM).
        cpu_threads = max(1, round(self._spec.cpu_fraction * self._kernel.logical_cores))
        for index in range(cpu_threads):
            self._kernel.spawn_thread(
                self._client,
                [cpu_phase(float("inf"))],
                name=f"{self._name}-cpu{index}",
            )
        # Kick off both unbuffered I/O streams; the token buckets pace them.
        self._issue_replication()
        self._issue_client()

    def stop(self) -> None:
        super().stop()
        for process in self.processes():
            self._kernel.scheduler.terminate_process(process)

    # ------------------------------------------------------------- internals
    def _issue_replication(self) -> None:
        if self._stopped or self._datanode is None:
            return
        self._kernel.iostack.submit(
            self._datanode,
            self._volume,
            "write",
            self._spec.request_bytes,
            callback=lambda request: self._replication_done(request.size_bytes),
        )

    def _replication_done(self, size_bytes: int) -> None:
        self.replication_bytes += size_bytes
        self._issue_replication()

    def _issue_client(self) -> None:
        if self._stopped or self._client is None:
            return
        op = "read" if self._rng.random() < 0.5 else "write"
        self._kernel.iostack.submit(
            self._client,
            self._volume,
            op,
            self._spec.request_bytes,
            callback=lambda request: self._client_done(request.size_bytes),
        )

    def _client_done(self, size_bytes: int) -> None:
        self.client_bytes += size_bytes
        self._issue_client()

    # -------------------------------------------------------------- progress
    def progress(self) -> float:
        """Progress in total bytes moved by both streams."""
        return float(self.replication_bytes + self.client_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HdfsTenant(replication={self.replication_bytes}B, client={self.client_bytes}B)"
        )
