"""Unit helpers and constants used throughout the simulator.

The simulator keeps every duration in **seconds** (floats) and every data size
in **bytes** (ints).  These helpers exist so call sites read naturally
(``millis(12)`` instead of ``12e-3``) and so unit mistakes are easy to spot in
review.
"""

from __future__ import annotations

#: One microsecond, in seconds.
MICROSECOND = 1e-6
#: One millisecond, in seconds.
MILLISECOND = 1e-3
#: One second.
SECOND = 1.0
#: One minute, in seconds.
MINUTE = 60.0
#: One hour, in seconds.
HOUR = 3600.0

#: One kibibyte.
KIB = 1024
#: One mebibyte.
MIB = 1024 * KIB
#: One gibibyte.
GIB = 1024 * MIB

#: Kilobyte / megabyte / gigabyte (decimal), used for bandwidth figures that
#: the paper quotes in MB/s.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB


def micros(value: float) -> float:
    """Return ``value`` microseconds expressed in seconds."""
    return value * MICROSECOND


def millis(value: float) -> float:
    """Return ``value`` milliseconds expressed in seconds."""
    return value * MILLISECOND


def seconds(value: float) -> float:
    """Return ``value`` seconds (identity helper for symmetry)."""
    return float(value)


def minutes(value: float) -> float:
    """Return ``value`` minutes expressed in seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Return ``value`` hours expressed in seconds."""
    return value * HOUR


def to_millis(value: float) -> float:
    """Convert a duration in seconds to milliseconds."""
    return value / MILLISECOND


def to_micros(value: float) -> float:
    """Convert a duration in seconds to microseconds."""
    return value / MICROSECOND


def mib(value: float) -> int:
    """Return ``value`` MiB expressed in bytes."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Return ``value`` GiB expressed in bytes."""
    return int(value * GIB)


def mb_per_s(value: float) -> float:
    """Return a bandwidth of ``value`` MB/s expressed in bytes per second."""
    return value * MB
