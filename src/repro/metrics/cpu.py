"""CPU utilisation sampling and breakdown reports.

The paper's CPU figures stack four components: Primary, Secondary, OS and
Idle.  :class:`CpuUtilizationSampler` periodically differences the kernel's
cumulative accounting to build both the whole-run breakdown (Figures 4b-8b)
and a utilisation time series (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hostos.accounting import CpuSnapshot
from ..hostos.process import TenantCategory
from ..hostos.syscalls import Kernel
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority

__all__ = ["CpuBreakdown", "CpuUtilizationSampler"]


@dataclass(frozen=True)
class CpuBreakdown:
    """Fractions of total core-time per category over some interval."""

    primary: float
    secondary: float
    os: float
    idle: float

    @property
    def busy(self) -> float:
        return self.primary + self.secondary + self.os

    def as_percent(self) -> Dict[str, float]:
        return {
            "primary_pct": self.primary * 100.0,
            "secondary_pct": self.secondary * 100.0,
            "os_pct": self.os * 100.0,
            "idle_pct": self.idle * 100.0,
        }

    @staticmethod
    def from_utilization(utilization: Dict[str, float]) -> "CpuBreakdown":
        return CpuBreakdown(
            primary=utilization.get(TenantCategory.PRIMARY, 0.0),
            secondary=utilization.get(TenantCategory.SECONDARY, 0.0),
            os=utilization.get(TenantCategory.SYSTEM, 0.0),
            idle=utilization.get("idle", 0.0),
        )


@dataclass
class _Sample:
    time: float
    breakdown: CpuBreakdown


class CpuUtilizationSampler:
    """Samples per-interval CPU breakdowns from a kernel's accounting."""

    def __init__(
        self,
        engine: SimulationEngine,
        kernel: Kernel,
        interval: float = 1.0,
        warmup_end: float = 0.0,
    ) -> None:
        self._engine = engine
        self._kernel = kernel
        self._interval = interval
        self._warmup_end = warmup_end
        self._last_snapshot: Optional[CpuSnapshot] = None
        self._measure_start_snapshot: Optional[CpuSnapshot] = None
        self._samples: List[_Sample] = []
        self._started = False

    def start(self) -> None:
        """Begin periodic sampling (idempotent)."""
        if self._started:
            return
        self._started = True
        self._last_snapshot = self._kernel.cpu_snapshot()
        if self._warmup_end <= self._engine.now:
            self._measure_start_snapshot = self._last_snapshot
        else:
            self._engine.schedule_at(
                self._warmup_end, self._mark_measure_start, priority=EventPriority.MEASUREMENT
            )
        self._engine.schedule(self._interval, self._sample, priority=EventPriority.MEASUREMENT)

    # ------------------------------------------------------------- sampling
    def _mark_measure_start(self) -> None:
        self._measure_start_snapshot = self._kernel.cpu_snapshot()

    def _sample(self) -> None:
        snapshot = self._kernel.cpu_snapshot()
        utilization = self._kernel.accounting.utilization(self._engine.now, self._last_snapshot)
        self._samples.append(
            _Sample(time=self._engine.now, breakdown=CpuBreakdown.from_utilization(utilization))
        )
        self._last_snapshot = snapshot
        self._engine.schedule(self._interval, self._sample, priority=EventPriority.MEASUREMENT)

    # -------------------------------------------------------------- results
    def timeseries(self) -> List[Dict[str, float]]:
        """Per-interval samples as dictionaries (time + percentages)."""
        rows = []
        for sample in self._samples:
            row = {"time_s": sample.time}
            row.update(sample.breakdown.as_percent())
            rows.append(row)
        return rows

    def overall(self) -> CpuBreakdown:
        """Breakdown over the whole measurement window (post-warm-up)."""
        since = self._measure_start_snapshot
        utilization = self._kernel.accounting.utilization(self._engine.now, since)
        return CpuBreakdown.from_utilization(utilization)
