"""Measurement utilities: latency percentiles, CPU breakdowns, time series."""

from .cpu import CpuBreakdown, CpuUtilizationSampler
from .latency import LatencyCollector, LatencyStats, ReservoirCollector, merge_stats
from .timeseries import TimeSeries, TimeSeriesSet

__all__ = [
    "CpuBreakdown",
    "CpuUtilizationSampler",
    "LatencyCollector",
    "LatencyStats",
    "ReservoirCollector",
    "merge_stats",
    "TimeSeries",
    "TimeSeriesSet",
]
