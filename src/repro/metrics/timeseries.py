"""Generic time-series recording (used for the Figure 10 production plot)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ExperimentError

__all__ = ["TimeSeries", "TimeSeriesSet"]


@dataclass(frozen=True)
class _Point:
    time: float
    value: float


class TimeSeries:
    """An append-only (time, value) series with basic summarisation."""

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._points: List[_Point] = []

    def __len__(self) -> int:
        return len(self._points)

    @classmethod
    def from_function(
        cls,
        name: str,
        fn,
        start: float,
        stop: float,
        step: float,
        unit: str = "",
    ) -> "TimeSeries":
        """Sample ``fn(t)`` at ``start, start + step, ...`` up to ``stop``.

        Sample times are computed as ``start + i * step`` (not accumulated),
        so the series is a pure function of its arguments — used to record
        the offered-load curve of time-varying arrival models.
        """
        if step <= 0:
            raise ExperimentError("from_function step must be positive")
        if stop < start:
            raise ExperimentError("from_function needs stop >= start")
        series = cls(name, unit)
        samples = int((stop - start) / step) + 1
        for index in range(samples):
            t = start + index * step
            series.append(t, float(fn(t)))
        return series

    def append(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1].time:
            raise ExperimentError(
                f"time series {self.name!r} must be appended in time order "
                f"({time} < {self._points[-1].time})"
            )
        self._points.append(_Point(time, float(value)))

    def times(self) -> np.ndarray:
        return np.asarray([p.time for p in self._points], dtype=float)

    def values(self) -> np.ndarray:
        return np.asarray([p.value for p in self._points], dtype=float)

    def mean(self) -> float:
        return float(self.values().mean()) if self._points else 0.0

    def maximum(self) -> float:
        return float(self.values().max()) if self._points else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.values(), q)) if self._points else 0.0

    def resample(self, bucket: float) -> "TimeSeries":
        """Average values into fixed-width buckets (for plotting long runs)."""
        if bucket <= 0:
            raise ExperimentError("resample bucket must be positive")
        result = TimeSeries(self.name, self.unit)
        if not self._points:
            return result
        times = self.times()
        values = self.values()
        start = times[0]
        edges = np.arange(start, times[-1] + bucket, bucket)
        indices = np.digitize(times, edges)
        for bucket_index in np.unique(indices):
            mask = indices == bucket_index
            result.append(float(times[mask].mean()), float(values[mask].mean()))
        return result

    def rows(self) -> List[Tuple[float, float]]:
        return [(p.time, p.value) for p in self._points]


class TimeSeriesSet:
    """A named collection of time series sharing one experiment."""

    def __init__(self) -> None:
        self._series: Dict[str, TimeSeries] = {}

    def series(self, name: str, unit: str = "") -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name, unit)
        return self._series[name]

    def names(self) -> Sequence[str]:
        return tuple(self._series)

    def as_table(self) -> List[Dict[str, float]]:
        """Align all series on the union of their timestamps (nearest sample)."""
        rows: List[Dict[str, float]] = []
        all_times = sorted({t for s in self._series.values() for t in s.times()})
        for time in all_times:
            row: Dict[str, float] = {"time_s": time}
            for name, series in self._series.items():
                times = series.times()
                if times.size == 0:
                    continue
                index = int(np.argmin(np.abs(times - time)))
                row[name] = float(series.values()[index])
            rows.append(row)
        return rows
