"""Latency collection and percentile statistics.

The paper's key metric is the 99th percentile of query response latency,
always reported alongside the median and 95th percentile.  The collector
below stores raw samples (an experiment produces at most a few hundred
thousand queries, which is cheap) and computes exact empirical percentiles
with numpy; a streaming reservoir variant is provided for the very long
production-trace experiment (Figure 10).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from ..errors import ExperimentError
from ..units import to_millis

__all__ = [
    "LatencyStats",
    "LatencyCollector",
    "SlidingLatencyWindow",
    "ReservoirCollector",
    "LatencyDigest",
]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency distribution, in seconds."""

    count: int
    dropped: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    maximum: float

    @property
    def drop_rate(self) -> float:
        total = self.count + self.dropped
        return self.dropped / total if total else 0.0

    def as_millis(self) -> Dict[str, float]:
        """The same statistics converted to milliseconds (for paper-style tables)."""
        return {
            "count": float(self.count),
            "dropped": float(self.dropped),
            "drop_rate_pct": self.drop_rate * 100.0,
            "mean_ms": to_millis(self.mean),
            "p50_ms": to_millis(self.p50),
            "p95_ms": to_millis(self.p95),
            "p99_ms": to_millis(self.p99),
            "p999_ms": to_millis(self.p999),
            "max_ms": to_millis(self.maximum),
        }

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _as_nonnegative_array(latencies: Iterable[float]) -> np.ndarray:
    """Coerce bulk samples to float64 and reject negative values."""
    values = np.asarray(
        latencies if isinstance(latencies, np.ndarray) else list(latencies),
        dtype=np.float64,
    )
    if values.size and np.any(values < 0):
        raise ExperimentError(f"negative latency recorded: {float(values.min())}")
    return values


def _stats_from_array(values: np.ndarray, dropped: int) -> LatencyStats:
    if values.size == 0:
        return LatencyStats(0, dropped, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    p50, p95, p99, p999 = np.percentile(values, [50.0, 95.0, 99.0, 99.9])
    return LatencyStats(
        count=int(values.size),
        dropped=dropped,
        mean=float(values.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        p999=float(p999),
        maximum=float(values.max()),
    )


class LatencyCollector:
    """Collects every latency sample produced after the warm-up boundary.

    Samples live in a preallocated, amortised-doubling ``float64`` buffer, so
    per-query recording is a single store, bulk ingestion (the sampled cluster
    model pools hundreds of thousands of per-machine samples) is one
    vectorised copy, and statistics are computed directly on the buffer view
    without materialising an intermediate list.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, warmup_end: float = 0.0, observer=None) -> None:
        self._warmup_end = warmup_end
        self._buffer = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._count = 0
        self._dropped = 0
        self._dropped_warmup = 0
        self._total_seen = 0
        #: Optional tee fed every served sample (including warmup) — e.g. a
        #: :class:`SlidingLatencyWindow` driving a latency-feedback controller,
        #: which must see live latencies the moment they happen.
        self._observer = observer

    @property
    def warmup_end(self) -> float:
        return self._warmup_end

    @property
    def sample_count(self) -> int:
        return self._count

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def total_seen(self) -> int:
        return self._total_seen

    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        if needed <= self._buffer.size:
            return
        capacity = self._buffer.size
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._count] = self._buffer[: self._count]
        self._buffer = grown

    def record(self, completion_time: float, latency: float) -> None:
        """Record a successfully answered query.

        This is the per-query hot path: one bounds check, one store into the
        preallocated buffer (growth is amortised through :meth:`_reserve`).
        """
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._total_seen += 1
        if self._observer is not None:
            self._observer.record(completion_time, latency)
        if completion_time < self._warmup_end:
            return
        count = self._count
        if count >= self._buffer.size:
            self._reserve(1)
        self._buffer[count] = latency
        self._count = count + 1

    def record_drop(self, drop_time: float) -> None:
        """Record a query dropped (timed out) at ``drop_time``."""
        self._total_seen += 1
        if drop_time < self._warmup_end:
            self._dropped_warmup += 1
            return
        self._dropped += 1

    def extend(self, latencies: Iterable[float]) -> None:
        """Bulk-add post-warmup samples (used by the sampled cluster model)."""
        values = _as_nonnegative_array(latencies)
        if values.size == 0:
            return
        self._reserve(values.size)
        self._buffer[self._count: self._count + values.size] = values
        self._count += values.size
        self._total_seen += int(values.size)

    def samples(self) -> np.ndarray:
        return self._buffer[: self._count].copy()

    def _view(self) -> np.ndarray:
        return self._buffer[: self._count]

    def stats(self) -> LatencyStats:
        return _stats_from_array(self._view(), self._dropped)

    def percentile(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        return float(np.percentile(self._view(), q))

    def percentile_since(self, cursor: int, q: float) -> "float | None":
        """The q-th percentile of samples recorded at index ``cursor`` on.

        Telemetry probes use this with a sample-count cursor to report the
        latency distribution of each probe interval straight off the
        existing buffer — no per-sample tee into a second window structure.
        ``None`` when no samples arrived since the cursor.
        """
        if cursor < 0:
            raise ExperimentError(f"negative sample cursor: {cursor}")
        if cursor >= self._count:
            return None
        return float(np.percentile(self._buffer[cursor: self._count], q))


class SlidingLatencyWindow:
    """Latency percentiles over a sliding wall-clock window.

    Feeds latency-feedback controllers (e.g. the PID challenger): the
    experiment's :class:`LatencyCollector` tees every served sample here via
    its ``observer`` hook, and the controller asks for the windowed P99 at
    poll time.  Samples older than ``window`` seconds are pruned lazily.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ExperimentError("sliding latency window must be positive")
        self._window = window
        self._times: deque = deque()
        self._values: deque = deque()

    @property
    def window(self) -> float:
        return self._window

    def __len__(self) -> int:
        return len(self._values)

    def record(self, completion_time: float, latency: float) -> None:
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._times.append(completion_time)
        self._values.append(latency)
        self._prune(completion_time)

    def percentile(self, q: float, now: float) -> "float | None":
        """The q-th percentile of samples in ``[now - window, now]``.

        ``None`` when the window holds no samples (callers hold their last
        decision rather than acting on a fabricated zero).
        """
        self._prune(now)
        if not self._values:
            return None
        values = np.fromiter(self._values, dtype=np.float64, count=len(self._values))
        return float(np.percentile(values, q))

    def p99(self, now: float) -> "float | None":
        return self.percentile(99.0, now)

    def _prune(self, now: float) -> None:
        cutoff = now - self._window
        times, values = self._times, self._values
        while times and times[0] < cutoff:
            times.popleft()
            values.popleft()


class ReservoirCollector:
    """Fixed-size uniform reservoir sampler for very long runs.

    Keeps an unbiased sample of the latency distribution with bounded memory,
    used by the hour-long 650-machine production experiment where storing
    every TLA response would be wasteful.
    """

    def __init__(self, capacity: int = 100_000, seed: int = 0) -> None:
        if capacity < 1:
            raise ExperimentError("reservoir capacity must be >= 1")
        self._capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._reservoir: List[float] = []
        self._seen = 0
        self._dropped = 0

    @property
    def seen(self) -> int:
        return self._seen

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._seen += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(latency)
            return
        index = int(self._rng.integers(0, self._seen))
        if index < self._capacity:
            self._reservoir[index] = latency

    def record_drop(self) -> None:
        self._dropped += 1

    def extend(self, latencies: Iterable[float]) -> None:
        """Bulk-add samples with one vectorised reservoir pass (Algorithm R).

        Statistically equivalent to calling :meth:`record` per value (the
        replacement index for the i-th value is drawn against the stream
        position at that value, and overlapping writes land in stream order),
        though the exact draws differ because the RNG is consumed in one batch.
        """
        values = _as_nonnegative_array(latencies)
        if values.size == 0:
            return
        fill = min(self._capacity - len(self._reservoir), values.size)
        if fill > 0:
            self._reservoir.extend(values[:fill].tolist())
            self._seen += fill
            values = values[fill:]
        if values.size == 0:
            return
        positions = self._seen + 1 + np.arange(values.size)
        indices = self._rng.integers(0, positions)
        self._seen += int(values.size)
        mask = indices < self._capacity
        if np.any(mask):
            reservoir = np.asarray(self._reservoir, dtype=np.float64)
            reservoir[indices[mask]] = values[mask]
            self._reservoir = reservoir.tolist()

    def stats(self) -> LatencyStats:
        return _stats_from_array(np.asarray(self._reservoir, dtype=float), self._dropped)


class LatencyDigest:
    """Exactly-mergeable latency summary over fixed log-spaced bins.

    The fleet harness aggregates latency behaviour across thousands of
    machines simulated in separate shards (often separate processes), so it
    cannot pool raw samples the way :class:`LatencyCollector` does.  A digest
    is a histogram over a *fixed* geometric bin grid plus exact count / sum /
    max accumulators: merging the digests of disjoint shards yields, bit for
    bit, the digest of the union of their samples, so every statistic derived
    from a merged digest is independent of how the fleet was sharded.

    Percentiles are resolved to the geometric midpoint of the covering bin;
    with the default 512 bins spanning 20 us .. 120 s the relative
    quantisation error is ~1.5 %, far below the machine-to-machine variation
    the fleet model cares about.
    """

    DEFAULT_BINS = 512
    DEFAULT_LOWEST = 20e-6
    DEFAULT_HIGHEST = 120.0

    def __init__(
        self,
        bins: int = DEFAULT_BINS,
        lowest: float = DEFAULT_LOWEST,
        highest: float = DEFAULT_HIGHEST,
    ) -> None:
        if bins < 1:
            raise ExperimentError("digest needs at least one bin")
        if not 0.0 < lowest < highest:
            raise ExperimentError("digest bounds must satisfy 0 < lowest < highest")
        self._bins = bins
        self._lowest = float(lowest)
        self._highest = float(highest)
        self._edges = np.geomspace(self._lowest, self._highest, bins + 1)
        # Layout: [underflow, bin 1..bins, overflow].
        self._counts = np.zeros(bins + 2, dtype=np.int64)
        self._sum = 0.0
        self._max = 0.0
        self._dropped = 0

    # ---------------------------------------------------------------- identity
    @property
    def grid(self) -> tuple:
        """The (bins, lowest, highest) triple two digests must share to merge."""
        return (self._bins, self._lowest, self._highest)

    @property
    def edges(self) -> np.ndarray:
        """The ``bins + 1`` geometric bin edges (read-only view).

        Exposed so bulk producers (the vectorised fleet shard) can bin large
        sample blocks themselves with one batched ``searchsorted``/``bincount``
        pass and feed the result through :meth:`add_counts`.
        """
        view = self._edges.view()
        view.flags.writeable = False
        return view

    @property
    def counts_size(self) -> int:
        """Length of the count vector :meth:`add_counts` expects
        (``bins + 2``: underflow, the bins, overflow)."""
        return self._counts.size

    @property
    def count(self) -> int:
        return int(self._counts.sum())

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def maximum(self) -> float:
        return self._max

    # --------------------------------------------------------------- mutation
    def add(self, latencies: Iterable[float]) -> None:
        """Accumulate a batch of samples (seconds)."""
        values = _as_nonnegative_array(latencies)
        if values.size == 0:
            return
        indices = np.searchsorted(self._edges, values, side="right")
        self._counts += np.bincount(indices, minlength=self._counts.size).astype(np.int64)
        self._sum += float(values.sum())
        self._max = max(self._max, float(values.max()))

    def add_counts(self, counts: np.ndarray, total: float, maximum: float) -> None:
        """Accumulate pre-binned samples: the bulk-producer fast path.

        ``counts`` must be a full count vector over this digest's layout
        (``[underflow, bin 1..bins, overflow]``, see :attr:`counts_size`),
        already binned against :attr:`edges` with ``side="right"`` semantics —
        exactly what ``np.searchsorted(digest.edges, values, side="right")``
        followed by ``np.bincount`` produces.  ``total`` and ``maximum`` are
        the sum and max of the underlying samples; calling this is
        count-identical and sum/max-identical to :meth:`add` on the raw
        values, without this digest touching them.
        """
        counts = np.asarray(counts)
        if counts.shape != self._counts.shape:
            raise ExperimentError(
                f"count vector has shape {counts.shape}, digest expects "
                f"{self._counts.shape} (underflow + {self._bins} bins + overflow)"
            )
        if not np.issubdtype(counts.dtype, np.integer):
            raise ExperimentError("count vector must be integral")
        if np.any(counts < 0):
            raise ExperimentError("count vector must be non-negative")
        added = int(counts.sum())
        if added == 0:
            return
        if maximum < 0.0:
            raise ExperimentError(f"negative latency recorded: {maximum}")
        self._counts += counts.astype(np.int64, copy=False)
        self._sum += float(total)
        self._max = max(self._max, float(maximum))

    def record_drop(self, count: int = 1) -> None:
        self._dropped += count

    def merge(self, other: "LatencyDigest") -> None:
        """Fold ``other`` into this digest (grids must match exactly)."""
        if self.grid != other.grid:
            raise ExperimentError(
                f"cannot merge digests with different grids: {self.grid} vs {other.grid}"
            )
        self._counts += other._counts
        self._sum += other._sum
        self._max = max(self._max, other._max)
        self._dropped += other._dropped

    def copy(self) -> "LatencyDigest":
        clone = LatencyDigest(self._bins, self._lowest, self._highest)
        clone._counts = self._counts.copy()
        clone._sum = self._sum
        clone._max = self._max
        clone._dropped = self._dropped
        return clone

    @classmethod
    def from_samples(cls, latencies: Iterable[float], **grid: float) -> "LatencyDigest":
        digest = cls(**grid)
        digest.add(latencies)
        return digest

    @classmethod
    def merged(cls, parts: Sequence["LatencyDigest"]) -> "LatencyDigest":
        """A new digest holding the union of ``parts`` (empty parts allowed)."""
        parts = list(parts)
        if not parts:
            return cls()
        merged = parts[0].copy()
        for part in parts[1:]:
            merged.merge(part)
        return merged

    # ---------------------------------------------------------------- queries
    def percentile(self, q: float) -> float:
        """The q-th percentile, resolved within the covering bin."""
        total = self.count
        if total == 0:
            return 0.0
        target = q / 100.0 * total
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, max(target, 1e-12), side="left"))
        index = min(index, self._bins + 1)
        if index == 0:
            value = self._lowest
        elif index == self._bins + 1:
            value = self._max
        else:
            value = float(np.sqrt(self._edges[index - 1] * self._edges[index]))
        return min(value, self._max)

    def stats(self) -> LatencyStats:
        total = self.count
        if total == 0:
            return LatencyStats(0, self._dropped, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencyStats(
            count=total,
            dropped=self._dropped,
            mean=self._sum / total,
            p50=self.percentile(50.0),
            p95=self.percentile(95.0),
            p99=self.percentile(99.0),
            p999=self.percentile(99.9),
            maximum=self._max,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyDigest(count={self.count}, max={self._max:.6f})"


def merge_stats(parts: Sequence[LatencyStats]) -> LatencyStats:
    """Approximate merge of per-node statistics (weighted by sample count).

    Percentiles cannot be merged exactly from summaries; this helper produces
    a count-weighted average which is good enough for displaying per-layer
    roll-ups, and is only used for reporting (never for pass/fail checks).
    """
    parts = [p for p in parts if p.count > 0]
    if not parts:
        return LatencyStats.empty()
    total = sum(p.count for p in parts)
    dropped = sum(p.dropped for p in parts)

    def weighted(attr: str) -> float:
        return sum(getattr(p, attr) * p.count for p in parts) / total

    return LatencyStats(
        count=total,
        dropped=dropped,
        mean=weighted("mean"),
        p50=weighted("p50"),
        p95=weighted("p95"),
        p99=weighted("p99"),
        p999=weighted("p999"),
        maximum=max(p.maximum for p in parts),
    )
