"""Latency collection and percentile statistics.

The paper's key metric is the 99th percentile of query response latency,
always reported alongside the median and 95th percentile.  The collector
below stores raw samples (an experiment produces at most a few hundred
thousand queries, which is cheap) and computes exact empirical percentiles
with numpy; a streaming reservoir variant is provided for the very long
production-trace experiment (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ExperimentError
from ..units import to_millis

__all__ = ["LatencyStats", "LatencyCollector", "ReservoirCollector"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency distribution, in seconds."""

    count: int
    dropped: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    maximum: float

    @property
    def drop_rate(self) -> float:
        total = self.count + self.dropped
        return self.dropped / total if total else 0.0

    def as_millis(self) -> Dict[str, float]:
        """The same statistics converted to milliseconds (for paper-style tables)."""
        return {
            "count": float(self.count),
            "dropped": float(self.dropped),
            "drop_rate_pct": self.drop_rate * 100.0,
            "mean_ms": to_millis(self.mean),
            "p50_ms": to_millis(self.p50),
            "p95_ms": to_millis(self.p95),
            "p99_ms": to_millis(self.p99),
            "p999_ms": to_millis(self.p999),
            "max_ms": to_millis(self.maximum),
        }

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _as_nonnegative_array(latencies: Iterable[float]) -> np.ndarray:
    """Coerce bulk samples to float64 and reject negative values."""
    values = np.asarray(
        latencies if isinstance(latencies, np.ndarray) else list(latencies),
        dtype=np.float64,
    )
    if values.size and np.any(values < 0):
        raise ExperimentError(f"negative latency recorded: {float(values.min())}")
    return values


def _stats_from_array(values: np.ndarray, dropped: int) -> LatencyStats:
    if values.size == 0:
        return LatencyStats(0, dropped, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    p50, p95, p99, p999 = np.percentile(values, [50.0, 95.0, 99.0, 99.9])
    return LatencyStats(
        count=int(values.size),
        dropped=dropped,
        mean=float(values.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        p999=float(p999),
        maximum=float(values.max()),
    )


class LatencyCollector:
    """Collects every latency sample produced after the warm-up boundary.

    Samples live in a preallocated, amortised-doubling ``float64`` buffer, so
    per-query recording is a single store, bulk ingestion (the sampled cluster
    model pools hundreds of thousands of per-machine samples) is one
    vectorised copy, and statistics are computed directly on the buffer view
    without materialising an intermediate list.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, warmup_end: float = 0.0) -> None:
        self._warmup_end = warmup_end
        self._buffer = np.empty(self._INITIAL_CAPACITY, dtype=np.float64)
        self._count = 0
        self._dropped = 0
        self._dropped_warmup = 0
        self._total_seen = 0

    @property
    def warmup_end(self) -> float:
        return self._warmup_end

    @property
    def sample_count(self) -> int:
        return self._count

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def total_seen(self) -> int:
        return self._total_seen

    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        if needed <= self._buffer.size:
            return
        capacity = self._buffer.size
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=np.float64)
        grown[: self._count] = self._buffer[: self._count]
        self._buffer = grown

    def record(self, completion_time: float, latency: float) -> None:
        """Record a successfully answered query."""
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._total_seen += 1
        if completion_time < self._warmup_end:
            return
        self._reserve(1)
        self._buffer[self._count] = latency
        self._count += 1

    def record_drop(self, drop_time: float) -> None:
        """Record a query dropped (timed out) at ``drop_time``."""
        self._total_seen += 1
        if drop_time < self._warmup_end:
            self._dropped_warmup += 1
            return
        self._dropped += 1

    def extend(self, latencies: Iterable[float]) -> None:
        """Bulk-add post-warmup samples (used by the sampled cluster model)."""
        values = _as_nonnegative_array(latencies)
        if values.size == 0:
            return
        self._reserve(values.size)
        self._buffer[self._count: self._count + values.size] = values
        self._count += values.size
        self._total_seen += int(values.size)

    def samples(self) -> np.ndarray:
        return self._buffer[: self._count].copy()

    def _view(self) -> np.ndarray:
        return self._buffer[: self._count]

    def stats(self) -> LatencyStats:
        return _stats_from_array(self._view(), self._dropped)

    def percentile(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        return float(np.percentile(self._view(), q))


class ReservoirCollector:
    """Fixed-size uniform reservoir sampler for very long runs.

    Keeps an unbiased sample of the latency distribution with bounded memory,
    used by the hour-long 650-machine production experiment where storing
    every TLA response would be wasteful.
    """

    def __init__(self, capacity: int = 100_000, seed: int = 0) -> None:
        if capacity < 1:
            raise ExperimentError("reservoir capacity must be >= 1")
        self._capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._reservoir: List[float] = []
        self._seen = 0
        self._dropped = 0

    @property
    def seen(self) -> int:
        return self._seen

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._seen += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(latency)
            return
        index = int(self._rng.integers(0, self._seen))
        if index < self._capacity:
            self._reservoir[index] = latency

    def record_drop(self) -> None:
        self._dropped += 1

    def extend(self, latencies: Iterable[float]) -> None:
        """Bulk-add samples with one vectorised reservoir pass (Algorithm R).

        Statistically equivalent to calling :meth:`record` per value (the
        replacement index for the i-th value is drawn against the stream
        position at that value, and overlapping writes land in stream order),
        though the exact draws differ because the RNG is consumed in one batch.
        """
        values = _as_nonnegative_array(latencies)
        if values.size == 0:
            return
        fill = min(self._capacity - len(self._reservoir), values.size)
        if fill > 0:
            self._reservoir.extend(values[:fill].tolist())
            self._seen += fill
            values = values[fill:]
        if values.size == 0:
            return
        positions = self._seen + 1 + np.arange(values.size)
        indices = self._rng.integers(0, positions)
        self._seen += int(values.size)
        mask = indices < self._capacity
        if np.any(mask):
            reservoir = np.asarray(self._reservoir, dtype=np.float64)
            reservoir[indices[mask]] = values[mask]
            self._reservoir = reservoir.tolist()

    def stats(self) -> LatencyStats:
        return _stats_from_array(np.asarray(self._reservoir, dtype=float), self._dropped)


def merge_stats(parts: Sequence[LatencyStats]) -> LatencyStats:
    """Approximate merge of per-node statistics (weighted by sample count).

    Percentiles cannot be merged exactly from summaries; this helper produces
    a count-weighted average which is good enough for displaying per-layer
    roll-ups, and is only used for reporting (never for pass/fail checks).
    """
    parts = [p for p in parts if p.count > 0]
    if not parts:
        return LatencyStats.empty()
    total = sum(p.count for p in parts)
    dropped = sum(p.dropped for p in parts)

    def weighted(attr: str) -> float:
        return sum(getattr(p, attr) * p.count for p in parts) / total

    return LatencyStats(
        count=total,
        dropped=dropped,
        mean=weighted("mean"),
        p50=weighted("p50"),
        p95=weighted("p95"),
        p99=weighted("p99"),
        p999=weighted("p999"),
        maximum=max(p.maximum for p in parts),
    )
