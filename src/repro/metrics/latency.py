"""Latency collection and percentile statistics.

The paper's key metric is the 99th percentile of query response latency,
always reported alongside the median and 95th percentile.  The collector
below stores raw samples (an experiment produces at most a few hundred
thousand queries, which is cheap) and computes exact empirical percentiles
with numpy; a streaming reservoir variant is provided for the very long
production-trace experiment (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ExperimentError
from ..units import to_millis

__all__ = ["LatencyStats", "LatencyCollector", "ReservoirCollector"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency distribution, in seconds."""

    count: int
    dropped: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    maximum: float

    @property
    def drop_rate(self) -> float:
        total = self.count + self.dropped
        return self.dropped / total if total else 0.0

    def as_millis(self) -> Dict[str, float]:
        """The same statistics converted to milliseconds (for paper-style tables)."""
        return {
            "count": float(self.count),
            "dropped": float(self.dropped),
            "drop_rate_pct": self.drop_rate * 100.0,
            "mean_ms": to_millis(self.mean),
            "p50_ms": to_millis(self.p50),
            "p95_ms": to_millis(self.p95),
            "p99_ms": to_millis(self.p99),
            "p999_ms": to_millis(self.p999),
            "max_ms": to_millis(self.maximum),
        }

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def _stats_from_array(values: np.ndarray, dropped: int) -> LatencyStats:
    if values.size == 0:
        return LatencyStats(0, dropped, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    p50, p95, p99, p999 = np.percentile(values, [50.0, 95.0, 99.0, 99.9])
    return LatencyStats(
        count=int(values.size),
        dropped=dropped,
        mean=float(values.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        p999=float(p999),
        maximum=float(values.max()),
    )


class LatencyCollector:
    """Collects every latency sample produced after the warm-up boundary."""

    def __init__(self, warmup_end: float = 0.0) -> None:
        self._warmup_end = warmup_end
        self._samples: List[float] = []
        self._dropped = 0
        self._dropped_warmup = 0
        self._total_seen = 0

    @property
    def warmup_end(self) -> float:
        return self._warmup_end

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def total_seen(self) -> int:
        return self._total_seen

    def record(self, completion_time: float, latency: float) -> None:
        """Record a successfully answered query."""
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._total_seen += 1
        if completion_time < self._warmup_end:
            return
        self._samples.append(latency)

    def record_drop(self, drop_time: float) -> None:
        """Record a query dropped (timed out) at ``drop_time``."""
        self._total_seen += 1
        if drop_time < self._warmup_end:
            self._dropped_warmup += 1
            return
        self._dropped += 1

    def extend(self, latencies: Iterable[float]) -> None:
        """Bulk-add post-warmup samples (used by the sampled cluster model)."""
        for value in latencies:
            if value < 0:
                raise ExperimentError(f"negative latency recorded: {value}")
            self._samples.append(float(value))
            self._total_seen += 1

    def samples(self) -> np.ndarray:
        return np.asarray(self._samples, dtype=float)

    def stats(self) -> LatencyStats:
        return _stats_from_array(self.samples(), self._dropped)

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))


class ReservoirCollector:
    """Fixed-size uniform reservoir sampler for very long runs.

    Keeps an unbiased sample of the latency distribution with bounded memory,
    used by the hour-long 650-machine production experiment where storing
    every TLA response would be wasteful.
    """

    def __init__(self, capacity: int = 100_000, seed: int = 0) -> None:
        if capacity < 1:
            raise ExperimentError("reservoir capacity must be >= 1")
        self._capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._reservoir: List[float] = []
        self._seen = 0
        self._dropped = 0

    @property
    def seen(self) -> int:
        return self._seen

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ExperimentError(f"negative latency recorded: {latency}")
        self._seen += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(latency)
            return
        index = int(self._rng.integers(0, self._seen))
        if index < self._capacity:
            self._reservoir[index] = latency

    def record_drop(self) -> None:
        self._dropped += 1

    def stats(self) -> LatencyStats:
        return _stats_from_array(np.asarray(self._reservoir, dtype=float), self._dropped)


def merge_stats(parts: Sequence[LatencyStats]) -> LatencyStats:
    """Approximate merge of per-node statistics (weighted by sample count).

    Percentiles cannot be merged exactly from summaries; this helper produces
    a count-weighted average which is good enough for displaying per-layer
    roll-ups, and is only used for reporting (never for pass/fail checks).
    """
    parts = [p for p in parts if p.count > 0]
    if not parts:
        return LatencyStats.empty()
    total = sum(p.count for p in parts)
    dropped = sum(p.dropped for p in parts)

    def weighted(attr: str) -> float:
        return sum(getattr(p, attr) * p.count for p in parts) / total

    return LatencyStats(
        count=total,
        dropped=dropped,
        mean=weighted("mean"),
        p50=weighted("p50"),
        p95=weighted("p95"),
        p99=weighted("p99"),
        p999=weighted("p999"),
        maximum=max(p.maximum for p in parts),
    )
