"""CPU time accounting per tenant category and per process.

The paper's figures break machine CPU time into Primary / Secondary / OS /
Idle.  The scheduler charges every executed CPU slice here; idle time is
whatever remains of ``cores x wall-clock``.  Utilisation can be queried both
cumulatively and over an interval (by differencing snapshots), which is what
the metrics samplers and the time-series figure (Fig. 10) use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SchedulerError
from .process import TenantCategory

__all__ = ["CpuSnapshot", "CpuAccounting"]


@dataclass(frozen=True)
class CpuSnapshot:
    """Cumulative CPU seconds consumed per category at a point in time."""

    time: float
    busy_by_category: Dict[str, float]

    def total_busy(self) -> float:
        return sum(self.busy_by_category.values())


class CpuAccounting:
    """Accumulates CPU busy time for one machine."""

    def __init__(self, logical_cores: int, start_time: float = 0.0) -> None:
        if logical_cores < 1:
            raise SchedulerError("accounting needs at least one core")
        self._cores = logical_cores
        self._start_time = start_time
        self._busy: Dict[str, float] = {
            TenantCategory.PRIMARY: 0.0,
            TenantCategory.SECONDARY: 0.0,
            TenantCategory.SYSTEM: 0.0,
        }
        self._busy_by_process: Dict[str, float] = {}

    @property
    def logical_cores(self) -> int:
        return self._cores

    # --------------------------------------------------------------- charging
    def charge(self, category: str, seconds: float, process_name: str = "") -> None:
        """Charge ``seconds`` of core time to ``category`` (and a process)."""
        if seconds < 0:
            raise SchedulerError(f"cannot charge negative CPU time ({seconds})")
        if category not in self._busy:
            self._busy[category] = 0.0
        self._busy[category] += seconds
        if process_name:
            self._busy_by_process[process_name] = (
                self._busy_by_process.get(process_name, 0.0) + seconds
            )

    def charge_os(self, seconds: float) -> None:
        """Charge kernel overhead (context switches, interrupts, syscalls)."""
        if seconds < 0:
            raise SchedulerError(f"cannot charge negative CPU time ({seconds})")
        # Direct accumulate — the SYSTEM bucket is pre-seeded and this runs
        # for every context switch and I/O completion.
        self._busy[TenantCategory.SYSTEM] += seconds

    # ---------------------------------------------------------------- queries
    def busy_seconds(self, category: str) -> float:
        return self._busy.get(category, 0.0)

    def process_seconds(self, process_name: str) -> float:
        return self._busy_by_process.get(process_name, 0.0)

    def snapshot(self, now: float) -> CpuSnapshot:
        return CpuSnapshot(time=now, busy_by_category=dict(self._busy))

    def utilization(self, now: float, since: CpuSnapshot = None) -> Dict[str, float]:
        """Per-category utilisation fractions (of total core-time) since
        ``since`` (or since the start of accounting)."""
        if since is None:
            base_time = self._start_time
            base_busy: Dict[str, float] = {}
        else:
            base_time = since.time
            base_busy = since.busy_by_category
        elapsed = now - base_time
        if elapsed <= 0:
            return {category: 0.0 for category in self._busy} | {"idle": 1.0}
        capacity = elapsed * self._cores
        result: Dict[str, float] = {}
        busy_total = 0.0
        for category, value in self._busy.items():
            delta = value - base_busy.get(category, 0.0)
            fraction = max(0.0, delta) / capacity
            result[category] = fraction
            busy_total += fraction
        result["idle"] = max(0.0, 1.0 - busy_total)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuAccounting(cores={self._cores}, busy={self._busy})"
