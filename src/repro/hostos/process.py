"""Simulated OS processes.

A process groups threads, owns memory, accumulates CPU and I/O statistics and
may be placed in a :class:`~repro.hostos.jobobject.JobObject` so PerfIso can
restrict it (affinity, CPU rate, memory) without knowing anything about the
code it runs — exactly the interface the paper relies on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from ..errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .jobobject import JobObject
    from .thread import SimThread

__all__ = ["TenantCategory", "OsProcess"]


class TenantCategory:
    """Well-known tenant categories used for CPU accounting."""

    PRIMARY = "primary"
    SECONDARY = "secondary"
    SYSTEM = "os"

    ALL = (PRIMARY, SECONDARY, SYSTEM)


class OsProcess:
    """One OS process (a primary service, a batch job, or a system daemon)."""

    def __init__(self, pid: int, name: str, category: str, created_at: float) -> None:
        if category not in TenantCategory.ALL:
            raise SchedulerError(
                f"process category must be one of {TenantCategory.ALL}, got {category!r}"
            )
        self.pid = pid
        self.name = name
        self.category = category
        self.created_at = created_at
        self.job: Optional["JobObject"] = None
        self.threads: List["SimThread"] = []
        self.alive = True
        # resource usage
        self.memory_bytes = 0
        self.cpu_time = 0.0
        self.io_requests_completed = 0
        self.io_bytes_completed = 0
        self.io_requests_by_volume: Dict[str, int] = {}
        self.io_bytes_by_volume: Dict[str, int] = {}

    # -------------------------------------------------------------- threads
    def register_thread(self, thread: "SimThread") -> None:
        if not self.alive:
            raise SchedulerError(f"cannot add a thread to dead process {self.name!r}")
        self.threads.append(thread)

    def live_threads(self) -> List["SimThread"]:
        return [t for t in self.threads if not t.terminated]

    # ------------------------------------------------------------ accounting
    def charge_cpu(self, seconds: float) -> None:
        self.cpu_time += seconds

    def charge_io(self, volume: str, size_bytes: int) -> None:
        self.io_requests_completed += 1
        self.io_bytes_completed += size_bytes
        self.io_requests_by_volume[volume] = self.io_requests_by_volume.get(volume, 0) + 1
        self.io_bytes_by_volume[volume] = (
            self.io_bytes_by_volume.get(volume, 0) + size_bytes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OsProcess({self.name!r}, pid={self.pid}, category={self.category}, "
            f"threads={len(self.threads)}, alive={self.alive})"
        )
