"""The kernel facade: the "system call" surface tenants and PerfIso use.

PerfIso is a user-mode service; everything it does goes through ordinary OS
interfaces (Section 4): reading the idle-core bitmask, configuring job
objects, reading per-device I/O statistics, and process lifecycle management.
:class:`Kernel` bundles the scheduler, I/O stack, memory accounting and those
interfaces for one machine.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..config.schema import SchedulerSpec
from ..errors import SchedulerError
from ..hardware.machine import Machine
from ..simulation.engine import SimulationEngine
from .accounting import CpuAccounting, CpuSnapshot
from .iostack import IoStack
from .jobobject import JobObject
from .process import OsProcess, TenantCategory
from .scheduler import Scheduler
from .thread import Phase, SimThread

__all__ = ["Kernel"]


class Kernel:
    """The simulated operating system of one machine."""

    def __init__(
        self,
        engine: SimulationEngine,
        machine: Machine,
        scheduler_spec: Optional[SchedulerSpec] = None,
    ) -> None:
        self._engine = engine
        self._machine = machine
        spec = scheduler_spec if scheduler_spec is not None else SchedulerSpec()
        self.accounting = CpuAccounting(machine.logical_cores, start_time=engine.now)
        self.iostack = IoStack(engine, machine, self.accounting)
        self.scheduler = Scheduler(
            engine, machine.topology, spec, self.accounting, io_submit=self._io_for_thread
        )
        self._processes: Dict[int, OsProcess] = {}
        self._jobs: Dict[str, JobObject] = {}
        self._next_pid = 1000
        self._next_tid = 1

    # ------------------------------------------------------------ properties
    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def logical_cores(self) -> int:
        return self._machine.logical_cores

    # -------------------------------------------------------------- processes
    def create_process(
        self,
        name: str,
        category: str = TenantCategory.SECONDARY,
        memory_bytes: int = 0,
    ) -> OsProcess:
        """Create a process and (optionally) reserve its memory footprint."""
        process = OsProcess(self._next_pid, name, category, self._engine.now)
        self._next_pid += 1
        self._processes[process.pid] = process
        if memory_bytes:
            self._machine.memory.allocate(name, memory_bytes)
            process.memory_bytes = memory_bytes
        return process

    def kill_process(self, process: OsProcess) -> None:
        """Terminate every thread of ``process`` and release its memory."""
        self.scheduler.terminate_process(process)
        freed = self._machine.memory.release_all(process.name)
        process.memory_bytes = max(0, process.memory_bytes - freed)
        if process.job is not None:
            process.job.remove(process)

    def processes(self) -> List[OsProcess]:
        return list(self._processes.values())

    def find_processes(self, category: Optional[str] = None) -> List[OsProcess]:
        """List live processes, optionally filtered by tenant category."""
        return [
            process
            for process in self._processes.values()
            if process.alive and (category is None or process.category == category)
        ]

    # ------------------------------------------------------------ job objects
    def create_job_object(self, name: str) -> JobObject:
        if name in self._jobs:
            raise SchedulerError(f"job object {name!r} already exists")
        job = JobObject(name)
        job.add_listener(self.scheduler.on_job_changed)
        self._jobs[name] = job
        return job

    def job_object(self, name: str) -> JobObject:
        try:
            return self._jobs[name]
        except KeyError:
            raise SchedulerError(f"no job object named {name!r}") from None

    def job_objects(self) -> List[JobObject]:
        return list(self._jobs.values())

    # --------------------------------------------------------------- threads
    def spawn_thread(
        self,
        process: OsProcess,
        program: Sequence[Phase],
        name: Optional[str] = None,
        affinity: Optional[FrozenSet[int]] = None,
        on_complete: Optional[Callable[[SimThread], None]] = None,
    ) -> SimThread:
        """Create a thread in ``process`` and make it runnable immediately."""
        if not process.alive:
            raise SchedulerError(f"cannot spawn a thread in dead process {process.name!r}")
        tid = self._next_tid
        self._next_tid = tid + 1
        thread = SimThread(
            tid=tid,
            name=name or f"{process.name}-t{tid}",
            process=process,
            program=program,
            created_at=self._engine.now,
            affinity=affinity,
            on_complete=on_complete,
        )
        # Inlined process.register_thread — liveness was checked above.
        process.threads.append(thread)
        self.scheduler.add_thread(thread)
        return thread

    def terminate_thread(self, thread: SimThread) -> None:
        self.scheduler.terminate_thread(thread)

    # ----------------------------------------------------------------- memory
    def allocate_memory(self, process: OsProcess, size_bytes: int) -> None:
        self._machine.memory.allocate(process.name, size_bytes)
        process.memory_bytes += size_bytes

    def free_memory(self, process: OsProcess, size_bytes: int) -> None:
        self._machine.memory.release(process.name, size_bytes)
        process.memory_bytes -= size_bytes

    def free_memory_bytes(self) -> int:
        return self._machine.memory.free_bytes

    # --------------------------------------------------------------- syscalls
    def get_idle_core_mask(self) -> int:
        """The Windows-style idle-processor bitmask (bit i set => core i idle)."""
        return self.scheduler.idle_core_mask()

    def get_idle_core_ids(self) -> FrozenSet[int]:
        return self.scheduler.idle_core_ids()

    def idle_core_count(self) -> int:
        return self.scheduler.idle_core_count()

    def cpu_snapshot(self) -> CpuSnapshot:
        return self.accounting.snapshot(self._engine.now)

    def cpu_utilization(self, since: Optional[CpuSnapshot] = None) -> Dict[str, float]:
        return self.accounting.utilization(self._engine.now, since)

    def submit_io(
        self,
        process: OsProcess,
        volume: str,
        op: str,
        size_bytes: int,
        callback=None,
    ) -> None:
        """Asynchronous I/O submission (no thread is blocked)."""
        self.iostack.submit(process, volume, op, size_bytes, callback)

    # ------------------------------------------------------------- internals
    def _io_for_thread(
        self,
        thread: SimThread,
        volume: str,
        op: str,
        size_bytes: int,
        done: Callable[[], None],
    ) -> None:
        self.iostack.submit(thread.process, volume, op, size_bytes, lambda _request: done())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self._machine.name!r}, processes={len(self._processes)})"
