"""Simulated kernel threads.

A thread executes a *program*: an ordered list of phases, each of which is
either a CPU burst (``("cpu", seconds)``, possibly ``math.inf`` for
always-runnable batch threads) or a blocking I/O operation
(``("io", volume, op, size_bytes)``).  The scheduler advances the program;
tenants only build programs and react to completion callbacks.
"""

from __future__ import annotations

import math
from typing import Callable, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import SchedulerError

__all__ = ["ThreadState", "cpu_phase", "io_phase", "SimThread"]

Phase = Tuple


class ThreadState:
    """Lifecycle states of a :class:`SimThread`."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    TERMINATED = "terminated"

    ALL = (NEW, READY, RUNNING, BLOCKED, TERMINATED)


def cpu_phase(duration: float) -> Phase:
    """Build a CPU phase of ``duration`` seconds (``math.inf`` = run forever)."""
    if duration < 0:
        raise SchedulerError(f"cpu phase duration must be >= 0, got {duration}")
    return ("cpu", float(duration))


def io_phase(volume: str, op: str, size_bytes: int) -> Phase:
    """Build a blocking I/O phase against ``volume``."""
    if op not in ("read", "write"):
        raise SchedulerError(f"io phase op must be 'read' or 'write', got {op!r}")
    if size_bytes <= 0:
        raise SchedulerError("io phase size must be positive")
    return ("io", volume, op, int(size_bytes))


class SimThread:
    """One schedulable kernel thread."""

    __slots__ = (
        "tid",
        "name",
        "process",
        "program",
        "phase_index",
        "remaining_in_phase",
        "state",
        "affinity",
        "core_id",
        "on_complete",
        "total_cpu_time",
        "created_at",
        "ready_since",
        "dispatched_at",
        "slice_event",
        "slice_length",
        "slice_rate",
        "slice_reserved",
        "queued_core",
        "queued_job",
        "context_switches",
        "total_ready_wait",
    )

    def __init__(
        self,
        tid: int,
        name: str,
        process,
        program: Sequence[Phase],
        created_at: float,
        affinity: Optional[FrozenSet[int]] = None,
        on_complete: Optional[Callable[["SimThread"], None]] = None,
    ) -> None:
        if not program:
            raise SchedulerError(f"thread {name!r} needs at least one phase")
        self.tid = tid
        self.name = name
        self.process = process
        # Fresh lists are adopted as-is (the per-worker hot path builds one
        # per thread); any other sequence is copied so callers keep ownership.
        self.program: List[Phase] = program if type(program) is list else list(program)
        self.phase_index = 0
        self.remaining_in_phase = self._phase_cpu_duration(self.program[0])
        self.state = ThreadState.NEW
        self.affinity = affinity
        self.core_id: Optional[int] = None
        self.on_complete = on_complete
        self.total_cpu_time = 0.0
        self.created_at = created_at
        self.ready_since: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.slice_event = None
        self.slice_length = 0.0
        self.slice_rate = 1.0
        self.slice_reserved = False
        self.queued_core: Optional[int] = None
        # The job object the thread belonged to when it was enqueued; the
        # scheduler's ready-thread accounting is keyed on it (valid only
        # while the thread sits in a ready queue).
        self.queued_job = None
        self.context_switches = 0
        self.total_ready_wait = 0.0

    # ------------------------------------------------------------ properties
    @property
    def category(self) -> str:
        """Tenant category inherited from the owning process."""
        return self.process.category

    @property
    def current_phase(self) -> Phase:
        return self.program[self.phase_index]

    @property
    def is_cpu_phase(self) -> bool:
        return self.current_phase[0] == "cpu"

    @property
    def is_io_phase(self) -> bool:
        return self.current_phase[0] == "io"

    @property
    def is_runnable_forever(self) -> bool:
        """True for batch threads whose current CPU phase never ends."""
        return self.is_cpu_phase and math.isinf(self.remaining_in_phase)

    @property
    def terminated(self) -> bool:
        return self.state == ThreadState.TERMINATED

    # ------------------------------------------------------------ program
    def advance_phase(self) -> bool:
        """Move to the next phase; return False when the program is finished."""
        self.phase_index += 1
        if self.phase_index >= len(self.program):
            return False
        self.remaining_in_phase = self._phase_cpu_duration(self.current_phase)
        return True

    def extend_program(self, phases: Sequence[Phase]) -> None:
        """Append phases to a thread that has not terminated yet."""
        if self.terminated:
            raise SchedulerError(f"cannot extend terminated thread {self.name!r}")
        self.program.extend(phases)

    @staticmethod
    def _phase_cpu_duration(phase: Phase) -> float:
        return float(phase[1]) if phase[0] == "cpu" else 0.0

    def effective_affinity(self) -> Optional[FrozenSet[int]]:
        """Intersection of the thread's own affinity and its job object's.

        ``None`` means "any core".
        """
        job = self.process.job
        job_affinity = job.cpu_affinity if job is not None else None
        if self.affinity is None:
            return job_affinity
        if job_affinity is None:
            return self.affinity
        return self.affinity & job_affinity

    def can_run_on(self, core_id: int) -> bool:
        affinity = self.effective_affinity()
        return affinity is None or core_id in affinity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.name!r}, tid={self.tid}, state={self.state})"
