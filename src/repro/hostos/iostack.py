"""The kernel I/O stack: request submission, per-process throttling, accounting.

PerfIso cannot see which process caused a given device operation from the
hardware counters alone (Section 4.1), so it throttles I/O *above* the device
layer: every request passes through per-process token buckets (bandwidth and
IOPS) before it reaches the volume.  The DWRR throttler in
:mod:`repro.core.io_throttle` drives those buckets; static limits (e.g. the
HDFS caps of Section 5.3) use the same mechanism.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..errors import ResourceError
from ..hardware.disk import IoRequest
from ..hardware.machine import Machine
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from ..units import micros
from .accounting import CpuAccounting
from .process import OsProcess

__all__ = ["IoLimits", "IoStack"]

#: Kernel CPU overhead charged per completed I/O request (interrupt + stack).
IO_REQUEST_OS_OVERHEAD = micros(8)


class IoLimits:
    """Token-bucket limits for one (process, volume) pair."""

    __slots__ = (
        "bandwidth_limit",
        "iops_limit",
        "byte_tokens",
        "iops_tokens",
        "last_refill",
        "pending",
        "drain_scheduled",
    )

    def __init__(self) -> None:
        self.bandwidth_limit: Optional[float] = None
        self.iops_limit: Optional[float] = None
        self.byte_tokens = 0.0
        self.iops_tokens = 0.0
        self.last_refill = 0.0
        self.pending: Deque[tuple] = deque()
        self.drain_scheduled = False

    @property
    def unlimited(self) -> bool:
        return self.bandwidth_limit is None and self.iops_limit is None


class IoStack:
    """Routes tenant I/O to volumes, enforcing per-process limits."""

    #: Burst window allowed by the token buckets (seconds of accumulated rate).
    BURST_WINDOW = 0.1

    def __init__(
        self,
        engine: SimulationEngine,
        machine: Machine,
        accounting: CpuAccounting,
    ) -> None:
        self._engine = engine
        self._machine = machine
        self._accounting = accounting
        self._limits: Dict[Tuple[str, str], IoLimits] = {}
        # statistics
        self.submitted_requests = 0
        self.completed_requests = 0
        self.throttle_delays = 0
        self.completions_by_key: Dict[Tuple[str, str], int] = {}
        self.bytes_by_key: Dict[Tuple[str, str], int] = {}

    # --------------------------------------------------------------- limits
    def _limits_for(self, process_name: str, volume: str) -> IoLimits:
        key = (process_name, volume)
        limits = self._limits.get(key)
        if limits is None:
            limits = IoLimits()
            limits.last_refill = self._engine.now
            self._limits[key] = limits
        return limits

    def set_bandwidth_limit(
        self, process_name: str, volume: str, bytes_per_s: Optional[float]
    ) -> None:
        """Cap a process's throughput on ``volume`` (``None`` removes the cap)."""
        if bytes_per_s is not None and bytes_per_s <= 0:
            raise ResourceError("bandwidth limit must be positive or None")
        limits = self._limits_for(process_name, volume)
        limits.bandwidth_limit = bytes_per_s
        self._refill(limits)
        self._drain(process_name, volume, limits)

    def set_iops_limit(
        self, process_name: str, volume: str, iops: Optional[float]
    ) -> None:
        """Cap a process's request rate on ``volume`` (``None`` removes the cap)."""
        if iops is not None and iops <= 0:
            raise ResourceError("IOPS limit must be positive or None")
        limits = self._limits_for(process_name, volume)
        limits.iops_limit = iops
        self._refill(limits)
        self._drain(process_name, volume, limits)

    def get_limits(self, process_name: str, volume: str) -> Tuple[Optional[float], Optional[float]]:
        limits = self._limits.get((process_name, volume))
        if limits is None:
            return (None, None)
        return (limits.bandwidth_limit, limits.iops_limit)

    # ------------------------------------------------------------ submission
    def submit(
        self,
        process: OsProcess,
        volume_name: str,
        op: str,
        size_bytes: int,
        callback: Optional[Callable[[IoRequest], None]] = None,
    ) -> None:
        """Submit an I/O request on behalf of ``process``.

        ``callback`` fires when the request completes at the device.
        """
        self.submitted_requests += 1
        limits = self._limits.get((process.name, volume_name))
        if limits is None or limits.unlimited:
            self._issue(process, volume_name, op, size_bytes, callback)
            return
        self._refill(limits)
        entry = (process, volume_name, op, size_bytes, callback)
        limits.pending.append(entry)
        self._drain(process.name, volume_name, limits)

    # ------------------------------------------------------------- internals
    def _refill(self, limits: IoLimits) -> None:
        now = self._engine.now
        elapsed = now - limits.last_refill
        limits.last_refill = now
        if elapsed <= 0:
            return
        # Debt-based buckets: issuing a request may push the balance negative
        # (by up to one request), and the next request waits until the balance
        # recovers.  The positive balance is capped at a short burst window so
        # idle time does not accumulate unbounded credit.  This paces average
        # throughput correctly even for requests larger than the burst cap.
        if limits.bandwidth_limit is not None:
            cap = limits.bandwidth_limit * self.BURST_WINDOW
            limits.byte_tokens = min(cap, limits.byte_tokens + elapsed * limits.bandwidth_limit)
        if limits.iops_limit is not None:
            cap = max(1.0, limits.iops_limit * self.BURST_WINDOW)
            limits.iops_tokens = min(cap, limits.iops_tokens + elapsed * limits.iops_limit)

    def _can_issue(self, limits: IoLimits, size_bytes: int) -> bool:
        if limits.bandwidth_limit is not None and limits.byte_tokens < 0.0:
            return False
        if limits.iops_limit is not None and limits.iops_tokens < 0.0:
            return False
        return True

    def _time_until_ready(self, limits: IoLimits, size_bytes: int) -> float:
        wait = 0.0
        if limits.bandwidth_limit is not None and limits.byte_tokens < 0.0:
            wait = max(wait, -limits.byte_tokens / limits.bandwidth_limit)
        if limits.iops_limit is not None and limits.iops_tokens < 0.0:
            wait = max(wait, -limits.iops_tokens / limits.iops_limit)
        return max(wait, micros(1))

    def _drain(self, process_name: str, volume_name: str, limits: IoLimits) -> None:
        self._refill(limits)
        while limits.pending:
            process, volume, op, size_bytes, callback = limits.pending[0]
            if not self._can_issue(limits, size_bytes):
                if not limits.drain_scheduled:
                    limits.drain_scheduled = True
                    self.throttle_delays += 1
                    delay = self._time_until_ready(limits, size_bytes)
                    self._engine.schedule(
                        delay,
                        self._drain_later,
                        process_name,
                        volume_name,
                        priority=EventPriority.KERNEL,
                    )
                return
            limits.pending.popleft()
            if limits.bandwidth_limit is not None:
                limits.byte_tokens -= float(size_bytes)
            if limits.iops_limit is not None:
                limits.iops_tokens -= 1.0
            self._issue(process, volume, op, size_bytes, callback)

    def _drain_later(self, process_name: str, volume_name: str) -> None:
        limits = self._limits.get((process_name, volume_name))
        if limits is None:
            return
        limits.drain_scheduled = False
        self._drain(process_name, volume_name, limits)

    def _issue(
        self,
        process: OsProcess,
        volume_name: str,
        op: str,
        size_bytes: int,
        callback: Optional[Callable[[IoRequest], None]],
    ) -> None:
        volume = self._machine.volume(volume_name)
        volume.submit(
            owner=process.name,
            category=process.category,
            op=op,
            size_bytes=size_bytes,
            callback=lambda request: self._complete(process, request, callback),
        )

    def _complete(
        self,
        process: OsProcess,
        request: IoRequest,
        callback: Optional[Callable[[IoRequest], None]],
    ) -> None:
        self.completed_requests += 1
        key = (process.name, request.volume)
        self.completions_by_key[key] = self.completions_by_key.get(key, 0) + 1
        self.bytes_by_key[key] = self.bytes_by_key.get(key, 0) + request.size_bytes
        process.charge_io(request.volume, request.size_bytes)
        self._accounting.charge_os(IO_REQUEST_OS_OVERHEAD)
        if callback is not None:
            callback(request)

    # -------------------------------------------------------------- queries
    def completions(self, process_name: str, volume: str) -> int:
        """Cumulative completed requests for a (process, volume) pair."""
        return self.completions_by_key.get((process_name, volume), 0)

    def completed_bytes(self, process_name: str, volume: str) -> int:
        return self.bytes_by_key.get((process_name, volume), 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IoStack(submitted={self.submitted_requests}, completed={self.completed_requests})"
        )
