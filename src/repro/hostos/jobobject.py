"""Job objects: the OS-provided control knobs PerfIso manipulates.

The paper places every secondary-tenant process in a unified Windows Job
Object and controls it exclusively through that object (Section 4): a CPU
affinity mask, a CPU rate (duty-cycle) cap, and a memory limit.  Linux cgroups
expose equivalent knobs.  PerfIso never touches the primary's processes.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional

from ..errors import SchedulerError
from .process import OsProcess

__all__ = ["JobObject"]


class JobObject:
    """A named group of processes sharing resource limits."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.processes: List[OsProcess] = []
        # None means "unrestricted" for each knob.
        self._cpu_affinity: Optional[FrozenSet[int]] = None
        self._cpu_rate_fraction: Optional[float] = None
        self._memory_limit_bytes: Optional[int] = None
        # Rate-control runtime state, managed by the scheduler.
        self.rate_budget = 0.0
        self.throttled = False
        #: Number of member threads currently on a core (scheduler-maintained);
        #: used to split the per-interval rate budget across concurrent threads.
        self.running_threads = 0
        #: Observers notified when the affinity or rate limit changes so the
        #: scheduler can react immediately (preempt newly-disallowed cores).
        self._listeners: List[Callable[["JobObject"], None]] = []

    # ------------------------------------------------------------ membership
    def assign(self, process: OsProcess) -> None:
        """Place ``process`` under this job object's limits."""
        if process.job is not None and process.job is not self:
            raise SchedulerError(
                f"process {process.name!r} already belongs to job {process.job.name!r}"
            )
        if process not in self.processes:
            self.processes.append(process)
        process.job = self

    def remove(self, process: OsProcess) -> None:
        if process in self.processes:
            self.processes.remove(process)
        if process.job is self:
            process.job = None

    def live_threads(self):
        """All non-terminated threads of member processes."""
        threads = []
        for process in self.processes:
            threads.extend(process.live_threads())
        return threads

    # ----------------------------------------------------------------- knobs
    @property
    def cpu_affinity(self) -> Optional[FrozenSet[int]]:
        return self._cpu_affinity

    @property
    def cpu_rate_fraction(self) -> Optional[float]:
        return self._cpu_rate_fraction

    @property
    def memory_limit_bytes(self) -> Optional[int]:
        return self._memory_limit_bytes

    def set_cpu_affinity(self, cores: Optional[FrozenSet[int]]) -> None:
        """Restrict member threads to ``cores`` (``None`` removes the limit).

        An empty set is allowed and means "no core at all": the scheduler will
        park every member thread, which is how blind isolation squeezes the
        secondary out entirely when the primary needs the whole machine.
        """
        if cores is not None:
            cores = frozenset(int(c) for c in cores)
        if cores == self._cpu_affinity:
            return
        self._cpu_affinity = cores
        self._notify()

    def set_cpu_rate(self, fraction: Optional[float]) -> None:
        """Cap the job to ``fraction`` of total machine CPU time per interval."""
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise SchedulerError(f"cpu rate fraction must be in (0, 1], got {fraction}")
        if fraction == self._cpu_rate_fraction:
            return
        self._cpu_rate_fraction = fraction
        if fraction is None:
            self.throttled = False
        self._notify()

    def set_memory_limit(self, limit_bytes: Optional[int]) -> None:
        if limit_bytes is not None and limit_bytes <= 0:
            raise SchedulerError("memory limit must be positive or None")
        self._memory_limit_bytes = limit_bytes

    @property
    def memory_usage_bytes(self) -> int:
        return sum(process.memory_bytes for process in self.processes)

    def exceeds_memory_limit(self) -> bool:
        limit = self._memory_limit_bytes
        return limit is not None and self.memory_usage_bytes > limit

    # ------------------------------------------------------------- listeners
    def add_listener(self, callback: Callable[["JobObject"], None]) -> None:
        self._listeners.append(callback)

    def _notify(self) -> None:
        for callback in self._listeners:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        affinity = "all" if self._cpu_affinity is None else len(self._cpu_affinity)
        return (
            f"JobObject({self.name!r}, processes={len(self.processes)}, "
            f"affinity={affinity}, rate={self._cpu_rate_fraction})"
        )
