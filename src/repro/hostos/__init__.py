"""The simulated operating system: threads, scheduler, job objects, I/O, syscalls."""

from .accounting import CpuAccounting, CpuSnapshot
from .iostack import IoStack
from .jobobject import JobObject
from .process import OsProcess, TenantCategory
from .scheduler import Scheduler
from .syscalls import Kernel
from .thread import SimThread, ThreadState, cpu_phase, io_phase

__all__ = [
    "CpuAccounting",
    "CpuSnapshot",
    "IoStack",
    "JobObject",
    "OsProcess",
    "TenantCategory",
    "Scheduler",
    "Kernel",
    "SimThread",
    "ThreadState",
    "cpu_phase",
    "io_phase",
]
