"""The simulated multicore thread scheduler.

This is the substrate the whole reproduction rests on.  It deliberately models
an *ordinary* work-conserving OS scheduler — the kind PerfIso must live with
because changing the production kernel is off the table (Section 3.1):

* Round-robin time slicing with a fixed quantum.
* **Per-core ready queues with wake-time placement** (the default): a thread
  that becomes ready is dispatched immediately only if an idle core in its
  affinity mask exists; otherwise it is queued behind one specific core's
  running thread (its placement core) and waits for that core's quantum
  boundary.  Idle cores steal waiting threads, so the scheduler remains work
  conserving — but when *no* core is idle there is no migration, which is
  exactly why an unmanaged CPU-bound secondary inflates the primary's tail
  latency by an order of magnitude (Figure 4).  An idealised single global
  queue is available as ``placement="global"`` for ablation studies.
* **Hyper-threading contention**: when both logical siblings of a physical
  core are busy, each runs at ``smt_slowdown`` of full speed.  Dispatch
  prefers fully-idle physical cores, so a half-loaded machine ("mid" bully)
  still slows the primary's bursts even though cores look available.
* Affinity masks (thread- and job-level) are honoured on every dispatch, and
  changing a job's mask immediately preempts threads running on (or queued
  at) newly-forbidden cores.  This is the knob CPU blind isolation drives.
* Job-level CPU rate control is enforced per interval as a duty cycle, which
  reproduces the bursty occupancy that makes cycle throttling a poor
  isolation mechanism (Section 6.1.4).
* An idle-core bitmask is maintained at all times and exposed through the
  kernel syscall facade with O(1) cost — the low-latency signal blind
  isolation polls.

There is deliberately **no** priority preemption between tenants: the primary
and secondary compete as equals unless PerfIso intervenes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional

from ..config.schema import SchedulerSpec
from ..errors import SchedulerError
from ..hardware.topology import CpuTopology
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from .accounting import CpuAccounting
from .jobobject import JobObject
from .process import OsProcess
from .thread import SimThread, ThreadState

__all__ = ["Scheduler"]

_EPSILON = 1e-12
#: Tolerance used when deciding whether a CPU phase has finished; durations
#: are milliseconds-scale so a nanosecond of residual work is "done".
_WORK_EPSILON = 1e-9

#: Signature of the I/O submission hook the kernel installs: it receives the
#: blocked thread and the io phase parameters, and must eventually call the
#: completion callback exactly once.
IoSubmit = Callable[[SimThread, str, str, int, Callable[[], None]], None]


class Scheduler:
    """Work-conserving, quantum-based, affinity- and SMT-aware scheduler."""

    def __init__(
        self,
        engine: SimulationEngine,
        topology: CpuTopology,
        spec: SchedulerSpec,
        accounting: CpuAccounting,
        io_submit: Optional[IoSubmit] = None,
    ) -> None:
        self._engine = engine
        # The engine's queue, accessed directly on the slice-event hot path
        # (one push per dispatch, one lazy cancel per preemption).
        self._equeue = engine._queue
        self._topology = topology
        self._spec = spec
        self._accounting = accounting
        self._io_submit = io_submit
        core_count = topology.logical_core_count
        self._core_thread: List[Optional[SimThread]] = [None] * core_count
        self._last_tid_on_core: List[Optional[int]] = [None] * core_count
        self._idle_cores: set = set(range(core_count))
        #: Incrementally-maintained mirror of ``_idle_cores`` as a bitmask —
        #: the O(1) signal the idle-mask syscall reports.
        self._idle_mask = (1 << core_count) - 1
        self._siblings: List[tuple] = [
            tuple(c for c in topology.siblings(core) if c != core) for core in range(core_count)
        ]
        #: Logical core id -> physical core id, and the number of busy logical
        #: cores per physical core.  Together they answer "is this physical
        #: core fully idle?" and "does this dispatch share a physical core?"
        #: in O(1) instead of scanning sibling lists.
        self._phys_of: List[int] = [
            topology.core_info(core).physical_core for core in range(core_count)
        ]
        self._phys_busy: List[int] = [0] * topology.physical_core_count
        #: Cores currently running threads of each tenant category, maintained
        #: incrementally at dispatch/preempt time.
        self._cat_running: Dict[str, int] = {}
        self._per_core = spec.placement == "per_core"
        #: Fault-injection seam: a machine-wide dispatch-rate multiplier
        #: (``None`` = healthy).  Degraded/straggler-core faults set it to
        #: ``1/slowdown`` for a window; it multiplies the SMT-adjusted rate
        #: at dispatch time, so the healthy path pays one ``is None`` check.
        self._speed_factor: Optional[float] = None
        self._local_queues: List[Deque[SimThread]] = [deque() for _ in range(core_count)]
        self._global_queue: Deque[SimThread] = deque()
        self._queued_threads = 0
        #: Ready-but-waiting threads grouped by the job object they belonged
        #: to at enqueue time (``None`` key counted separately).  The dispatch
        #: path consults these counts to skip full queue scans when nothing
        #: queued could possibly run on the freed core — the common case under
        #: throttling and tight affinity masks.
        self._nojob_queued = 0
        self._job_queued: Dict[JobObject, int] = {}
        self._rate_jobs: Dict[str, JobObject] = {}
        self._rate_refresh_events: Dict[str, object] = {}
        # statistics
        self.dispatches = 0
        self.preemptions = 0
        self.context_switches = 0
        self.affinity_preemptions = 0
        self.throttle_preemptions = 0
        self.steals = 0
        self.smt_shared_dispatches = 0

    # ----------------------------------------------------------------- hooks
    def set_io_submit(self, io_submit: IoSubmit) -> None:
        """Install the I/O submission hook (done by the kernel facade)."""
        self._io_submit = io_submit

    def set_speed_factor(self, factor: Optional[float]) -> None:
        """Set (or clear, with ``None``) the machine-wide dispatch-rate factor.

        Used by fault injection to model degraded/straggler cores: every
        subsequent dispatch progresses at ``factor`` times normal speed.
        Slices already running keep the rate they were dispatched at; at
        quantum granularity the boundary error is one slice per core.
        """
        if factor is not None and factor <= 0.0:
            raise SchedulerError(f"speed factor must be positive, got {factor}")
        self._speed_factor = factor

    # ------------------------------------------------------------ inspection
    @property
    def spec(self) -> SchedulerSpec:
        return self._spec

    @property
    def core_count(self) -> int:
        return len(self._core_thread)

    def idle_core_ids(self) -> FrozenSet[int]:
        """The idle-core set (what the idle-mask syscall reports)."""
        return frozenset(self._idle_cores)

    def idle_core_count(self) -> int:
        return len(self._idle_cores)

    def idle_core_mask(self) -> int:
        return self._idle_mask

    def running_thread_on(self, core_id: int) -> Optional[SimThread]:
        self._check_core(core_id)
        return self._core_thread[core_id]

    def ready_queue_length(self) -> int:
        """Total number of runnable-but-waiting threads."""
        return self._queued_threads

    def cores_used_by_category(self, category: str) -> int:
        """Number of cores currently running threads of ``category``."""
        return self._cat_running.get(category, 0)

    # ------------------------------------------------------------- lifecycle
    def add_thread(self, thread: SimThread) -> None:
        """Make a newly created thread runnable."""
        if thread.state != ThreadState.NEW:
            raise SchedulerError(f"thread {thread.name!r} was already added")
        if thread.program[thread.phase_index][0] == "io":
            # A program may start with I/O (e.g. a worker that reads the index
            # before computing); submit it straight away.
            thread.state = ThreadState.BLOCKED
            self._submit_io(thread)
            return
        self._make_ready(thread)

    def terminate_thread(self, thread: SimThread) -> None:
        """Forcefully terminate a thread regardless of its state."""
        if thread.terminated:
            return
        if thread.state == ThreadState.RUNNING:
            core_id = thread.core_id
            self._stop_running(thread)
            thread.state = ThreadState.TERMINATED
            thread.core_id = None
            if core_id is not None:
                self._dispatch_core(core_id)
        elif thread.state == ThreadState.READY:
            self._remove_from_queues(thread)
            thread.state = ThreadState.TERMINATED
        else:
            # NEW or BLOCKED: the I/O completion path checks for termination.
            thread.state = ThreadState.TERMINATED

    def terminate_process(self, process: OsProcess) -> None:
        """Terminate every live thread of ``process``."""
        for thread in process.live_threads():
            self.terminate_thread(thread)
        process.alive = False

    # ------------------------------------------------------------ job events
    def on_job_changed(self, job: JobObject) -> None:
        """React to an affinity or rate-limit change on a job object."""
        self._configure_rate_control(job)
        self._enforce_affinity(job)
        # A grown mask (or a removed throttle) may allow parked threads to run.
        self._fill_idle_cores()

    # ------------------------------------------------------------- internals
    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < len(self._core_thread):
            raise SchedulerError(f"core id {core_id} out of range")

    # ----------------------------------------------------------- ready queues
    def _make_ready(self, thread: SimThread) -> None:
        thread.state = ThreadState.READY
        thread.ready_since = self._engine._now
        core = self._find_idle_core(thread)
        if core is not None:
            self._dispatch(thread, core)
            return
        self._enqueue(thread)

    def _note_queued(self, thread: SimThread) -> None:
        """Account a thread entering a ready queue under its current job."""
        job = thread.process.job
        thread.queued_job = job
        if job is None:
            self._nojob_queued += 1
        else:
            counts = self._job_queued
            counts[job] = counts.get(job, 0) + 1

    def _note_dequeued(self, thread: SimThread) -> None:
        """Reverse :meth:`_note_queued` (keyed on the job stored at enqueue)."""
        job = thread.queued_job
        thread.queued_job = None
        if job is None:
            self._nojob_queued -= 1
        else:
            self._job_queued[job] -= 1

    def _has_eligible_queued(self, core_id: int) -> bool:
        """Whether any queued thread could possibly run on ``core_id``.

        Consulted before every dispatch scan; group counts make the answer
        O(jobs) instead of O(queued threads).  Thread-level affinity is
        ignored here, so a ``True`` may still scan and find nothing (harmless),
        but a ``False`` is always exact — no eligible thread is ever skipped.
        """
        if self._nojob_queued:
            return True
        for job, count in self._job_queued.items():
            if count and not job.throttled:
                affinity = job.cpu_affinity
                if affinity is None or core_id in affinity:
                    return True
        return False

    def _enqueue(self, thread: SimThread) -> None:
        self._queued_threads += 1
        self._note_queued(thread)
        if not self._per_core:
            thread.queued_core = None
            self._global_queue.append(thread)
            return
        affinity = thread.effective_affinity()
        queues = self._local_queues
        if self._queued_threads == 1:
            # Fast path: this is the only queued thread anywhere, so every
            # queue is empty and the shortest-queue scan degenerates to the
            # lowest allowed core id.
            if affinity is None:
                best_core = 0
            elif affinity:
                best_core = min(affinity)
            else:
                thread.queued_core = None
                self._global_queue.append(thread)
                return
        elif affinity is None:
            # Ascending scan keeps the deterministic tie-break (shortest
            # queue, lowest core id) without per-candidate comparisons.
            best_core = 0
            best_len = len(queues[0])
            for core_id in range(1, len(queues)):
                queue_len = len(queues[core_id])
                if queue_len < best_len:
                    best_core = core_id
                    best_len = queue_len
        else:
            best_core = None
            best_len = None
            for core_id in affinity:
                queue_len = len(queues[core_id])
                if best_len is None or queue_len < best_len or (
                    queue_len == best_len and core_id < best_core
                ):
                    best_core = core_id
                    best_len = queue_len
            if best_core is None:
                # Empty affinity mask: park the thread on a virtual queue; it
                # will be re-placed when the mask grows again.
                thread.queued_core = None
                self._global_queue.append(thread)
                return
        thread.queued_core = best_core
        queues[best_core].append(thread)

    def _remove_from_queues(self, thread: SimThread) -> None:
        removed = False
        if thread.queued_core is not None:
            try:
                self._local_queues[thread.queued_core].remove(thread)
                removed = True
            except ValueError:
                pass
        if not removed:
            try:
                self._global_queue.remove(thread)
                removed = True
            except ValueError:
                pass
        if removed:
            self._queued_threads -= 1
            self._note_dequeued(thread)
        thread.queued_core = None

    def _pop_eligible(self, queue: Deque[SimThread], core_id: int) -> Optional[SimThread]:
        # Eligibility (not terminated, job not throttled, affinity admits the
        # core) is checked inline: this loop runs for every queued thread on
        # every dispatch, so per-thread method calls are too expensive.
        index = 0
        terminated = ThreadState.TERMINATED
        for thread in queue:
            if thread.state != terminated:
                job = thread.process.job
                if job is None or not job.throttled:
                    affinity = thread.affinity
                    job_affinity = None if job is None else job.cpu_affinity
                    if affinity is None:
                        affinity = job_affinity
                    elif job_affinity is not None:
                        affinity = affinity & job_affinity
                    if affinity is None or core_id in affinity:
                        if index == 0:
                            queue.popleft()
                        else:
                            del queue[index]
                        self._queued_threads -= 1
                        thread.queued_core = None
                        self._note_dequeued(thread)
                        return thread
            index += 1
        return None

    def _dispatch_core(self, core_id: int) -> None:
        """Give an idle core to a waiting thread (local queue, then stealing)."""
        if self._core_thread[core_id] is not None:
            return
        if self._queued_threads == 0:
            return
        if not self._has_eligible_queued(core_id):
            return
        thread = None
        if self._per_core:
            local = self._local_queues[core_id]
            if local:
                thread = self._pop_eligible(local, core_id)
            if thread is None and self._global_queue:
                thread = self._pop_eligible(self._global_queue, core_id)
            if thread is None:
                # Work stealing: scan the other cores' queues, longest first
                # (ties by lowest core id), so load spreads out once cores
                # become idle.  Only non-empty queues are considered.
                queues = self._local_queues
                candidates = [
                    (-len(queue), victim)
                    for victim, queue in enumerate(queues)
                    if queue and victim != core_id
                ]
                if candidates:
                    candidates.sort()
                    for _, victim in candidates:
                        thread = self._pop_eligible(queues[victim], core_id)
                        if thread is not None:
                            self.steals += 1
                            break
        elif self._global_queue:
            thread = self._pop_eligible(self._global_queue, core_id)
        if thread is not None:
            self._dispatch(thread, core_id)

    def _fill_idle_cores(self) -> None:
        if self._queued_threads == 0 or not self._idle_cores:
            return
        for core_id in sorted(self._idle_cores):
            if self._core_thread[core_id] is None:
                self._dispatch_core(core_id)

    def _find_idle_core(self, thread: SimThread) -> Optional[int]:
        idle = self._idle_cores
        if not idle:
            return None
        job = thread.process.job
        if job is not None and job.throttled:
            return None
        affinity = thread.affinity
        job_affinity = None if job is None else job.cpu_affinity
        if affinity is None:
            affinity = job_affinity
        elif job_affinity is not None:
            affinity = affinity & job_affinity
        if affinity is None:
            candidates = idle
        else:
            candidates = idle & affinity
            if not candidates:
                return None
        # Prefer cores whose hyper-thread siblings are all idle (an empty
        # physical core), like a real scheduler; lowest id for determinism.
        phys_busy = self._phys_busy
        phys_of = self._phys_of
        best = None
        for core_id in candidates:
            if phys_busy[phys_of[core_id]] == 0 and (best is None or core_id < best):
                best = core_id
        if best is not None:
            return best
        return min(candidates)

    # --------------------------------------------------------------- running
    def _dispatch(self, thread: SimThread, core_id: int) -> None:
        if self._core_thread[core_id] is not None:
            raise SchedulerError(f"core {core_id} is already running a thread")
        if thread.program[thread.phase_index][0] != "cpu":
            raise SchedulerError(f"thread {thread.name!r} dispatched while not in a CPU phase")
        engine = self._engine
        spec = self._spec
        process = thread.process
        self._idle_cores.discard(core_id)
        self._idle_mask &= ~(1 << core_id)
        self._core_thread[core_id] = thread
        phys = self._phys_of[core_id]
        phys_busy = self._phys_busy[phys] + 1
        self._phys_busy[phys] = phys_busy
        category = process.category
        cat_running = self._cat_running
        cat_running[category] = cat_running.get(category, 0) + 1
        now = engine._now
        if thread.ready_since is not None:
            thread.total_ready_wait += now - thread.ready_since
            thread.ready_since = None
        thread.state = ThreadState.RUNNING
        thread.core_id = core_id
        thread.queued_core = None
        self.dispatches += 1
        if self._last_tid_on_core[core_id] != thread.tid:
            self.context_switches += 1
            thread.context_switches += 1
            self._accounting.charge_os(spec.context_switch_cost)
        self._last_tid_on_core[core_id] = thread.tid

        # A busy hyper-thread sibling means this physical core is now shared.
        rate = spec.smt_slowdown if phys_busy > 1 else 1.0
        if rate < 1.0:
            self.smt_shared_dispatches += 1
        if self._speed_factor is not None:
            rate *= self._speed_factor
        remaining = thread.remaining_in_phase
        quantum = spec.quantum
        if remaining == math.inf:
            slice_length = quantum
        else:
            wall_needed = remaining / rate
            slice_length = quantum if quantum < wall_needed else wall_needed
        job = process.job
        if job is None:
            thread.slice_reserved = False
        else:
            job.running_threads += 1
            if job.cpu_rate_fraction is not None:
                # Reserve budget at dispatch time so concurrently running
                # threads cannot collectively overshoot the duty cycle; the
                # unused part of a reservation is refunded on preemption.
                duty = job.cpu_rate_fraction * spec.rate_interval
                slice_length = min(slice_length, duty, max(job.rate_budget, _EPSILON))
                thread.slice_reserved = True
            else:
                thread.slice_reserved = False
        if slice_length < _EPSILON:
            slice_length = _EPSILON
        if thread.slice_reserved:
            job.rate_budget -= slice_length
        thread.dispatched_at = now
        thread.slice_length = slice_length
        thread.slice_rate = rate
        # Direct queue push — the engine.schedule wrapper (delay validation,
        # *args packing) costs real time at ~one dispatch per quantum per core.
        thread.slice_event = self._equeue.push(
            now + slice_length, self._slice_end, (thread,), EventPriority.KERNEL
        )

    def _stop_running(self, thread: SimThread) -> float:
        """Charge the elapsed part of the current slice and free the core."""
        if thread.state != ThreadState.RUNNING or thread.core_id is None:
            raise SchedulerError(f"thread {thread.name!r} is not running")
        engine = self._engine
        elapsed = engine._now - thread.dispatched_at
        elapsed = min(max(elapsed, 0.0), thread.slice_length)
        event = thread.slice_event
        if event is not None:
            # Inline engine.cancel: the slice event is never already
            # cancelled, so only the pending/popped distinction matters.
            event.cancelled = True
            if event.in_queue:
                self._equeue.notify_cancel()
            thread.slice_event = None
        core_id = thread.core_id
        self._core_thread[core_id] = None
        self._idle_cores.add(core_id)
        self._idle_mask |= 1 << core_id
        self._phys_busy[self._phys_of[core_id]] -= 1
        self._cat_running[thread.process.category] -= 1
        job_of_thread = thread.process.job
        if job_of_thread is not None:
            if job_of_thread.running_threads > 0:
                job_of_thread.running_threads -= 1
            if thread.slice_reserved and job_of_thread.cpu_rate_fraction is not None:
                # Refund the unused part of the budget reserved at dispatch.
                job_of_thread.rate_budget += max(0.0, thread.slice_length - elapsed)
        thread.slice_reserved = False
        if elapsed > 0:
            process = thread.process
            thread.total_cpu_time += elapsed
            remaining = thread.remaining_in_phase
            if remaining != math.inf:
                remaining -= elapsed * thread.slice_rate
                thread.remaining_in_phase = remaining if remaining > 0.0 else 0.0
            self._accounting.charge(process.category, elapsed, process.name)
            process.cpu_time += elapsed
        return elapsed

    def _phase_finished(self, thread: SimThread) -> bool:
        return (
            thread.is_cpu_phase
            and not math.isinf(thread.remaining_in_phase)
            and thread.remaining_in_phase <= _WORK_EPSILON
        )

    def _slice_end(self, thread: SimThread) -> None:
        thread.slice_event = None
        if thread.state != ThreadState.RUNNING:
            return
        core_id = thread.core_id
        self._stop_running(thread)
        thread.core_id = None

        job = thread.process.job
        if (
            job is not None
            and job.cpu_rate_fraction is not None
            and job.rate_budget <= _EPSILON
            and not job.throttled
        ):
            self._throttle_job(job)

        # The thread is still on its CPU phase here, so the phase is finished
        # iff the remaining work hit zero (inf fails the comparison).
        if thread.remaining_in_phase <= _WORK_EPSILON:
            self._continue_program(thread)
            self._dispatch_core(core_id)
            return
        self.preemptions += 1
        # Hand the freed core to waiting threads first (round robin), then
        # requeue the preempted thread.
        self._dispatch_core(core_id)
        self._make_ready(thread)

    def _continue_program(self, thread: SimThread) -> None:
        """Advance a thread past a finished phase."""
        if not thread.advance_phase():
            thread.state = ThreadState.TERMINATED
            if thread.on_complete is not None:
                thread.on_complete(thread)
            return
        if thread.program[thread.phase_index][0] == "cpu":
            self._make_ready(thread)
        else:
            thread.state = ThreadState.BLOCKED
            self._submit_io(thread)

    def _submit_io(self, thread: SimThread) -> None:
        if self._io_submit is None:
            raise SchedulerError(
                "no I/O submission hook installed; build the scheduler through Kernel"
            )
        _, volume, op, size_bytes = thread.current_phase
        self._io_submit(thread, volume, op, size_bytes, lambda: self._io_done(thread))

    def _io_done(self, thread: SimThread) -> None:
        if thread.terminated:
            return
        self._continue_program(thread)

    # ---------------------------------------------------------- rate control
    def _preempt_job_threads(self, job: JobObject) -> None:
        """Preempt every running member thread so it is re-dispatched under the
        job's current limits (used when a rate limit is first configured)."""
        for core_id, running in enumerate(self._core_thread):
            if running is None or running.process.job is not job:
                continue
            self._stop_running(running)
            running.core_id = None
            if self._phase_finished(running):
                self._continue_program(running)
            else:
                running.state = ThreadState.READY
                running.ready_since = self._engine.now
                self._enqueue(running)
            self._dispatch_core(core_id)

    def _configure_rate_control(self, job: JobObject) -> None:
        has_rate = job.cpu_rate_fraction is not None
        registered = job.name in self._rate_jobs
        if has_rate and not registered:
            self._rate_jobs[job.name] = job
            job.rate_budget = (
                job.cpu_rate_fraction * self._spec.rate_interval * self.core_count
            )
            job.throttled = False
            event = self._engine.schedule(
                self._spec.rate_interval,
                self._refresh_rate_budget,
                job,
                priority=EventPriority.KERNEL,
            )
            self._rate_refresh_events[job.name] = event
            self._preempt_job_threads(job)
        elif not has_rate and registered:
            self._rate_jobs.pop(job.name, None)
            event = self._rate_refresh_events.pop(job.name, None)
            self._engine.cancel(event)
            job.throttled = False

    def _refresh_rate_budget(self, job: JobObject) -> None:
        if job.cpu_rate_fraction is None:
            return
        job.rate_budget = job.cpu_rate_fraction * self._spec.rate_interval * self.core_count
        job.throttled = False
        self._rate_refresh_events[job.name] = self._engine.schedule(
            self._spec.rate_interval,
            self._refresh_rate_budget,
            job,
            priority=EventPriority.KERNEL,
        )
        self._fill_idle_cores()

    def _throttle_job(self, job: JobObject) -> None:
        job.throttled = True
        for core_id, running in enumerate(self._core_thread):
            if running is None or running.process.job is not job:
                continue
            self.throttle_preemptions += 1
            self._stop_running(running)
            running.core_id = None
            running.state = ThreadState.READY
            running.ready_since = self._engine.now
            self._enqueue(running)
            self._dispatch_core(core_id)

    # ------------------------------------------------------------- affinity
    def _enforce_affinity(self, job: JobObject) -> None:
        # Preempt member threads running on newly-forbidden cores.  The scan
        # cannot be gated on ``job.running_threads``: threads dispatched
        # before their process joined the job are not counted there.
        self._preempt_forbidden(job)
        # Re-place member threads queued at cores they may no longer use.
        if self._per_core and self._queued_threads:
            for core_id, queue in enumerate(self._local_queues):
                if not queue:
                    continue
                stranded = [
                    t for t in queue if t.process.job is job and not t.can_run_on(core_id)
                ]
                for thread in stranded:
                    queue.remove(thread)
                    self._queued_threads -= 1
                    self._note_dequeued(thread)
                    thread.queued_core = None
                    self._make_ready(thread)

    def _preempt_forbidden(self, job: JobObject) -> None:
        for core_id, running in enumerate(self._core_thread):
            if running is None or running.process.job is not job:
                continue
            if running.can_run_on(core_id) and not job.throttled:
                continue
            self.affinity_preemptions += 1
            self._stop_running(running)
            running.core_id = None
            if self._phase_finished(running):
                self._continue_program(running)
            else:
                running.state = ThreadState.READY
                running.ready_since = self._engine.now
                self._enqueue(running)
            self._dispatch_core(core_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(cores={self.core_count}, idle={len(self._idle_cores)}, "
            f"queued={self._queued_threads})"
        )
