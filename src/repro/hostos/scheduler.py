"""The simulated multicore thread scheduler.

This is the substrate the whole reproduction rests on.  It deliberately models
an *ordinary* work-conserving OS scheduler — the kind PerfIso must live with
because changing the production kernel is off the table (Section 3.1):

* Round-robin time slicing with a fixed quantum.
* **Per-core ready queues with wake-time placement** (the default): a thread
  that becomes ready is dispatched immediately only if an idle core in its
  affinity mask exists; otherwise it is queued behind one specific core's
  running thread (its placement core) and waits for that core's quantum
  boundary.  Idle cores steal waiting threads, so the scheduler remains work
  conserving — but when *no* core is idle there is no migration, which is
  exactly why an unmanaged CPU-bound secondary inflates the primary's tail
  latency by an order of magnitude (Figure 4).  An idealised single global
  queue is available as ``placement="global"`` for ablation studies.
* **Hyper-threading contention**: when both logical siblings of a physical
  core are busy, each runs at ``smt_slowdown`` of full speed.  Dispatch
  prefers fully-idle physical cores, so a half-loaded machine ("mid" bully)
  still slows the primary's bursts even though cores look available.
* Affinity masks (thread- and job-level) are honoured on every dispatch, and
  changing a job's mask immediately preempts threads running on (or queued
  at) newly-forbidden cores.  This is the knob CPU blind isolation drives.
* Job-level CPU rate control is enforced per interval as a duty cycle, which
  reproduces the bursty occupancy that makes cycle throttling a poor
  isolation mechanism (Section 6.1.4).
* An idle-core bitmask is maintained at all times and exposed through the
  kernel syscall facade with O(1) cost — the low-latency signal blind
  isolation polls.

There is deliberately **no** priority preemption between tenants: the primary
and secondary compete as equals unless PerfIso intervenes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional

from ..config.schema import SchedulerSpec
from ..errors import SchedulerError
from ..hardware.topology import CpuTopology
from ..simulation.engine import SimulationEngine
from ..simulation.events import EventPriority
from .accounting import CpuAccounting
from .jobobject import JobObject
from .process import OsProcess
from .thread import SimThread, ThreadState

__all__ = ["Scheduler"]

_EPSILON = 1e-12
#: Tolerance used when deciding whether a CPU phase has finished; durations
#: are milliseconds-scale so a nanosecond of residual work is "done".
_WORK_EPSILON = 1e-9

#: Signature of the I/O submission hook the kernel installs: it receives the
#: blocked thread and the io phase parameters, and must eventually call the
#: completion callback exactly once.
IoSubmit = Callable[[SimThread, str, str, int, Callable[[], None]], None]


class Scheduler:
    """Work-conserving, quantum-based, affinity- and SMT-aware scheduler."""

    def __init__(
        self,
        engine: SimulationEngine,
        topology: CpuTopology,
        spec: SchedulerSpec,
        accounting: CpuAccounting,
        io_submit: Optional[IoSubmit] = None,
    ) -> None:
        self._engine = engine
        self._topology = topology
        self._spec = spec
        self._accounting = accounting
        self._io_submit = io_submit
        core_count = topology.logical_core_count
        self._core_thread: List[Optional[SimThread]] = [None] * core_count
        self._last_tid_on_core: List[Optional[int]] = [None] * core_count
        self._idle_cores: set = set(range(core_count))
        self._siblings: List[tuple] = [
            tuple(c for c in topology.siblings(core) if c != core) for core in range(core_count)
        ]
        self._per_core = spec.placement == "per_core"
        self._local_queues: List[Deque[SimThread]] = [deque() for _ in range(core_count)]
        self._global_queue: Deque[SimThread] = deque()
        self._queued_threads = 0
        self._rate_jobs: Dict[str, JobObject] = {}
        self._rate_refresh_events: Dict[str, object] = {}
        # statistics
        self.dispatches = 0
        self.preemptions = 0
        self.context_switches = 0
        self.affinity_preemptions = 0
        self.throttle_preemptions = 0
        self.steals = 0
        self.smt_shared_dispatches = 0

    # ----------------------------------------------------------------- hooks
    def set_io_submit(self, io_submit: IoSubmit) -> None:
        """Install the I/O submission hook (done by the kernel facade)."""
        self._io_submit = io_submit

    # ------------------------------------------------------------ inspection
    @property
    def spec(self) -> SchedulerSpec:
        return self._spec

    @property
    def core_count(self) -> int:
        return len(self._core_thread)

    def idle_core_ids(self) -> FrozenSet[int]:
        """The idle-core set (what the idle-mask syscall reports)."""
        return frozenset(self._idle_cores)

    def idle_core_count(self) -> int:
        return len(self._idle_cores)

    def idle_core_mask(self) -> int:
        mask = 0
        for core in self._idle_cores:
            mask |= 1 << core
        return mask

    def running_thread_on(self, core_id: int) -> Optional[SimThread]:
        self._check_core(core_id)
        return self._core_thread[core_id]

    def ready_queue_length(self) -> int:
        """Total number of runnable-but-waiting threads."""
        return self._queued_threads

    def cores_used_by_category(self, category: str) -> int:
        """Number of cores currently running threads of ``category``."""
        return sum(
            1
            for thread in self._core_thread
            if thread is not None and thread.category == category
        )

    # ------------------------------------------------------------- lifecycle
    def add_thread(self, thread: SimThread) -> None:
        """Make a newly created thread runnable."""
        if thread.state != ThreadState.NEW:
            raise SchedulerError(f"thread {thread.name!r} was already added")
        if thread.is_io_phase:
            # A program may start with I/O (e.g. a worker that reads the index
            # before computing); submit it straight away.
            thread.state = ThreadState.BLOCKED
            self._submit_io(thread)
            return
        self._make_ready(thread)

    def terminate_thread(self, thread: SimThread) -> None:
        """Forcefully terminate a thread regardless of its state."""
        if thread.terminated:
            return
        if thread.state == ThreadState.RUNNING:
            core_id = thread.core_id
            self._stop_running(thread)
            thread.state = ThreadState.TERMINATED
            thread.core_id = None
            if core_id is not None:
                self._dispatch_core(core_id)
        elif thread.state == ThreadState.READY:
            self._remove_from_queues(thread)
            thread.state = ThreadState.TERMINATED
        else:
            # NEW or BLOCKED: the I/O completion path checks for termination.
            thread.state = ThreadState.TERMINATED

    def terminate_process(self, process: OsProcess) -> None:
        """Terminate every live thread of ``process``."""
        for thread in process.live_threads():
            self.terminate_thread(thread)
        process.alive = False

    # ------------------------------------------------------------ job events
    def on_job_changed(self, job: JobObject) -> None:
        """React to an affinity or rate-limit change on a job object."""
        self._configure_rate_control(job)
        self._enforce_affinity(job)
        # A grown mask (or a removed throttle) may allow parked threads to run.
        self._fill_idle_cores()

    # ------------------------------------------------------------- internals
    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < len(self._core_thread):
            raise SchedulerError(f"core id {core_id} out of range")

    def _eligible(self, thread: SimThread, core_id: int) -> bool:
        if thread.terminated:
            return False
        job = thread.process.job
        if job is not None and job.throttled:
            return False
        return thread.can_run_on(core_id)

    # ----------------------------------------------------------- ready queues
    def _make_ready(self, thread: SimThread) -> None:
        thread.state = ThreadState.READY
        thread.ready_since = self._engine.now
        core = self._find_idle_core(thread)
        if core is not None:
            self._dispatch(thread, core)
            return
        self._enqueue(thread)

    def _enqueue(self, thread: SimThread) -> None:
        self._queued_threads += 1
        if not self._per_core:
            thread.queued_core = None
            self._global_queue.append(thread)
            return
        affinity = thread.effective_affinity()
        candidates = range(self.core_count) if affinity is None else affinity
        best_core = None
        best_len = None
        for core_id in candidates:
            queue_len = len(self._local_queues[core_id])
            if best_len is None or queue_len < best_len or (
                queue_len == best_len and core_id < best_core
            ):
                best_core = core_id
                best_len = queue_len
        if best_core is None:
            # Empty affinity mask: park the thread on a virtual queue; it will
            # be re-placed when the mask grows again.
            thread.queued_core = None
            self._global_queue.append(thread)
            return
        thread.queued_core = best_core
        self._local_queues[best_core].append(thread)

    def _remove_from_queues(self, thread: SimThread) -> None:
        removed = False
        if thread.queued_core is not None:
            try:
                self._local_queues[thread.queued_core].remove(thread)
                removed = True
            except ValueError:
                pass
        if not removed:
            try:
                self._global_queue.remove(thread)
                removed = True
            except ValueError:
                pass
        if removed:
            self._queued_threads -= 1
        thread.queued_core = None

    def _pop_eligible(self, queue: Deque[SimThread], core_id: int) -> Optional[SimThread]:
        for index, thread in enumerate(queue):
            if self._eligible(thread, core_id):
                if index == 0:
                    queue.popleft()
                else:
                    del queue[index]
                self._queued_threads -= 1
                thread.queued_core = None
                return thread
        return None

    def _dispatch_core(self, core_id: int) -> None:
        """Give an idle core to a waiting thread (local queue, then stealing)."""
        if self._core_thread[core_id] is not None:
            return
        if self._queued_threads == 0:
            return
        if self._per_core:
            thread = self._pop_eligible(self._local_queues[core_id], core_id)
            if thread is None:
                thread = self._pop_eligible(self._global_queue, core_id)
            if thread is None:
                # Work stealing: scan the other cores' queues, longest first,
                # so load spreads out once cores become idle.
                order = sorted(
                    (c for c in range(self.core_count) if c != core_id),
                    key=lambda c: -len(self._local_queues[c]),
                )
                for victim in order:
                    if not self._local_queues[victim]:
                        break
                    thread = self._pop_eligible(self._local_queues[victim], core_id)
                    if thread is not None:
                        self.steals += 1
                        break
        else:
            thread = self._pop_eligible(self._global_queue, core_id)
        if thread is not None:
            self._dispatch(thread, core_id)

    def _fill_idle_cores(self) -> None:
        for core_id in sorted(self._idle_cores):
            if self._core_thread[core_id] is None:
                self._dispatch_core(core_id)

    def _find_idle_core(self, thread: SimThread) -> Optional[int]:
        if not self._idle_cores:
            return None
        job = thread.process.job
        if job is not None and job.throttled:
            return None
        affinity = thread.effective_affinity()
        if affinity is None:
            candidates = self._idle_cores
        else:
            candidates = self._idle_cores & affinity
        if not candidates:
            return None
        # Prefer cores whose hyper-thread siblings are all idle (an empty
        # physical core), like a real scheduler; lowest id for determinism.
        best = None
        for core_id in candidates:
            sibling_idle = all(s in self._idle_cores for s in self._siblings[core_id])
            if sibling_idle:
                if best is None or core_id < best:
                    best = core_id
        if best is not None:
            return best
        return min(candidates)

    # --------------------------------------------------------------- running
    def _smt_rate(self, core_id: int) -> float:
        for sibling in self._siblings[core_id]:
            if self._core_thread[sibling] is not None:
                return self._spec.smt_slowdown
        return 1.0

    def _dispatch(self, thread: SimThread, core_id: int) -> None:
        if self._core_thread[core_id] is not None:
            raise SchedulerError(f"core {core_id} is already running a thread")
        if not thread.is_cpu_phase:
            raise SchedulerError(f"thread {thread.name!r} dispatched while not in a CPU phase")
        self._idle_cores.discard(core_id)
        self._core_thread[core_id] = thread
        if thread.ready_since is not None:
            thread.total_ready_wait += self._engine.now - thread.ready_since
            thread.ready_since = None
        thread.state = ThreadState.RUNNING
        thread.core_id = core_id
        thread.queued_core = None
        self.dispatches += 1
        if self._last_tid_on_core[core_id] != thread.tid:
            self.context_switches += 1
            thread.context_switches += 1
            self._accounting.charge_os(self._spec.context_switch_cost)
        self._last_tid_on_core[core_id] = thread.tid

        rate = self._smt_rate(core_id)
        if rate < 1.0:
            self.smt_shared_dispatches += 1
        wall_needed = (
            math.inf
            if math.isinf(thread.remaining_in_phase)
            else thread.remaining_in_phase / rate
        )
        slice_length = min(self._spec.quantum, wall_needed)
        job = thread.process.job
        if job is not None:
            job.running_threads += 1
            if job.cpu_rate_fraction is not None:
                # Reserve budget at dispatch time so concurrently running
                # threads cannot collectively overshoot the duty cycle; the
                # unused part of a reservation is refunded on preemption.
                duty = job.cpu_rate_fraction * self._spec.rate_interval
                slice_length = min(slice_length, duty, max(job.rate_budget, _EPSILON))
        slice_length = max(slice_length, _EPSILON)
        thread.slice_reserved = job is not None and job.cpu_rate_fraction is not None
        if thread.slice_reserved:
            job.rate_budget -= slice_length
        thread.dispatched_at = self._engine.now
        thread.slice_length = slice_length
        thread.slice_rate = rate
        thread.slice_event = self._engine.schedule(
            slice_length, self._slice_end, thread, priority=EventPriority.KERNEL
        )

    def _stop_running(self, thread: SimThread) -> float:
        """Charge the elapsed part of the current slice and free the core."""
        if thread.state != ThreadState.RUNNING or thread.core_id is None:
            raise SchedulerError(f"thread {thread.name!r} is not running")
        elapsed = self._engine.now - thread.dispatched_at
        elapsed = min(max(elapsed, 0.0), thread.slice_length)
        if thread.slice_event is not None:
            self._engine.cancel(thread.slice_event)
            thread.slice_event = None
        core_id = thread.core_id
        self._core_thread[core_id] = None
        self._idle_cores.add(core_id)
        job_of_thread = thread.process.job
        if job_of_thread is not None:
            if job_of_thread.running_threads > 0:
                job_of_thread.running_threads -= 1
            if thread.slice_reserved and job_of_thread.cpu_rate_fraction is not None:
                # Refund the unused part of the budget reserved at dispatch.
                job_of_thread.rate_budget += max(0.0, thread.slice_length - elapsed)
        thread.slice_reserved = False
        if elapsed > 0:
            work_done = elapsed * thread.slice_rate
            thread.total_cpu_time += elapsed
            if not math.isinf(thread.remaining_in_phase):
                thread.remaining_in_phase = max(0.0, thread.remaining_in_phase - work_done)
            self._accounting.charge(thread.category, elapsed, thread.process.name)
            thread.process.charge_cpu(elapsed)
        return elapsed

    def _phase_finished(self, thread: SimThread) -> bool:
        return (
            thread.is_cpu_phase
            and not math.isinf(thread.remaining_in_phase)
            and thread.remaining_in_phase <= _WORK_EPSILON
        )

    def _slice_end(self, thread: SimThread) -> None:
        thread.slice_event = None
        if thread.state != ThreadState.RUNNING:
            return
        core_id = thread.core_id
        self._stop_running(thread)
        thread.core_id = None

        job = thread.process.job
        if (
            job is not None
            and job.cpu_rate_fraction is not None
            and job.rate_budget <= _EPSILON
            and not job.throttled
        ):
            self._throttle_job(job)

        if self._phase_finished(thread):
            self._continue_program(thread)
            self._dispatch_core(core_id)
            return
        self.preemptions += 1
        # Hand the freed core to waiting threads first (round robin), then
        # requeue the preempted thread.
        self._dispatch_core(core_id)
        self._make_ready(thread)

    def _continue_program(self, thread: SimThread) -> None:
        """Advance a thread past a finished phase."""
        if not thread.advance_phase():
            thread.state = ThreadState.TERMINATED
            if thread.on_complete is not None:
                thread.on_complete(thread)
            return
        if thread.is_cpu_phase:
            self._make_ready(thread)
        else:
            thread.state = ThreadState.BLOCKED
            self._submit_io(thread)

    def _submit_io(self, thread: SimThread) -> None:
        if self._io_submit is None:
            raise SchedulerError(
                "no I/O submission hook installed; build the scheduler through Kernel"
            )
        _, volume, op, size_bytes = thread.current_phase
        self._io_submit(thread, volume, op, size_bytes, lambda: self._io_done(thread))

    def _io_done(self, thread: SimThread) -> None:
        if thread.terminated:
            return
        self._continue_program(thread)

    # ---------------------------------------------------------- rate control
    def _preempt_job_threads(self, job: JobObject) -> None:
        """Preempt every running member thread so it is re-dispatched under the
        job's current limits (used when a rate limit is first configured)."""
        for core_id, running in enumerate(self._core_thread):
            if running is None or running.process.job is not job:
                continue
            self._stop_running(running)
            running.core_id = None
            if self._phase_finished(running):
                self._continue_program(running)
            else:
                running.state = ThreadState.READY
                running.ready_since = self._engine.now
                self._enqueue(running)
            self._dispatch_core(core_id)

    def _configure_rate_control(self, job: JobObject) -> None:
        has_rate = job.cpu_rate_fraction is not None
        registered = job.name in self._rate_jobs
        if has_rate and not registered:
            self._rate_jobs[job.name] = job
            job.rate_budget = (
                job.cpu_rate_fraction * self._spec.rate_interval * self.core_count
            )
            job.throttled = False
            event = self._engine.schedule(
                self._spec.rate_interval,
                self._refresh_rate_budget,
                job,
                priority=EventPriority.KERNEL,
            )
            self._rate_refresh_events[job.name] = event
            self._preempt_job_threads(job)
        elif not has_rate and registered:
            self._rate_jobs.pop(job.name, None)
            event = self._rate_refresh_events.pop(job.name, None)
            self._engine.cancel(event)
            job.throttled = False

    def _refresh_rate_budget(self, job: JobObject) -> None:
        if job.cpu_rate_fraction is None:
            return
        job.rate_budget = job.cpu_rate_fraction * self._spec.rate_interval * self.core_count
        job.throttled = False
        self._rate_refresh_events[job.name] = self._engine.schedule(
            self._spec.rate_interval,
            self._refresh_rate_budget,
            job,
            priority=EventPriority.KERNEL,
        )
        self._fill_idle_cores()

    def _throttle_job(self, job: JobObject) -> None:
        job.throttled = True
        for core_id, running in enumerate(self._core_thread):
            if running is None or running.process.job is not job:
                continue
            self.throttle_preemptions += 1
            self._stop_running(running)
            running.core_id = None
            running.state = ThreadState.READY
            running.ready_since = self._engine.now
            self._enqueue(running)
            self._dispatch_core(core_id)

    # ------------------------------------------------------------- affinity
    def _enforce_affinity(self, job: JobObject) -> None:
        # Preempt member threads running on newly-forbidden cores.
        for core_id, running in enumerate(self._core_thread):
            if running is None or running.process.job is not job:
                continue
            if running.can_run_on(core_id) and not job.throttled:
                continue
            self.affinity_preemptions += 1
            self._stop_running(running)
            running.core_id = None
            if self._phase_finished(running):
                self._continue_program(running)
            else:
                running.state = ThreadState.READY
                running.ready_since = self._engine.now
                self._enqueue(running)
            self._dispatch_core(core_id)
        # Re-place member threads queued at cores they may no longer use.
        if self._per_core:
            for core_id, queue in enumerate(self._local_queues):
                if not queue:
                    continue
                stranded = [
                    t for t in queue if t.process.job is job and not t.can_run_on(core_id)
                ]
                for thread in stranded:
                    queue.remove(thread)
                    self._queued_threads -= 1
                    thread.queued_core = None
                    self._make_ready(thread)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scheduler(cores={self.core_count}, idle={len(self._idle_cores)}, "
            f"queued={self._queued_threads})"
        )
