"""Deterministic replicate-seed derivation for campaign sweeps.

A campaign replaces one seeded run with ``n`` replicates.  The replicate
seeds must be a pure function of the base seed so that (a) re-running a
campaign resolves to the identical :func:`~repro.runtime.spec_hash.spec_hash`
cache keys — every replicate is a cache hit — and (b) two campaigns over the
same scenario share runs.  Derivation mirrors the simulator's named-stream
discipline (:class:`~repro.simulation.randomness.RandomStreams`): a SHA-256
of ``"<label>/<base>/<index>"``, so growing a campaign from 3 to 5 replicates
extends the seed list without perturbing the first 3.

Replicate 0 is the base seed itself: the historical single-seed point
estimate is always the campaign's first replicate, so a campaign layered on
top of existing goldens and benchmarks reuses their cached runs verbatim.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..errors import ConfigError

__all__ = ["derive_seed", "replicate_seeds"]

#: Derived seeds stay well inside the non-negative int64 range every spec
#: field, JSON encoding and numpy seeding path accepts.
_SEED_SPACE = 2**31


def derive_seed(base_seed: int, index: int, label: str = "campaign") -> int:
    """The seed of replicate ``index`` for ``base_seed`` (index 0 = base)."""
    if index < 0:
        raise ConfigError(f"replicate index must be >= 0, got {index}")
    if index == 0:
        return int(base_seed)
    digest = hashlib.sha256(
        f"{label}/{int(base_seed)}/{int(index)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_SPACE


def replicate_seeds(base_seed: int, count: int, label: str = "campaign") -> Tuple[int, ...]:
    """The first ``count`` replicate seeds, base seed first, no duplicates.

    Collisions with the base seed (or between derived seeds) are vanishingly
    rare but would silently halve a campaign's effective sample size, so the
    index advances past any duplicate instead of emitting it twice.
    """
    if count < 1:
        raise ConfigError(f"replicate count must be >= 1, got {count}")
    seeds = []
    index = 0
    while len(seeds) < count:
        seed = derive_seed(base_seed, index, label=label)
        index += 1
        if seed not in seeds:
            seeds.append(seed)
    return tuple(seeds)
