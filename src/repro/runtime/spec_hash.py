"""Canonical, content-addressed hashing of experiment specifications.

The parallel runtime and its result cache key every run on the *content* of
its configuration, not on object identity or on which harness built it: two
``ExperimentSpec`` instances describing the same machine, workload, tenants
and seed hash identically, so a Figure 8 standalone run and a Figure 4
standalone run at the same load resolve to the same cache entry.

Hashing walks the (frozen, nested) dataclass tree and produces a canonical
JSON document — sorted keys, explicit type tags, exact float representation
via ``repr`` — which is then SHA-256 digested.  Any configuration value that
affects simulation output lives in the dataclasses, so the digest is a sound
cache key for deterministic runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

import numpy as np

__all__ = ["OMIT_IF_DEFAULT", "canonical_encoding", "spec_hash", "versioned_namespace"]

#: Field-metadata flag: a dataclass field declared with
#: ``field(default=None, metadata={OMIT_IF_DEFAULT: True})`` is left out of
#: the canonical encoding while it still equals its declared default.  This
#: lets a spec grow a new optional sub-spec without changing the hash of any
#: configuration that does not use it — pinned goldens stay byte-identical —
#: while any non-default value participates in the digest as usual.
OMIT_IF_DEFAULT = "repro_hash_omit_if_default"


def versioned_namespace(tag: str) -> str:
    """A cache namespace stamped with the simulator version.

    Cached results are only bit-identical to a recomputation while the
    simulator code is unchanged, so persistent (on-disk) cache keys carry the
    package version: after an upgrade, old entries simply stop matching
    instead of silently serving stale figures.
    """
    from .. import __version__

    return f"{tag}/v{__version__}"


def _encode(value: Any) -> Any:
    """Convert a configuration value into a canonical JSON-serialisable form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if not (
                f.metadata.get(OMIT_IF_DEFAULT)
                and f.default is not dataclasses.MISSING
                and getattr(value, f.name) == f.default
            )
        }
        return {"__dataclass__": type(value).__qualname__, "fields": fields}
    if isinstance(value, Enum):
        return {"__enum__": type(value).__qualname__, "value": _encode(value.value)}
    # NumPy scalars are normalised to their Python equivalents so that specs
    # built from numpy-driven sweeps (np.arange qps levels, np.int64 core
    # counts) hash identically to their plain-Python twins.
    if isinstance(value, (bool, np.bool_)) or value is None:
        return bool(value) if value is not None else None
    if isinstance(value, str):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        # repr round-trips doubles exactly; JSON's float formatting does not.
        return {"__float__": repr(float(value))}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, frozenset):
        # Sort by each item's canonical JSON — encoded items may be dicts
        # (floats, enums, dataclasses), which do not compare with ``<``.
        return {"__frozenset__": sorted((_encode(item) for item in value), key=_sort_key)}
    if isinstance(value, dict):
        # Keys are encoded like any other value (so 1 and "1" stay distinct)
        # and entries are ordered by their canonical JSON.
        entries = [[_encode(key), _encode(val)] for key, val in value.items()]
        entries.sort(key=_sort_key)
        return {"__dict__": entries}
    raise TypeError(
        f"cannot canonically encode {type(value).__name__!r} for spec hashing"
    )


def _sort_key(encoded: Any) -> str:
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def canonical_encoding(spec: Any, namespace: str = "") -> str:
    """The canonical JSON document hashed by :func:`spec_hash`."""
    return json.dumps(
        {"namespace": namespace, "spec": _encode(spec)},
        sort_keys=True,
        separators=(",", ":"),
    )


#: Attribute under which a dataclass spec memoises its digests (per
#: namespace).  Not a dataclass field, so it is invisible to ``fields()``
#: walks, equality and the canonical encoding itself.
_MEMO_ATTR = "_repro_spec_hash_memo"


def spec_hash(spec: Any, namespace: str = "") -> str:
    """SHA-256 hex digest of a configuration's canonical encoding.

    ``namespace`` distinguishes keys produced by different kinds of run (for
    example single-machine experiments vs full cluster simulations) that might
    otherwise share a configuration dataclass.

    Digests of dataclass specs are memoised on the instance: specs are frozen,
    so a spec object hashes identically for its whole lifetime, and the cache
    layer asks for the same digest on every lookup.  ``dataclasses.replace``
    builds a new instance, so derived specs never inherit a stale memo.
    """
    memo = None
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        memo = getattr(spec, _MEMO_ATTR, None)
        if memo is not None:
            cached = memo.get(namespace)
            if cached is not None:
                return cached
        else:
            memo = {}
            try:
                # Frozen dataclasses block normal attribute assignment, not
                # object.__setattr__; slotted specs (none today) just skip
                # the memo.
                object.__setattr__(spec, _MEMO_ATTR, memo)
            except (AttributeError, TypeError):
                memo = None
    encoded = canonical_encoding(spec, namespace=namespace).encode("utf-8")
    digest = hashlib.sha256(encoded).hexdigest()
    if memo is not None:
        memo[namespace] = digest
    return digest
