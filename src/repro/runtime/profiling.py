"""cProfile wrapper shared by the matrix and fleet command lines.

``--profile PATH`` on either CLI runs the requested work under
:mod:`cProfile` and writes a cumulative-time report to ``PATH``, so the
profiling workflow that drove the kernel optimisation work (see the README's
Performance section) is one flag away instead of a bespoke script.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, TypeVar

__all__ = ["run_profiled"]

T = TypeVar("T")

#: Number of entries included in the written report.
REPORT_LINES = 60


def run_profiled(fn: Callable[[], T], profile_path: str) -> T:
    """Run ``fn`` under cProfile and write a cumulative-time report.

    The report is written even when ``fn`` raises, so a failing run still
    leaves its profile behind for inspection.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result: Any = fn()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(REPORT_LINES)
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(stream.getvalue())
    return result
