"""Back-compat shim: the cProfile wrapper moved to
:mod:`repro.telemetry.profiling` when profiling was consolidated under the
telemetry subsystem.  Import from there in new code."""

from __future__ import annotations

from ..telemetry.profiling import REPORT_LINES, run_profiled

__all__ = ["run_profiled", "REPORT_LINES"]
