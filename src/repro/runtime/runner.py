"""Parallel experiment runtime.

Single-machine experiments are embarrassingly parallel — each one owns its
engine, kernel and named random streams, and is a pure function of its
``ExperimentSpec`` — so the figure harnesses fan whole batches of specs
across worker processes instead of running them back to back.  Three
properties the harnesses rely on:

* **Deterministic ordering** — results come back in task order regardless of
  which worker finished first, so figure rows are byte-identical whether a
  batch ran serially or across N processes.
* **Batch deduplication** — identical specs inside one batch (every figure
  re-runs the standalone baseline) execute exactly once.
* **Shared caching** — results are stored in a content-addressed
  :class:`~repro.runtime.cache.ResultCache` keyed on the spec hash, so
  different harnesses (Figure 8's comparison, Figure 10's calibration, the
  benchmarks) reuse each other's runs.
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.schema import ExperimentSpec
from ..errors import ConfigError
from ..experiments.single_machine import SingleMachineExperiment, SingleMachineResult
from .cache import ResultCache, default_cache
from .spec_hash import spec_hash, versioned_namespace

__all__ = [
    "ExperimentTask",
    "RunOutcome",
    "ExperimentRunner",
    "default_runner",
    "reset_default_runner",
]

#: Environment variable overriding the worker count (0 or 1 forces serial).
WORKERS_ENV = "REPRO_RUNNER_WORKERS"

#: Cache-miss sentinel so a legitimately cached ``None`` is still a hit.
_MISS = object()


def _single_machine_namespace() -> str:
    """Version-stamped cache namespace for single-machine experiment runs."""
    return versioned_namespace("single-machine")


@dataclass(frozen=True)
class ExperimentTask:
    """One single-machine run requested from the runner.

    ``scenario`` is a presentation label only — it does not participate in the
    cache key, so the same spec run under different labels is computed once.
    """

    spec: ExperimentSpec
    scenario: str = "custom"


@dataclass
class RunOutcome:
    """A completed (or cache-served) single-machine run."""

    result: SingleMachineResult
    #: Post-warm-up latency samples (seconds) — what calibration interpolates.
    latency_samples: np.ndarray = field(default_factory=lambda: np.empty(0))
    key: str = ""
    from_cache: bool = False


def _execute_single_machine(
    payload: Tuple[ExperimentSpec, str],
) -> Tuple[SingleMachineResult, np.ndarray]:
    """Worker entry point: run one experiment and return result + samples."""
    spec, scenario = payload
    experiment = SingleMachineExperiment(spec, scenario=scenario)
    result = experiment.run()
    return result, experiment.primary.collector.samples()


def _call(payload: Tuple[Callable[..., Any], tuple]) -> Any:
    fn, args = payload
    return fn(*args)


class ExperimentRunner:
    """Executes experiment batches across worker processes with caching."""

    #: A dead worker (OOM kill, segfault, fork bomb victim) breaks the whole
    #: :class:`ProcessPoolExecutor`, not just its own task.  The batch retries
    #: on a fresh pool this many times with capped exponential backoff, then
    #: degrades to serial execution rather than losing the batch.
    POOL_ATTEMPTS = 3
    POOL_BACKOFF_BASE = 0.1
    POOL_BACKOFF_CAP = 2.0

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        use_cache: bool = True,
    ) -> None:
        if max_workers is None:
            env = os.environ.get(WORKERS_ENV)
            if env:
                try:
                    max_workers = int(env)
                except ValueError:
                    raise ConfigError(
                        f"{WORKERS_ENV} must be an integer, got {env!r}"
                    ) from None
            else:
                max_workers = os.cpu_count() or 1
        self._max_workers = max(1, int(max_workers))
        self._cache = cache if cache is not None else default_cache()
        self._use_cache = use_cache
        #: Broken pools survived via retry or serial fallback (observability).
        self.pool_failures = 0
        # Worker processes are forked so they inherit the imported simulator
        # and the parent's sys.path.  Fork is only safe on Linux (macOS
        # advertises it but fork-without-exec can abort inside system
        # frameworks); everywhere else we run serially rather than depend on
        # spawn re-imports finding the package.
        self._mp_context = (
            multiprocessing.get_context("fork")
            if sys.platform.startswith("linux")
            and "fork" in multiprocessing.get_all_start_methods()
            else None
        )

    # ------------------------------------------------------------ properties
    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def cache(self) -> ResultCache:
        return self._cache

    def _parallel(self, pending: int) -> bool:
        return pending > 1 and self._max_workers > 1 and self._mp_context is not None

    def _fan_out(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        """The one execution strategy: process pool when it pays, else serial.

        A :class:`BrokenProcessPool` (a worker died mid-batch) is retried on
        a fresh pool with capped exponential backoff; if every attempt dies
        the batch runs serially — slower, but it completes, and a worker that
        crashes deterministically then raises the real error in-process where
        it is debuggable.
        """
        if not self._parallel(len(payloads)):
            return [fn(payload) for payload in payloads]
        workers = min(self._max_workers, len(payloads))
        for attempt in range(self.POOL_ATTEMPTS):
            try:
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=self._mp_context
                ) as pool:
                    return list(pool.map(fn, payloads, chunksize=1))
            except BrokenProcessPool:
                self.pool_failures += 1
                delay = min(
                    self.POOL_BACKOFF_BASE * (2**attempt), self.POOL_BACKOFF_CAP
                )
                if delay > 0:
                    time.sleep(delay)
        return [fn(payload) for payload in payloads]

    # --------------------------------------------------------------- mapping
    def map(
        self,
        fn: Callable[..., Any],
        items: Sequence[tuple],
        cache_namespace: Optional[str] = None,
    ) -> List[Any]:
        """Run ``fn(*args)`` for every args-tuple with deterministic ordering.

        ``fn`` must be a module-level callable and its arguments and return
        value picklable.  Used for coarse-grained work that is not a
        single-machine experiment (e.g. full cluster simulations).  Identical
        ``(fn, args)`` payloads in one batch execute once.  When
        ``cache_namespace`` is given, each call is additionally cached under
        the hash of ``(fn, args)`` in that namespace — only sound when ``fn``
        is a deterministic function of its arguments.
        """
        payloads = [(fn, tuple(args)) for args in items]
        use_cache = cache_namespace is not None and self._use_cache
        keys: List[Optional[str]] = []
        for _, args in payloads:
            try:
                keys.append(
                    spec_hash(
                        [fn.__module__, fn.__qualname__, list(args)],
                        namespace=cache_namespace or "map/dedupe",
                    )
                )
            except TypeError:
                # Unencodable argument: run this payload as-is, no dedupe.
                keys.append(None)

        results: List[Any] = [_MISS] * len(payloads)
        pending: List[int] = []
        seen: Dict[str, int] = {}
        for index, key in enumerate(keys):
            if key is not None and key in seen:
                continue  # duplicate payload: computed once, fanned out below
            if key is not None:
                seen[key] = index
                if use_cache:
                    hit = self._cache.get(key, default=_MISS)
                    if hit is not _MISS:
                        results[index] = hit
                        continue
            pending.append(index)

        values = self._fan_out(_call, [payloads[index] for index in pending])
        for index, value in zip(pending, values):
            results[index] = value
            if use_cache and keys[index] is not None:
                self._cache.put(keys[index], value)

        # Fan values out to duplicate payloads, and hand out deep copies of
        # anything shared (cache entries or duplicated values) — no caller
        # may receive an aliased mutable result.
        shared = {key for key in seen if use_cache or keys.count(key) > 1}
        by_key = {
            keys[i]: results[i]
            for i in range(len(payloads))
            if keys[i] is not None and results[i] is not _MISS
        }
        for index, key in enumerate(keys):
            if results[index] is _MISS and key is not None and key in by_key:
                results[index] = by_key[key]
        return [
            copy.deepcopy(value) if keys[index] in shared else value
            for index, value in enumerate(results)
        ]

    # --------------------------------------------------------------- batches
    def run_batch(self, tasks: Sequence[ExperimentTask]) -> List[RunOutcome]:
        """Run every task, returning outcomes in task order.

        Cache hits are served without simulating; identical specs appearing
        multiple times in the batch are simulated once.
        """
        namespace = _single_machine_namespace()
        keys = [spec_hash(task.spec, namespace=namespace) for task in tasks]
        cached: Dict[str, Tuple[SingleMachineResult, np.ndarray]] = {}
        pending: Dict[str, ExperimentTask] = {}
        for task, key in zip(tasks, keys):
            if key in cached or key in pending:
                continue
            hit = self._cache.get(key, default=_MISS) if self._use_cache else _MISS
            if hit is not _MISS:
                cached[key] = hit
            else:
                pending[key] = task

        computed = self._execute_pending(pending)
        for key, value in computed.items():
            if self._use_cache:
                self._cache.put(key, value)

        outcomes: List[RunOutcome] = []
        for task, key in zip(tasks, keys):
            from_cache = key in cached
            result, samples = cached[key] if from_cache else computed[key]
            outcomes.append(
                RunOutcome(
                    # Relabel for the requesting harness, on a deep copy: the
                    # stored payload is shared by every future cache hit, so
                    # no caller may ever receive an aliased mutable field.
                    result=dataclasses.replace(
                        copy.deepcopy(result), scenario=task.scenario
                    ),
                    latency_samples=samples.copy(),
                    key=key,
                    from_cache=from_cache,
                )
            )
        return outcomes

    def run(self, spec: ExperimentSpec, scenario: str = "custom") -> SingleMachineResult:
        """Convenience wrapper: run (or fetch) one experiment."""
        return self.run_batch([ExperimentTask(spec, scenario)])[0].result

    # ------------------------------------------------------------- internals
    def _execute_pending(
        self, pending: Dict[str, ExperimentTask]
    ) -> Dict[str, Tuple[SingleMachineResult, np.ndarray]]:
        if not pending:
            return {}
        keys = list(pending)
        payloads = [(pending[key].spec, pending[key].scenario) for key in keys]
        return dict(zip(keys, self._fan_out(_execute_single_machine, payloads)))


_default: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """The process-wide runner used by the figure harnesses by default."""
    global _default
    if _default is None:
        _default = ExperimentRunner()
    return _default


def reset_default_runner() -> None:
    """Forget the process-wide runner (used by tests and benchmarks)."""
    global _default
    _default = None
