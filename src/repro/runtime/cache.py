"""Content-addressed cache for experiment results.

Every entry is keyed by the :func:`repro.runtime.spec_hash.spec_hash` of the
configuration that produced it.  Because experiments are deterministic per
seed, a hit is bit-identical to a recomputation, so the figure harnesses and
``ProductionClusterSimulation.calibrate()`` can share single-machine runs
instead of re-simulating them.

Two storage layers:

* an in-process dictionary, always on — this is what lets one test session or
  one figure-harness invocation reuse the standalone baselines across figures;
* an optional on-disk layer (one pickle per entry under a cache directory),
  enabled by passing ``directory`` or by setting ``REPRO_CACHE_DIR``, which
  persists calibrations across processes and CI runs.

The disk layer can be bounded with ``max_entries`` (or the
``REPRO_CACHE_MAX_ENTRIES`` environment variable): long fleet and matrix
sweeps write thousands of shard results, and an unbounded cache directory
would otherwise grow without limit.  Eviction is least-recently-used — disk
hits refresh an entry's mtime, and every store drops the stalest entries
over the cap.  An evicted entry is simply a future miss: the caller
recomputes and the result is re-admitted.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

from ..errors import ConfigError

__all__ = ["ResultCache", "default_cache", "reset_default_cache"]

#: Environment variable naming a directory for the persistent cache layer.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the number of on-disk entries (LRU evicted).
CACHE_MAX_ENTRIES_ENV = "REPRO_CACHE_MAX_ENTRIES"


def _max_entries_from_env() -> Optional[int]:
    raw = os.environ.get(CACHE_MAX_ENTRIES_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{CACHE_MAX_ENTRIES_ENV} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(f"{CACHE_MAX_ENTRIES_ENV} must be >= 0, got {value}")
    return value or None  # 0 means unbounded


class ResultCache:
    """Two-layer (memory + optional disk) content-addressed cache."""

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self._memory: dict = {}
        self._directory: Optional[Path] = Path(directory) if directory else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        if max_entries is None:
            max_entries = _max_entries_from_env()
        elif max_entries < 0:
            raise ConfigError(f"max_entries must be >= 0, got {max_entries}")
        self._max_entries = max_entries or None  # 0 means unbounded
        #: Approximate count of on-disk entries, seeded lazily; lets the LRU
        #: cap skip the directory scan until the cap is actually reached.
        self._disk_entries: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        #: Corrupt disk entries renamed to ``*.pkl.corrupt`` instead of read.
        self.quarantined = 0

    @property
    def max_entries(self) -> Optional[int]:
        """The disk layer's entry cap (``None`` = unbounded)."""
        return self._max_entries

    @property
    def directory(self) -> Optional[Path]:
        return self._directory

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_path(key) is not None

    def _disk_path(self, key: str) -> Optional[Path]:
        if self._directory is None:
            return None
        path = self._directory / f"{key}.pkl"
        return path if path.is_file() else None

    def get(self, key: str, default: Any = None) -> Optional[Any]:
        """Return the cached value for ``key``, or ``default`` on a miss.

        Pass a sentinel as ``default`` to distinguish a cached ``None`` from
        a miss.
        """
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        path = self._disk_path(key)
        if path is not None:
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except Exception:
                # A torn or stale entry is a miss, not a crash — unpickling a
                # foreign file can fail in arbitrary ways (truncation, moved
                # or renamed classes, protocol drift), and every one of them
                # means the same thing here: quarantine the entry and let the
                # caller recompute (the put will overwrite it).  Renaming to
                # ``.pkl.corrupt`` rather than deleting keeps the bad bytes
                # for post-mortem while taking the entry out of every
                # ``*.pkl`` scan, so it is never re-read or re-counted.
                try:
                    path.rename(path.with_name(path.name + ".corrupt"))
                    self.quarantined += 1
                    if self._disk_entries is not None and self._disk_entries > 0:
                        self._disk_entries -= 1
                except OSError:
                    pass
                self.misses += 1
                return default
            self._memory[key] = value
            self.hits += 1
            # Refresh the entry's recency so LRU eviction spares hot entries.
            try:
                os.utime(path)
            except OSError:
                pass
            return value
        self.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in every enabled layer.

        The disk layer is an optimisation: a failed write (full or read-only
        volume, unpicklable payload) degrades to memory-only caching instead
        of aborting the run that just computed the value.
        """
        self._memory[key] = value
        self.stores += 1
        if self._directory is not None:
            try:
                # Write-then-rename so concurrent workers never read a torn file.
                target = self._directory / f"{key}.pkl"
                # Entry-count bookkeeping only matters when a cap is set; an
                # unbounded cache never pays the scan or the per-put stat.
                bounded = self._max_entries is not None
                replacing = bounded and target.is_file()
                entries_before = self._disk_count() if bounded else 0
                fd, tmp_name = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                    os.replace(tmp_name, target)
                except BaseException:
                    if os.path.exists(tmp_name):
                        os.unlink(tmp_name)
                    raise
                if bounded and not replacing:
                    self._disk_entries = entries_before + 1
                self._enforce_disk_cap()
            except Exception:
                # Mirrors get(): pickling can fail with PickleError,
                # AttributeError or TypeError depending on the payload, and
                # the filesystem with OSError — all degrade the same way.
                pass

    def _disk_count(self) -> int:
        """On-disk entry count, seeded by one directory scan then maintained.

        The count is advisory — another process sharing the directory can
        make it drift — but every over-cap enforcement rescans the directory
        and resynchronises it, so drift only ever delays an eviction.
        """
        if self._directory is None:
            return 0
        if self._disk_entries is None:
            self._disk_entries = sum(1 for _ in self._directory.glob("*.pkl"))
        return self._disk_entries

    def _enforce_disk_cap(self) -> None:
        """Drop the least-recently-used entries over ``max_entries``."""
        if self._directory is None or self._max_entries is None:
            return
        if self._disk_count() <= self._max_entries:
            return
        entries = []
        for path in self._directory.glob("*.pkl"):
            try:
                entries.append((path.stat().st_mtime_ns, path.name, path))
            except OSError:
                continue  # raced with another worker's eviction
        excess = len(entries) - self._max_entries
        entries.sort()
        for _, _, path in entries[: max(excess, 0)]:
            try:
                path.unlink()
                self.evictions += 1
            except OSError:
                pass
        self._disk_entries = min(len(entries), self._max_entries)

    def clear(self) -> None:
        """Drop the in-memory layer (the disk layer, if any, is left intact)."""
        self._memory.clear()


_default: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """The process-wide shared cache (disk-backed iff ``REPRO_CACHE_DIR`` is set)."""
    global _default
    if _default is None:
        directory = os.environ.get(CACHE_DIR_ENV) or None
        _default = ResultCache(directory=directory)
    return _default


def reset_default_cache() -> None:
    """Forget the process-wide cache (used by tests and benchmarks)."""
    global _default
    _default = None
