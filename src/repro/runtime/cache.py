"""Content-addressed cache for experiment results.

Every entry is keyed by the :func:`repro.runtime.spec_hash.spec_hash` of the
configuration that produced it.  Because experiments are deterministic per
seed, a hit is bit-identical to a recomputation, so the figure harnesses and
``ProductionClusterSimulation.calibrate()`` can share single-machine runs
instead of re-simulating them.

Two storage layers:

* an in-process dictionary, always on — this is what lets one test session or
  one figure-harness invocation reuse the standalone baselines across figures;
* an optional on-disk layer (one pickle per entry under a cache directory),
  enabled by passing ``directory`` or by setting ``REPRO_CACHE_DIR``, which
  persists calibrations across processes and CI runs.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = ["ResultCache", "default_cache", "reset_default_cache"]

#: Environment variable naming a directory for the persistent cache layer.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class ResultCache:
    """Two-layer (memory + optional disk) content-addressed cache."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self._memory: dict = {}
        self._directory: Optional[Path] = Path(directory) if directory else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def directory(self) -> Optional[Path]:
        return self._directory

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._disk_path(key) is not None

    def _disk_path(self, key: str) -> Optional[Path]:
        if self._directory is None:
            return None
        path = self._directory / f"{key}.pkl"
        return path if path.is_file() else None

    def get(self, key: str, default: Any = None) -> Optional[Any]:
        """Return the cached value for ``key``, or ``default`` on a miss.

        Pass a sentinel as ``default`` to distinguish a cached ``None`` from
        a miss.
        """
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        path = self._disk_path(key)
        if path is not None:
            try:
                with path.open("rb") as handle:
                    value = pickle.load(handle)
            except Exception:
                # A torn or stale entry is a miss, not a crash — unpickling a
                # foreign file can fail in arbitrary ways (truncation, moved
                # or renamed classes, protocol drift), and every one of them
                # means the same thing here: drop the entry and let the
                # caller recompute (the put will overwrite it).
                try:
                    path.unlink()
                except OSError:
                    pass
                self.misses += 1
                return default
            self._memory[key] = value
            self.hits += 1
            return value
        self.misses += 1
        return default

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` in every enabled layer.

        The disk layer is an optimisation: a failed write (full or read-only
        volume, unpicklable payload) degrades to memory-only caching instead
        of aborting the run that just computed the value.
        """
        self._memory[key] = value
        self.stores += 1
        if self._directory is not None:
            try:
                # Write-then-rename so concurrent workers never read a torn file.
                fd, tmp_name = tempfile.mkstemp(dir=self._directory, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                    os.replace(tmp_name, self._directory / f"{key}.pkl")
                except BaseException:
                    if os.path.exists(tmp_name):
                        os.unlink(tmp_name)
                    raise
            except Exception:
                # Mirrors get(): pickling can fail with PickleError,
                # AttributeError or TypeError depending on the payload, and
                # the filesystem with OSError — all degrade the same way.
                pass

    def clear(self) -> None:
        """Drop the in-memory layer (the disk layer, if any, is left intact)."""
        self._memory.clear()


_default: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """The process-wide shared cache (disk-backed iff ``REPRO_CACHE_DIR`` is set)."""
    global _default
    if _default is None:
        directory = os.environ.get(CACHE_DIR_ENV) or None
        _default = ResultCache(directory=directory)
    return _default


def reset_default_cache() -> None:
    """Forget the process-wide cache (used by tests and benchmarks)."""
    global _default
    _default = None
