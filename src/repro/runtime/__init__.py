"""Parallel experiment runtime: process fan-out plus content-addressed caching.

See :mod:`repro.runtime.runner` for the execution model and
:mod:`repro.runtime.cache` for the cache layers.
"""

from .cache import ResultCache, default_cache, reset_default_cache
from .runner import (
    ExperimentRunner,
    ExperimentTask,
    RunOutcome,
    default_runner,
    reset_default_runner,
)
from .seeds import derive_seed, replicate_seeds
from .spec_hash import canonical_encoding, spec_hash, versioned_namespace

__all__ = [
    "versioned_namespace",
    "derive_seed",
    "replicate_seeds",
    "ResultCache",
    "default_cache",
    "reset_default_cache",
    "ExperimentRunner",
    "ExperimentTask",
    "RunOutcome",
    "default_runner",
    "reset_default_runner",
    "canonical_encoding",
    "spec_hash",
]
