"""Figure 8 (and Section 6.1.4's progress numbers): head-to-head comparison."""

from conftest import DURATION, SEED, WARMUP, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig8_comparison(benchmark):
    figure = run_once(
        benchmark, figures.fig8_comparison, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    print_figure(
        "Figure 8 — comparison of isolation approaches (2,000 QPS, high secondary)",
        figure.rows,
        columns=[
            "approach", "p99_ms", "idle_cpu_pct", "secondary_progress",
            "relative_progress_pct", "drop_rate_pct",
        ],
        notes=figure.notes,
    )

    rows = {row["approach"]: row for row in figure.rows}
    standalone = rows["standalone"]
    no_isolation = rows["no_isolation"]
    blind = rows["blind_isolation"]
    cores = rows["cpu_cores"]
    cycles = rows["cpu_cycles"]

    # Figure 8a: blind isolation and static cores protect the tail; no
    # isolation destroys it.
    assert no_isolation["p99_ms"] > 5.0 * standalone["p99_ms"]
    assert blind["p99_ms"] < standalone["p99_ms"] + 2.0
    assert cores["p99_ms"] < standalone["p99_ms"] + 2.0

    # Figure 8b: blind isolation leaves less CPU idle than static cores
    # (the paper reports ~13% less idle time).
    assert blind["idle_cpu_pct"] < cores["idle_cpu_pct"]

    # Figure 8c + Section 6.1.4: progress ordering blind > cores > cycles,
    # with cycle throttling an order of magnitude behind.
    assert blind["secondary_progress"] > cores["secondary_progress"]
    assert cores["secondary_progress"] > cycles["secondary_progress"]
    assert blind["relative_progress_pct"] > 40.0
    assert cycles["relative_progress_pct"] < 15.0
