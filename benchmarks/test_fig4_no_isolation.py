"""Figure 4: standalone vs unrestricted mid/high secondary (latency + CPU)."""

from conftest import DURATION, SEED, WARMUP, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig4_no_isolation(benchmark):
    figure = run_once(
        benchmark, figures.fig4_no_isolation, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    print_figure(
        "Figure 4 — query latency and CPU breakdown without isolation",
        figure.rows,
        columns=[
            "workload", "qps", "p50_ms", "p95_ms", "p99_ms", "drop_rate_pct",
            "primary_cpu_pct", "secondary_cpu_pct", "idle_cpu_pct",
        ],
        notes=figure.notes,
    )

    for qps in (2000.0, 4000.0):
        standalone = figure.row(workload="standalone", qps=qps)
        mid = figure.row(workload="mid-secondary", qps=qps)
        high = figure.row(workload="high-secondary", qps=qps)
        # Paper: the baseline P99 is ~12 ms at both loads and the machine is
        # mostly idle (80% / 60%).
        assert 6.0 < standalone["p99_ms"] < 25.0
        assert standalone["idle_cpu_pct"] > 45.0
        # Paper: a mid secondary degrades the tail (up to ~42%), a high
        # secondary degrades it by an order of magnitude (up to 29x).
        assert mid["p99_ms"] >= standalone["p99_ms"]
        assert high["p99_ms"] > 5.0 * standalone["p99_ms"]
        # The unrestricted secondary leaves essentially no idle CPU.
        assert high["idle_cpu_pct"] < 5.0
