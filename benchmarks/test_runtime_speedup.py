"""Wall-clock benchmark of the parallel runtime + calibration cache.

Times the Figure 8 comparison harness (all five scenarios) three ways —
serial without caching (the pre-runtime behaviour), fanned across all cores,
and re-run against a warm cache — and records the results in
``BENCH_runtime.json`` at the repository root.  Also verifies that a cached
re-calibration of the Figure 10 production model skips every duplicate
single-machine simulation.
"""

from __future__ import annotations

import json
import os
import time

from conftest import DURATION, SEED, WARMUP

from repro.cluster.largescale import ProductionClusterSimulation
from repro.experiments import figures
from repro.runtime import ExperimentRunner, ResultCache

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)


def _timed_fig8(runner):
    start = time.perf_counter()
    figure = figures.fig8_comparison(
        duration=DURATION, warmup=WARMUP, seed=SEED, runner=runner
    )
    return time.perf_counter() - start, figure


def test_runtime_speedup_and_cache():
    cores = os.cpu_count() or 1

    serial_seconds, serial_figure = _timed_fig8(
        ExperimentRunner(max_workers=1, cache=ResultCache(), use_cache=False)
    )

    cache = ResultCache()
    parallel_runner = ExperimentRunner(max_workers=cores, cache=cache)
    parallel_seconds, parallel_figure = _timed_fig8(parallel_runner)
    stores_after_cold = cache.stores

    cached_seconds, cached_figure = _timed_fig8(parallel_runner)

    # Correctness first: all three executions produce identical rows.
    assert parallel_figure.rows == serial_figure.rows
    assert cached_figure.rows == serial_figure.rows
    # The warm run simulated nothing.
    assert cache.stores == stores_after_cold

    speedup_parallel = serial_seconds / parallel_seconds
    speedup_cached = serial_seconds / cached_seconds
    # The cache alone guarantees the headline >= 2x.  The cold parallel
    # speedup depends on how loaded the runner is, so it is recorded in the
    # JSON rather than asserted — gating CI on wall-clock parallelism flakes
    # on contended shared runners.
    assert speedup_cached >= 2.0

    # Figure 10 calibration: a second calibration (fresh instance, shared
    # cache) must skip every duplicate single-machine simulation.
    calibration_cache = ResultCache()
    calibration_runner = ExperimentRunner(max_workers=cores, cache=calibration_cache)

    def _calibrate():
        simulation = ProductionClusterSimulation(
            calibration_qps=(1200.0, 2400.0),
            calibration_duration=1.0,
            calibration_warmup=0.2,
            seed=SEED,
            runner=calibration_runner,
        )
        start = time.perf_counter()
        points = simulation.calibrate()
        return time.perf_counter() - start, points

    cold_calibration_seconds, cold_points = _calibrate()
    stores_after_calibration = calibration_cache.stores
    warm_calibration_seconds, warm_points = _calibrate()
    assert calibration_cache.stores == stores_after_calibration
    assert len(warm_points) == len(cold_points)
    assert all(
        (w.latency_samples == c.latency_samples).all()
        for w, c in zip(warm_points, cold_points)
    )
    assert warm_calibration_seconds < cold_calibration_seconds

    record = {
        "benchmark": "fig8_comparison (5 scenarios) + fig10 calibration",
        "duration_simulated_s": DURATION,
        "warmup_simulated_s": WARMUP,
        "seed": SEED,
        "cpu_count": cores,
        "fig8_serial_uncached_s": round(serial_seconds, 3),
        "fig8_parallel_cold_s": round(parallel_seconds, 3),
        "fig8_cached_s": round(cached_seconds, 4),
        "speedup_parallel_cold": round(speedup_parallel, 2),
        "speedup_cached": round(speedup_cached, 1),
        "calibration_cold_s": round(cold_calibration_seconds, 3),
        "calibration_cached_s": round(warm_calibration_seconds, 4),
        "cache_entries": len(cache),
    }
    if cores == 1:
        # A ~1.0x "parallel" speedup on a single-core runner is expected, not
        # a runtime defect — say so in the record instead of letting the
        # number mislead.
        record["parallelism_limited_by_cpu_count"] = (
            "cpu_count is 1: the parallel run degenerates to the serial path, "
            "so speedup_parallel_cold carries no signal on this machine"
        )
    from repro.reporting.bench import merge_bench_record

    record = merge_bench_record(_BENCH_PATH, record)
    print(f"\nBENCH_runtime: {json.dumps(record, indent=2)}")