"""Figure 6: statically restricting the secondary's CPU cores."""

from conftest import DURATION, SEED, WARMUP, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig6_static_cores(benchmark):
    figure = run_once(
        benchmark, figures.fig6_static_cores, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    print_figure(
        "Figure 6 — static core restriction of the secondary",
        figure.rows,
        columns=[
            "workload", "qps", "secondary_cores", "p50_delta_ms", "p95_delta_ms",
            "p99_delta_ms", "secondary_cpu_pct", "idle_cpu_pct",
        ],
        notes=figure.notes,
    )

    for qps in (2000.0, 4000.0):
        eight = figure.row(workload="8-cores", qps=qps)
        # Paper: with only 8 cores the secondary cannot hurt the tail even at
        # peak load, but it is limited to ~17% of the machine.
        assert eight["p99_delta_ms"] < 2.0
        assert eight["secondary_cpu_pct"] < 20.0
    # At peak load a generous static allocation (24 cores) leaves too little
    # headroom for the primary's bursts and the tail degrades.
    twenty_four_peak = figure.row(workload="24-cores", qps=4000.0)
    eight_peak = figure.row(workload="8-cores", qps=4000.0)
    assert twenty_four_peak["p99_delta_ms"] > eight_peak["p99_delta_ms"]
