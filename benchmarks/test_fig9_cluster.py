"""Figure 9: per-layer latency on the serving cluster for three colocation modes."""

from conftest import SEED, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig9_cluster(benchmark):
    # A scaled-down partition count keeps the event-driven cluster tractable;
    # per-machine load (4,000 QPS) matches the paper's configuration because
    # every machine of a row serves every request routed to that row.
    figure = run_once(
        benchmark,
        figures.fig9_cluster,
        partitions=4,
        rows=2,
        tla_machines=3,
        total_qps=8000.0,
        duration=1.5,
        warmup=0.3,
        seed=SEED,
    )
    print_figure(
        "Figure 9 — cluster latency per layer (AVG / P95 / P99, milliseconds)",
        figure.rows,
        columns=[
            "scenario",
            "local_avg_ms", "local_p95_ms", "local_p99_ms",
            "mla_avg_ms", "mla_p95_ms", "mla_p99_ms",
            "tla_avg_ms", "tla_p95_ms", "tla_p99_ms",
            "idle_cpu_pct",
        ],
        notes=figure.notes,
    )

    rows = {row["scenario"]: row for row in figure.rows}
    standalone = rows["standalone"]
    cpu_bound = rows["cpu-bound secondary"]
    disk_bound = rows["disk-bound secondary"]

    for layer in ("local_p99_ms", "mla_p99_ms", "tla_p99_ms"):
        # Paper: with PerfIso, each layer's P99 stays within ~1.2 ms of the
        # standalone cluster (we allow a few ms of simulator slack).
        assert cpu_bound[layer] - standalone[layer] < 5.0
        assert disk_bound[layer] - standalone[layer] < 5.0

    # Aggregation can only add latency: local <= MLA <= TLA.
    for row in figure.rows:
        assert row["local_p99_ms"] <= row["mla_p99_ms"] + 0.5
        assert row["mla_p99_ms"] <= row["tla_p99_ms"] + 0.5

    # Colocation actually used the machines.
    assert cpu_bound["secondary_cpu_pct"] > 20.0
