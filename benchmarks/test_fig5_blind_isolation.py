"""Figure 5: CPU blind isolation with 4 and 8 buffer cores."""

from conftest import DURATION, SEED, WARMUP, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig5_blind_isolation(benchmark):
    figure = run_once(
        benchmark, figures.fig5_blind_isolation, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    print_figure(
        "Figure 5 — latency degradation under CPU blind isolation",
        figure.rows,
        columns=[
            "workload", "qps", "buffer_cores", "p50_delta_ms", "p95_delta_ms", "p99_delta_ms",
            "p99_ms", "secondary_cpu_pct", "idle_cpu_pct",
        ],
        notes=figure.notes,
    )

    for qps in (2000.0, 4000.0):
        eight = figure.row(workload="blind-8-buffers", qps=qps)
        four = figure.row(workload="blind-4-buffers", qps=qps)
        # Paper: 8 buffer cores keep the 99th percentile within ~1 ms of
        # standalone (we allow 2 ms of slack for simulator noise).
        assert eight["p99_delta_ms"] < 2.0
        assert eight["drop_rate_pct"] == 0.0
        # Fewer buffer cores can only do the same or worse on the tail, but
        # give the secondary at least as much CPU.
        assert four["p99_delta_ms"] >= eight["p99_delta_ms"] - 0.5
        assert four["secondary_cpu_pct"] >= eight["secondary_cpu_pct"] - 1.0
        # Colocation pushes machine utilisation far above the standalone ~20-40%.
        assert eight["idle_cpu_pct"] < 40.0
