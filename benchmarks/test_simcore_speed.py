"""Simulation-kernel speed benchmark and perf regression guard.

Measures the hot path three ways and records the results in
``BENCH_simcore.json`` at the repository root:

* **events/s** — the five Figure 8 scenarios run straight on
  :class:`SingleMachineExperiment` (no runner, no cache), with the engines'
  executed-event counters summed.  This is the purest kernel-throughput
  number and the one the nightly perf guard watches.
* **fig8 serial-uncached wall time** — the same five scenarios through the
  serial, cache-disabled runner, directly comparable to the
  ``fig8_serial_uncached_s`` field PR 3 recorded in ``BENCH_runtime.json``.
* **fleet machines/s** — the ``BENCH_fleet.json`` configuration (600
  machines, 3 stages, 64-machine shards) on an all-cores runner.
* **telemetry overhead** — the direct fig8 runs repeated with a streaming
  :class:`~repro.telemetry.stream.TelemetrySession` attached; the overhead
  versus the uninstrumented rate is recorded and, under the perf guard,
  must stay within :data:`MAX_TELEMETRY_OVERHEAD`.

The ``*_baseline_*`` fields are the numbers committed at PR 3, so the JSON
itself documents before vs. after.

Perf guard: when ``REPRO_PERF_GUARD`` is set (the nightly CI job sets it),
the test loads the *committed* ``BENCH_simcore.json`` before overwriting it
and fails if events/s regressed by more than 25 %.  The committed baseline
carries the machine it was measured on implicitly: if the nightly runner
fleet's single-thread performance drops below ~75 % of the committing
machine's, refresh the baseline by re-running this benchmark in CI and
committing the artifact rather than widening the tolerance.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import tempfile
import time

from conftest import DURATION, SEED, WARMUP

from repro.experiments import figures
from repro.experiments.comparison import IsolationComparison
from repro.experiments.single_machine import SingleMachineExperiment
from repro.fleet.scenarios import default_fleet_spec
from repro.fleet.simulate import FleetSimulation
from repro.runtime import ExperimentRunner, ResultCache
from repro.telemetry import TelemetrySession

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_simcore.json"
)

#: Environment variable enabling the regression guard against the committed
#: BENCH_simcore.json (set by the nightly CI job).
PERF_GUARD_ENV = "REPRO_PERF_GUARD"

#: Maximum tolerated events/s regression before the guard fails the test.
MAX_REGRESSION = 0.25

#: Maximum tolerated slowdown when telemetry streaming is enabled.
MAX_TELEMETRY_OVERHEAD = 0.10

#: Maximum tolerated slowdown from the fault-injection seam when no faults
#: are declared ("zero measurable": within paired-measurement noise).
MAX_FAULTS_OVERHEAD = 0.03

#: PR 3 baselines, from BENCH_runtime.json / BENCH_fleet.json as committed at
#: d2a4bd2 (same scenario parameters and seed, cpu_count=1 container).
FIG8_BASELINE_S = 16.468
FLEET_BASELINE_MACHINES_PER_S = 108.6

#: Fleet benchmark shape — identical to benchmarks/test_fleet_scale.py.
FLEET_MACHINES = 600
FLEET_STAGES = 3


def _fig8_specs():
    comparison = IsolationComparison(duration=DURATION, warmup=WARMUP, seed=SEED)
    return [
        (approach, comparison._spec_for(approach))
        for approach in IsolationComparison.APPROACHES
    ]


def _fleet_spec():
    return default_fleet_spec(
        machines=FLEET_MACHINES,
        stages=FLEET_STAGES,
        seed=1,
        calibration_qps=(1200.0, 2400.0),
        calibration_duration=1.0,
        calibration_warmup=0.2,
        bake_buckets=3,
        stage_buckets=3,
        samples_per_machine_bucket=32,
    ).replace(shard_machines=64)


def test_simcore_speed_and_guard():
    cores = os.cpu_count() or 1

    # Committed record, read *before* this run overwrites it.
    committed = None
    if os.path.isfile(_BENCH_PATH):
        with open(_BENCH_PATH, "r", encoding="utf-8") as handle:
            committed = json.load(handle)

    # ---- raw kernel throughput: direct experiments, engines instrumented,
    # measured with and without telemetry streaming.  A shared runner sees
    # multi-second noise episodes that dwarf the true telemetry cost, so
    # the overhead is estimated the way that survives them:
    #
    # * one full warmup pass is run and discarded — CPython's adaptive
    #   interpreter makes first-execution legs 30-50 % slower, which would
    #   otherwise be charged to whichever side ran first;
    # * each sweep runs the uninstrumented and instrumented leg
    #   *back-to-back per scenario*, alternating which goes first so
    #   position bias cancels, and a noise episode lands on at most one
    #   ~1 s leg of one pair;
    # * legs are timed with ``time.process_time`` (CPU time), which is
    #   blind to the scheduler preemptions that dominate wall-clock
    #   scatter on a shared box;
    # * the committed figure aggregates the *per-scenario medians* across
    #   three sweeps, so an episode that does land inside a leg is voted
    #   out instead of polluting a whole-sweep sum.
    #
    # An independent best-of-N per path — the original design — let one
    # lucky uninstrumented trial manufacture a double-digit overhead
    # figure from a ~5 % effect.
    sweeps = 3
    specs = _fig8_specs()
    plain_cpu_s = {approach: [] for approach, _ in specs}
    telemetry_cpu_s = {approach: [] for approach, _ in specs}
    events_by_scenario = {}
    with tempfile.TemporaryDirectory() as scratch:
        warm_path = os.path.join(scratch, "bench_telemetry_warmup.jsonl")
        with TelemetrySession.to_path(warm_path, source="bench-simcore") as session:
            for approach, spec in specs:
                SingleMachineExperiment(spec).run()
                SingleMachineExperiment(spec, scenario=approach).run(telemetry=session)
        for sweep in range(sweeps):
            stream_path = os.path.join(scratch, f"bench_telemetry_{sweep}.jsonl")
            with TelemetrySession.to_path(stream_path, source="bench-simcore") as session:
                for index, (approach, spec) in enumerate(specs):
                    for leg in range(2):
                        gc.collect()  # don't charge earlier garbage here
                        if (leg + sweep + index) % 2 == 0:
                            start = time.process_time()
                            experiment = SingleMachineExperiment(spec)
                            experiment.run()
                            plain_cpu_s[approach].append(time.process_time() - start)
                            events_by_scenario[approach] = (
                                experiment.engine.events_executed
                            )
                        else:
                            # Instrumented leg: the probe seam plus 128
                            # JSONL snapshots (and controller decide spans)
                            # per run must stay within
                            # MAX_TELEMETRY_OVERHEAD of the plain leg.
                            start = time.process_time()
                            experiment = SingleMachineExperiment(spec, scenario=approach)
                            experiment.run(telemetry=session)
                            telemetry_cpu_s[approach].append(
                                time.process_time() - start
                            )
    direct_seconds = sum(
        statistics.median(times) for times in plain_cpu_s.values()
    )
    telemetry_seconds = sum(
        statistics.median(times) for times in telemetry_cpu_s.values()
    )
    telemetry_overhead = telemetry_seconds / direct_seconds - 1.0
    events_executed = sum(events_by_scenario.values())
    simulated_seconds = len(IsolationComparison.APPROACHES) * DURATION
    events_per_s = events_executed / direct_seconds
    assert events_executed > 0
    # The instrumented rate is derived from the overhead ratio rather than
    # measured against its own wall-clock sum so the three committed fields
    # stay mutually consistent even when the median sweep differs per
    # metric; it is normalised by the *domain* event count (probe events
    # execute too, and their work is charged to the wall clock).
    events_per_s_telemetry = events_per_s / (1.0 + telemetry_overhead)

    # ---- fig8 through the serial uncached runner (BENCH_runtime's metric).
    gc.collect()
    runner = ExperimentRunner(max_workers=1, cache=ResultCache(), use_cache=False)
    start = time.perf_counter()
    figure = figures.fig8_comparison(
        duration=DURATION, warmup=WARMUP, seed=SEED, runner=runner
    )
    fig8_seconds = time.perf_counter() - start
    assert figure.rows

    # ---- fleet throughput (BENCH_fleet's configuration).  Best of two
    # cold trials: the cold fleet run is short enough that a single
    # scheduler hiccup on a shared runner skews it by double-digit percent.
    fleet_seconds = None
    for _trial in range(2):
        gc.collect()
        fleet_runner = ExperimentRunner(max_workers=cores, cache=ResultCache())
        start = time.perf_counter()
        fleet = FleetSimulation(_fleet_spec(), runner=fleet_runner).run()
        trial_seconds = time.perf_counter() - start
        assert fleet.status == "completed"
        if fleet_seconds is None or trial_seconds < fleet_seconds:
            fleet_seconds = trial_seconds
    fleet_machines_per_s = FLEET_MACHINES / fleet_seconds

    record = {
        "benchmark": "simulation kernel hot path (fig8 direct + serial runner + fleet)",
        "duration_simulated_s": DURATION,
        "warmup_simulated_s": WARMUP,
        "seed": SEED,
        "cpu_count": cores,
        "events_executed": events_executed,
        "events_per_s": round(events_per_s, 1),
        "events_per_s_telemetry": round(events_per_s_telemetry, 1),
        "telemetry_overhead_pct": round(telemetry_overhead * 100.0, 2),
        "simulated_s_per_wall_s": round(simulated_seconds / direct_seconds, 4),
        "fig8_serial_uncached_s": round(fig8_seconds, 3),
        "fig8_baseline_s": FIG8_BASELINE_S,
        "fig8_speedup_vs_baseline": round(FIG8_BASELINE_S / fig8_seconds, 2),
        "fleet_wall_s": round(fleet_seconds, 3),
        "fleet_machines_per_s": round(fleet_machines_per_s, 1),
        "fleet_baseline_machines_per_s": FLEET_BASELINE_MACHINES_PER_S,
        "fleet_speedup_vs_baseline": round(
            fleet_machines_per_s / FLEET_BASELINE_MACHINES_PER_S, 2
        ),
    }
    from repro.reporting.bench import merge_bench_record

    record = merge_bench_record(_BENCH_PATH, record)
    print(f"\nBENCH_simcore: {json.dumps(record, indent=2)}")

    if os.environ.get(PERF_GUARD_ENV):
        assert telemetry_overhead <= MAX_TELEMETRY_OVERHEAD, (
            f"telemetry overhead {telemetry_overhead:.1%} exceeds the "
            f"{MAX_TELEMETRY_OVERHEAD:.0%} budget "
            f"({events_per_s:.0f} -> {events_per_s_telemetry:.0f} events/s)"
        )
    if os.environ.get(PERF_GUARD_ENV) and committed is not None:
        floor = committed["events_per_s"] * (1.0 - MAX_REGRESSION)
        assert events_per_s >= floor, (
            f"kernel throughput regressed: {events_per_s:.0f} events/s is below "
            f"{floor:.0f} (committed {committed['events_per_s']:.0f} events/s "
            f"minus the {MAX_REGRESSION:.0%} tolerance); if the slowdown is "
            "intentional, re-run this benchmark and commit the new "
            "BENCH_simcore.json"
        )


def test_disabled_faults_zero_overhead():
    """The fault-injection seam must be free when no faults are declared.

    Paired legs run the same fig8 blind-isolation scenario with
    ``faults=None`` and with an explicit all-disabled :class:`FaultPlanSpec`
    — both must take the no-injector fast path, execute the identical event
    count, and (under the perf guard) agree on kernel throughput within
    paired-measurement noise.  This is the events/s face of the subsystem's
    zero-fault contract; the byte-identical-summary face is pinned in
    ``tests/faults/test_schedules.py``.
    """
    import dataclasses

    from repro.config.schema import FaultPlanSpec
    from repro.experiments import scenarios

    plain_spec = scenarios.blind_isolation(
        qps=600.0, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    noop_spec = dataclasses.replace(plain_spec, faults=FaultPlanSpec())

    # One discarded warmup pass per path (CPython's adaptive interpreter),
    # then alternating back-to-back legs timed on CPU time — the same
    # noise discipline as the telemetry-overhead estimate above.
    SingleMachineExperiment(plain_spec).run()
    SingleMachineExperiment(noop_spec).run()
    timings = {id(plain_spec): [], id(noop_spec): []}
    events = set()
    for sweep in range(3):
        order = (plain_spec, noop_spec) if sweep % 2 == 0 else (noop_spec, plain_spec)
        for spec in order:
            gc.collect()
            start = time.process_time()
            experiment = SingleMachineExperiment(spec)
            experiment.run()
            timings[id(spec)].append(time.process_time() - start)
            events.add(experiment.engine.events_executed)
    assert len(events) == 1  # the no-op plan perturbs not a single event

    overhead = (
        statistics.median(timings[id(noop_spec)])
        / statistics.median(timings[id(plain_spec)])
        - 1.0
    )
    print(f"\ndisabled-faults overhead: {overhead:+.2%}")
    if os.environ.get(PERF_GUARD_ENV):
        assert overhead <= MAX_FAULTS_OVERHEAD, (
            f"a disabled fault plan slowed the kernel by {overhead:.1%} "
            f"(budget {MAX_FAULTS_OVERHEAD:.0%}); the no-fault path must "
            "stay free"
        )
