"""Simulation-kernel speed benchmark and perf regression guard.

Measures the hot path three ways and records the results in
``BENCH_simcore.json`` at the repository root:

* **events/s** — the five Figure 8 scenarios run straight on
  :class:`SingleMachineExperiment` (no runner, no cache), with the engines'
  executed-event counters summed.  This is the purest kernel-throughput
  number and the one the nightly perf guard watches.
* **fig8 serial-uncached wall time** — the same five scenarios through the
  serial, cache-disabled runner, directly comparable to the
  ``fig8_serial_uncached_s`` field PR 3 recorded in ``BENCH_runtime.json``.
* **fleet machines/s** — the ``BENCH_fleet.json`` configuration (600
  machines, 3 stages, 64-machine shards) on an all-cores runner.
* **telemetry overhead** — the direct fig8 runs repeated with a streaming
  :class:`~repro.telemetry.stream.TelemetrySession` attached; the overhead
  versus the uninstrumented rate is recorded and, under the perf guard,
  must stay within :data:`MAX_TELEMETRY_OVERHEAD`.

The ``*_baseline_*`` fields are the numbers committed at PR 3, so the JSON
itself documents before vs. after.

Perf guard: when ``REPRO_PERF_GUARD`` is set (the nightly CI job sets it),
the test loads the *committed* ``BENCH_simcore.json`` before overwriting it
and fails if events/s regressed by more than 25 %.  The committed baseline
carries the machine it was measured on implicitly: if the nightly runner
fleet's single-thread performance drops below ~75 % of the committing
machine's, refresh the baseline by re-running this benchmark in CI and
committing the artifact rather than widening the tolerance.
"""

from __future__ import annotations

import gc
import json
import os
import tempfile
import time

from conftest import DURATION, SEED, WARMUP

from repro.experiments import figures
from repro.experiments.comparison import IsolationComparison
from repro.experiments.single_machine import SingleMachineExperiment
from repro.fleet.scenarios import default_fleet_spec
from repro.fleet.simulate import FleetSimulation
from repro.runtime import ExperimentRunner, ResultCache
from repro.telemetry import TelemetrySession

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_simcore.json"
)

#: Environment variable enabling the regression guard against the committed
#: BENCH_simcore.json (set by the nightly CI job).
PERF_GUARD_ENV = "REPRO_PERF_GUARD"

#: Maximum tolerated events/s regression before the guard fails the test.
MAX_REGRESSION = 0.25

#: Maximum tolerated slowdown when telemetry streaming is enabled.
MAX_TELEMETRY_OVERHEAD = 0.10

#: PR 3 baselines, from BENCH_runtime.json / BENCH_fleet.json as committed at
#: d2a4bd2 (same scenario parameters and seed, cpu_count=1 container).
FIG8_BASELINE_S = 16.468
FLEET_BASELINE_MACHINES_PER_S = 108.6

#: Fleet benchmark shape — identical to benchmarks/test_fleet_scale.py.
FLEET_MACHINES = 600
FLEET_STAGES = 3


def _fig8_specs():
    comparison = IsolationComparison(duration=DURATION, warmup=WARMUP, seed=SEED)
    return [
        (approach, comparison._spec_for(approach))
        for approach in IsolationComparison.APPROACHES
    ]


def _fleet_spec():
    return default_fleet_spec(
        machines=FLEET_MACHINES,
        stages=FLEET_STAGES,
        seed=1,
        calibration_qps=(1200.0, 2400.0),
        calibration_duration=1.0,
        calibration_warmup=0.2,
        bake_buckets=3,
        stage_buckets=3,
        samples_per_machine_bucket=32,
    ).replace(shard_machines=64)


def test_simcore_speed_and_guard():
    cores = os.cpu_count() or 1

    # Committed record, read *before* this run overwrites it.
    committed = None
    if os.path.isfile(_BENCH_PATH):
        with open(_BENCH_PATH, "r", encoding="utf-8") as handle:
            committed = json.load(handle)

    # ---- raw kernel throughput: direct experiments, engines instrumented.
    # Both the uninstrumented and the telemetry-enabled pass take the best
    # of two trials — the overhead ratio between two single-shot ~5 s
    # measurements on a shared runner is double-digit-percent noisy.
    events_executed = 0
    direct_seconds = None
    for _trial in range(2):
        gc.collect()  # don't charge earlier garbage to this measurement
        events_executed = 0
        start = time.perf_counter()
        for _approach, spec in _fig8_specs():
            experiment = SingleMachineExperiment(spec)
            experiment.run()
            events_executed += experiment.engine.events_executed
        trial_seconds = time.perf_counter() - start
        if direct_seconds is None or trial_seconds < direct_seconds:
            direct_seconds = trial_seconds
    simulated_seconds = len(IsolationComparison.APPROACHES) * DURATION
    events_per_s = events_executed / direct_seconds
    assert events_executed > 0

    # ---- same direct runs with telemetry streaming enabled: the probe seam
    # plus 128 JSONL snapshots (and controller decide spans) per run must
    # stay within MAX_TELEMETRY_OVERHEAD of the uninstrumented path.
    telemetry_seconds = None
    with tempfile.TemporaryDirectory() as scratch:
        for trial in range(2):
            gc.collect()
            stream_path = os.path.join(scratch, f"bench_telemetry_{trial}.jsonl")
            telemetry_events = 0
            start = time.perf_counter()
            with TelemetrySession.to_path(stream_path, source="bench-simcore") as session:
                for approach, spec in _fig8_specs():
                    experiment = SingleMachineExperiment(spec, scenario=approach)
                    experiment.run(telemetry=session)
                    telemetry_events += experiment.engine.events_executed
            trial_seconds = time.perf_counter() - start
            if telemetry_seconds is None or trial_seconds < telemetry_seconds:
                telemetry_seconds = trial_seconds
    # Probe events themselves execute, so the instrumented count is a touch
    # higher; normalising by the *domain* event count keeps the two rates
    # comparable (the extra probe work is charged to the wall clock).
    events_per_s_telemetry = events_executed / telemetry_seconds
    telemetry_overhead = events_per_s / events_per_s_telemetry - 1.0

    # ---- fig8 through the serial uncached runner (BENCH_runtime's metric).
    gc.collect()
    runner = ExperimentRunner(max_workers=1, cache=ResultCache(), use_cache=False)
    start = time.perf_counter()
    figure = figures.fig8_comparison(
        duration=DURATION, warmup=WARMUP, seed=SEED, runner=runner
    )
    fig8_seconds = time.perf_counter() - start
    assert figure.rows

    # ---- fleet throughput (BENCH_fleet's configuration).  Best of two
    # cold trials: the cold fleet run is short enough that a single
    # scheduler hiccup on a shared runner skews it by double-digit percent.
    fleet_seconds = None
    for _trial in range(2):
        gc.collect()
        fleet_runner = ExperimentRunner(max_workers=cores, cache=ResultCache())
        start = time.perf_counter()
        fleet = FleetSimulation(_fleet_spec(), runner=fleet_runner).run()
        trial_seconds = time.perf_counter() - start
        assert fleet.status == "completed"
        if fleet_seconds is None or trial_seconds < fleet_seconds:
            fleet_seconds = trial_seconds
    fleet_machines_per_s = FLEET_MACHINES / fleet_seconds

    record = {
        "benchmark": "simulation kernel hot path (fig8 direct + serial runner + fleet)",
        "duration_simulated_s": DURATION,
        "warmup_simulated_s": WARMUP,
        "seed": SEED,
        "cpu_count": cores,
        "events_executed": events_executed,
        "events_per_s": round(events_per_s, 1),
        "events_per_s_telemetry": round(events_per_s_telemetry, 1),
        "telemetry_overhead_pct": round(telemetry_overhead * 100.0, 2),
        "simulated_s_per_wall_s": round(simulated_seconds / direct_seconds, 4),
        "fig8_serial_uncached_s": round(fig8_seconds, 3),
        "fig8_baseline_s": FIG8_BASELINE_S,
        "fig8_speedup_vs_baseline": round(FIG8_BASELINE_S / fig8_seconds, 2),
        "fleet_wall_s": round(fleet_seconds, 3),
        "fleet_machines_per_s": round(fleet_machines_per_s, 1),
        "fleet_baseline_machines_per_s": FLEET_BASELINE_MACHINES_PER_S,
        "fleet_speedup_vs_baseline": round(
            fleet_machines_per_s / FLEET_BASELINE_MACHINES_PER_S, 2
        ),
    }
    with open(_BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nBENCH_simcore: {json.dumps(record, indent=2)}")

    if os.environ.get(PERF_GUARD_ENV):
        assert telemetry_overhead <= MAX_TELEMETRY_OVERHEAD, (
            f"telemetry overhead {telemetry_overhead:.1%} exceeds the "
            f"{MAX_TELEMETRY_OVERHEAD:.0%} budget "
            f"({events_per_s:.0f} -> {events_per_s_telemetry:.0f} events/s)"
        )
    if os.environ.get(PERF_GUARD_ENV) and committed is not None:
        floor = committed["events_per_s"] * (1.0 - MAX_REGRESSION)
        assert events_per_s >= floor, (
            f"kernel throughput regressed: {events_per_s:.0f} events/s is below "
            f"{floor:.0f} (committed {committed['events_per_s']:.0f} events/s "
            f"minus the {MAX_REGRESSION:.0%} tolerance); if the slowdown is "
            "intentional, re-run this benchmark and commit the new "
            "BENCH_simcore.json"
        )
