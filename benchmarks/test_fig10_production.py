"""Figure 10: an hour of the 650-machine production cluster under diurnal load."""

from conftest import run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig10_production(benchmark):
    figure = run_once(
        benchmark,
        figures.fig10_production,
        duration=3600.0,
        bucket=300.0,
        calibration_duration=2.0,
        seed=7,
    )
    print_figure(
        "Figure 10 — production cluster over one hour (per 5-minute bucket)",
        figure.rows,
        columns=["time_s", "row_qps", "tla_p99_ms", "cpu_utilization_pct"],
        notes=figure.notes,
    )

    qps = [row["row_qps"] for row in figure.rows]
    p99 = [row["tla_p99_ms"] for row in figure.rows]
    cpu = [row["cpu_utilization_pct"] for row in figure.rows]

    # The load follows a diurnal pattern (it actually varies).
    assert max(qps) > 1.3 * min(qps)
    # Paper: CPU utilisation averages ~70% over the hour thanks to the
    # colocated training job; we accept a broad band around that.
    mean_cpu = sum(cpu) / len(cpu)
    assert 50.0 <= mean_cpu <= 95.0
    # Paper: the TLA P99 stays flat (tens of milliseconds) despite the
    # colocated batch job and the varying load.
    assert max(p99) < 80.0
    assert max(p99) - min(p99) < 40.0
