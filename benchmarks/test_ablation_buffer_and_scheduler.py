"""Ablations for the design choices called out in DESIGN.md.

A1 — buffer-core sweep: how the size of the idle-core buffer trades tail
     protection against batch throughput (extends Figure 5 beyond 4/8).
A2 — controller poll interval: the poll/update split means polling can be
     fast without causing update churn; a slow poll leaves bursts unprotected
     for longer.
A3 — scheduler placement model: the per-core ready queues are what make
     unmanaged colocation catastrophic; with an idealised global queue the
     interference is milder, which would understate the paper's problem.
"""

import dataclasses

from conftest import SEED, run_once

from repro.experiments import scenarios
from repro.experiments.reporting import print_figure
from repro.experiments.single_machine import SingleMachineExperiment

DURATION = 3.0
WARMUP = 0.5


def _run(spec, label):
    return SingleMachineExperiment(spec, label).run()


def test_ablation_buffer_cores(benchmark):
    def sweep():
        baseline = _run(scenarios.standalone(qps=4000, duration=DURATION, warmup=WARMUP,
                                             seed=SEED), "standalone")
        rows = []
        for buffer_cores in (0, 2, 4, 8, 16):
            result = _run(
                scenarios.blind_isolation(buffer_cores, qps=4000, duration=DURATION,
                                          warmup=WARMUP, seed=SEED),
                f"blind-{buffer_cores}",
            )
            rows.append(
                {
                    "buffer_cores": buffer_cores,
                    "p99_degradation_ms": (result.latency.p99 - baseline.latency.p99) * 1000.0,
                    "secondary_cpu_pct": result.summary()["secondary_cpu_pct"],
                    "idle_cpu_pct": result.summary()["idle_cpu_pct"],
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_figure("Ablation A1 — buffer-core sweep at peak load (4,000 QPS)", rows)
    by_buffer = {row["buffer_cores"]: row for row in rows}
    # More buffer cores can only help the tail and can only cost batch work.
    assert by_buffer[16]["p99_degradation_ms"] <= by_buffer[0]["p99_degradation_ms"] + 1.0
    assert by_buffer[16]["secondary_cpu_pct"] <= by_buffer[0]["secondary_cpu_pct"] + 1.0
    # The paper's operating point (8) keeps degradation small.
    assert by_buffer[8]["p99_degradation_ms"] < 3.0


def test_ablation_poll_interval(benchmark):
    def sweep():
        rows = []
        for poll_ms in (0.5, 1.0, 5.0, 20.0):
            spec = scenarios.blind_isolation(8, qps=4000, duration=DURATION, warmup=WARMUP,
                                             seed=SEED)
            spec = dataclasses.replace(
                spec, perfiso=dataclasses.replace(spec.perfiso, poll_interval=poll_ms / 1000.0)
            )
            result = _run(spec, f"poll-{poll_ms}ms")
            rows.append(
                {
                    "poll_interval_ms": poll_ms,
                    "p99_ms": result.summary()["p99_ms"],
                    "controller_polls": result.controller_polls,
                    "controller_updates": result.controller_updates,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    print_figure("Ablation A2 — controller poll interval", rows)
    by_poll = {row["poll_interval_ms"]: row for row in rows}
    # The poll/update split: polling 40x more often does not mean 40x more
    # job-object updates — updates only happen when the target allocation
    # actually moves.
    fast, slow = by_poll[0.5], by_poll[20.0]
    assert fast["controller_polls"] > 10 * slow["controller_polls"]
    assert fast["controller_updates"] < fast["controller_polls"]

    # A sluggish poll leaves bursts unabsorbed for longer; the tail should not
    # get better as the poll interval grows.
    assert by_poll[20.0]["p99_ms"] >= by_poll[0.5]["p99_ms"] - 1.0


def test_ablation_scheduler_placement(benchmark):
    def compare():
        rows = []
        for placement in ("per_core", "global"):
            spec = scenarios.no_isolation(48, qps=2000, duration=DURATION, warmup=WARMUP,
                                          seed=SEED)
            spec = dataclasses.replace(
                spec, scheduler=dataclasses.replace(spec.scheduler, placement=placement)
            )
            result = _run(spec, f"no-isolation-{placement}")
            rows.append({"placement": placement, "p99_ms": result.summary()["p99_ms"]})
        return rows

    rows = run_once(benchmark, compare)
    print_figure("Ablation A3 — ready-queue placement model (no isolation, high secondary)", rows)
    by_placement = {row["placement"]: row for row in rows}
    # Per-core ready queues (realistic) make unmanaged colocation much worse
    # than an idealised global queue would suggest.
    assert by_placement["per_core"]["p99_ms"] > by_placement["global"]["p99_ms"]
