"""The abstract's headline: 21% -> 66% average CPU utilisation at off-peak load."""

from conftest import DURATION, SEED, WARMUP, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_headline_utilization(benchmark):
    figure = run_once(
        benchmark, figures.headline_utilization, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    print_figure(
        "Headline — average CPU utilisation with and without colocation (2,000 QPS)",
        figure.rows,
        columns=["configuration", "busy_cpu_pct", "primary_cpu_pct", "secondary_cpu_pct", "p99_ms"],
        notes=figure.notes,
    )

    rows = {row["configuration"]: row for row in figure.rows}
    standalone = rows["standalone"]
    colocated = rows["colocated+blind-isolation"]

    # Paper: ~21% busy standalone at off-peak load.
    assert 10.0 < standalone["busy_cpu_pct"] < 35.0
    # Paper: ~66% busy with the colocated batch job (we accept 55-90%).
    assert colocated["busy_cpu_pct"] > 55.0
    # And the tail is not sacrificed for it.
    assert colocated["p99_ms"] < standalone["p99_ms"] + 2.0
