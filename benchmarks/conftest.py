"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure of the paper: it runs the scenarios,
prints the same rows the paper plots (so the output can be compared side by
side with the published figures), and asserts the qualitative shape.  The
``benchmark`` fixture wraps the figure harness so ``pytest-benchmark`` also
reports how long each reproduction takes.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_collection_modifyitems(config, items):
    """Every benchmark reproduces a full figure: all are in the slow tier.

    The hook sees the whole session's items, so restrict to this directory.
    """
    here = os.path.dirname(os.path.abspath(__file__)) + os.sep
    for item in items:
        if str(item.path).startswith(here):
            item.add_marker(pytest.mark.slow)

#: Measured duration (simulated seconds) for single-machine scenarios.  Long
#: enough for stable P99 estimates (several thousand queries per run), short
#: enough that the whole harness finishes in minutes.
DURATION = 4.0
WARMUP = 0.5
SEED = 1


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
