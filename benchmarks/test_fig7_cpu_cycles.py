"""Figure 7: restricting the secondary's CPU cycles (duty-cycle throttling)."""

from conftest import DURATION, SEED, WARMUP, run_once

from repro.experiments import figures
from repro.experiments.reporting import print_figure


def test_fig7_cpu_cycles(benchmark):
    figure = run_once(
        benchmark, figures.fig7_cpu_cycles, duration=DURATION, warmup=WARMUP, seed=SEED
    )
    print_figure(
        "Figure 7 — CPU-cycle restriction of the secondary",
        figure.rows,
        columns=[
            "workload", "qps", "cpu_fraction_pct", "p50_delta_ms", "p99_delta_ms",
            "drop_rate_pct", "secondary_cpu_pct", "idle_cpu_pct",
        ],
        notes=figure.notes,
    )

    for qps in (2000.0, 4000.0):
        generous = figure.row(workload="45%-cycles", qps=qps)
        strict = figure.row(workload="5%-cycles", qps=qps)
        # Paper: a 45% duty cycle severely degrades the tail; throttling the
        # secondary to 5% still leaves measurable interference.
        assert generous["p99_delta_ms"] > 20.0
        assert strict["p99_delta_ms"] >= -0.5
        # Cycle throttling starves the secondary compared to core restriction:
        # at 5% of cycles it does far less work than an 8-core allocation
        # (~17% of the machine) would allow.
        assert strict["secondary_cpu_pct"] < 8.0
        # More cycles for the secondary means more interference, not less.
        assert generous["p99_delta_ms"] > strict["p99_delta_ms"]
