"""Wall-clock benchmark of the sharded fleet simulation.

Runs the canonical heterogeneous fleet three ways — serial, fanned across
all cores, and re-run against the warm cache — verifies the three produce
byte-identical accounting, and records throughput (machine-buckets simulated
per second), the shard speedup and the warm-run cache hit rate in
``BENCH_fleet.json`` at the repository root, alongside ``BENCH_runtime.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.reporting import rows_to_json
from repro.fleet.scenarios import default_fleet_spec
from repro.fleet.simulate import FleetSimulation
from repro.runtime import ExperimentRunner, ResultCache

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_fleet.json"
)

#: Big enough to exercise sharding (several shards per group), small enough
#: for a nightly benchmark: the calibration dominates the cold runs.
MACHINES = 600
STAGES = 3


def _spec():
    return default_fleet_spec(
        machines=MACHINES,
        stages=STAGES,
        seed=1,
        calibration_qps=(1200.0, 2400.0),
        calibration_duration=1.0,
        calibration_warmup=0.2,
        bake_buckets=3,
        stage_buckets=3,
        samples_per_machine_bucket=32,
    ).replace(shard_machines=64)


def _timed_run(runner):
    start = time.perf_counter()
    result = FleetSimulation(_spec(), runner=runner).run()
    return time.perf_counter() - start, result


def test_fleet_scale_benchmark():
    cores = os.cpu_count() or 1

    serial_seconds, serial = _timed_run(
        ExperimentRunner(max_workers=1, cache=ResultCache())
    )

    cache = ResultCache()
    parallel_runner = ExperimentRunner(max_workers=cores, cache=cache)
    parallel_seconds, parallel = _timed_run(parallel_runner)

    hits_before, misses_before = cache.hits, cache.misses
    warm_seconds, warm = _timed_run(parallel_runner)
    warm_hits = cache.hits - hits_before
    warm_misses = cache.misses - misses_before

    # Correctness first: all three executions are byte-identical.
    assert rows_to_json(serial.rows()) == rows_to_json(parallel.rows())
    assert rows_to_json(serial.rows()) == rows_to_json(warm.rows())
    assert serial.status == "completed"

    # The warm run must be served (almost) entirely from the cache.
    hit_rate = warm_hits / max(1, warm_hits + warm_misses)
    assert hit_rate > 0.9
    assert warm_seconds < serial_seconds

    machine_buckets = parallel.machine_buckets
    record = {
        "benchmark": f"fleet staged rollout ({MACHINES} machines, {STAGES} stages)",
        "machines": MACHINES,
        "machine_buckets": machine_buckets,
        "cpu_count": cores,
        "serial_s": round(serial_seconds, 3),
        "parallel_cold_s": round(parallel_seconds, 3),
        "warm_cached_s": round(warm_seconds, 4),
        "shard_speedup": round(serial_seconds / parallel_seconds, 2),
        "cached_speedup": round(serial_seconds / warm_seconds, 1),
        "machines_per_s_parallel": round(MACHINES / parallel_seconds, 1),
        "machine_buckets_per_s_parallel": round(machine_buckets / parallel_seconds, 1),
        "warm_cache_hit_rate": round(hit_rate, 4),
        "reclaimed_core_hours": serial.summary()["reclaimed_core_hours"],
    }
    with open(_BENCH_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"\nBENCH_fleet: {json.dumps(record, indent=2)}")
