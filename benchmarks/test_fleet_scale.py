"""Wall-clock benchmark of the sharded fleet simulation.

Runs the canonical heterogeneous fleet three ways — serial, fanned across
all cores, and re-run against the warm cache — verifies the three produce
byte-identical accounting, and records throughput (machine-buckets simulated
per second), the shard speedup and the warm-run cache hit rate in
``BENCH_fleet.json`` at the repository root, alongside ``BENCH_runtime.json``.

A second benchmark runs the 50,000-machine hyperscale scenario (sampled
mode) and records its throughput in the same JSON under ``hyperscale_*``
keys.  When ``REPRO_PERF_GUARD`` is set (the nightly CI job sets it), both
throughputs are checked against the *committed* ``BENCH_fleet.json`` and the
test fails on a regression of more than 25 % — if a slowdown is intentional,
re-run the benchmarks and commit the refreshed artifact.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.reporting import rows_to_json
from repro.fleet.scenarios import default_fleet_spec, fleet_hyperscale
from repro.fleet.simulate import FleetSimulation
from repro.runtime import ExperimentRunner, ResultCache

_BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_fleet.json"
)

#: Environment variable enabling the regression guard against the committed
#: BENCH_fleet.json (set by the nightly CI job).
PERF_GUARD_ENV = "REPRO_PERF_GUARD"

#: Maximum tolerated throughput regression before the guard fails the test.
MAX_REGRESSION = 0.25

#: Big enough to exercise sharding (several shards per group), small enough
#: for a nightly benchmark: the calibration dominates the cold runs.
MACHINES = 600
STAGES = 3

#: The hyperscale scenario's fleet size and its throughput acceptance floor
#: (machines simulated per second of wall clock, staged rollout end to end).
HYPERSCALE_MACHINES = 50_000
HYPERSCALE_MIN_MACHINES_PER_S = 2_500.0


def _spec():
    return default_fleet_spec(
        machines=MACHINES,
        stages=STAGES,
        seed=1,
        calibration_qps=(1200.0, 2400.0),
        calibration_duration=1.0,
        calibration_warmup=0.2,
        bake_buckets=3,
        stage_buckets=3,
        samples_per_machine_bucket=32,
    ).replace(shard_machines=64)


def _timed_run(runner):
    start = time.perf_counter()
    result = FleetSimulation(_spec(), runner=runner).run()
    return time.perf_counter() - start, result


def _read_committed():
    if not os.path.isfile(_BENCH_PATH):
        return None
    with open(_BENCH_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _write_record(updates):
    """Merge this run's measurements into the committed record.

    Goes through the shared merge tool so the write is schema-validated and
    keys another benchmark owns (e.g. the hyperscale fields) survive.
    """
    from repro.reporting.bench import merge_bench_record

    return merge_bench_record(_BENCH_PATH, updates)


def _guard(committed, key, measured):
    if not os.environ.get(PERF_GUARD_ENV) or committed is None or key not in committed:
        return
    floor = committed[key] * (1.0 - MAX_REGRESSION)
    assert measured >= floor, (
        f"fleet throughput regressed: {key} {measured:.1f} is below {floor:.1f} "
        f"(committed {committed[key]:.1f} minus the {MAX_REGRESSION:.0%} "
        "tolerance); if the slowdown is intentional, re-run this benchmark "
        "and commit the new BENCH_fleet.json"
    )


def test_fleet_scale_benchmark():
    cores = os.cpu_count() or 1
    committed = _read_committed()

    serial_seconds, serial = _timed_run(
        ExperimentRunner(max_workers=1, cache=ResultCache())
    )

    cache = ResultCache()
    parallel_runner = ExperimentRunner(max_workers=cores, cache=cache)
    parallel_seconds, parallel = _timed_run(parallel_runner)

    hits_before, misses_before = cache.hits, cache.misses
    warm_seconds, warm = _timed_run(parallel_runner)
    warm_hits = cache.hits - hits_before
    warm_misses = cache.misses - misses_before

    # Correctness first: all three executions are byte-identical.
    assert rows_to_json(serial.rows()) == rows_to_json(parallel.rows())
    assert rows_to_json(serial.rows()) == rows_to_json(warm.rows())
    assert serial.status == "completed"

    # The warm run must be served (almost) entirely from the cache.
    hit_rate = warm_hits / max(1, warm_hits + warm_misses)
    assert hit_rate > 0.9
    assert warm_seconds < serial_seconds

    machine_buckets = parallel.machine_buckets
    record = _write_record(
        {
            "benchmark": f"fleet staged rollout ({MACHINES} machines, {STAGES} stages)",
            "machines": MACHINES,
            "machine_buckets": machine_buckets,
            "cpu_count": cores,
            "serial_s": round(serial_seconds, 3),
            "parallel_cold_s": round(parallel_seconds, 3),
            "warm_cached_s": round(warm_seconds, 4),
            "shard_speedup": round(serial_seconds / parallel_seconds, 2),
            "cached_speedup": round(serial_seconds / warm_seconds, 1),
            "machines_per_s_parallel": round(MACHINES / parallel_seconds, 1),
            "machine_buckets_per_s_parallel": round(machine_buckets / parallel_seconds, 1),
            "warm_cache_hit_rate": round(hit_rate, 4),
            "reclaimed_core_hours": serial.summary()["reclaimed_core_hours"],
        }
    )
    print(f"\nBENCH_fleet: {json.dumps(record, indent=2)}")

    _guard(committed, "machines_per_s_parallel", MACHINES / parallel_seconds)


def test_fleet_hyperscale_benchmark():
    """The 50k-machine sampled-mode staged rollout, end to end.

    One cold all-cores run (calibration included): sampled hyperscale mode
    must push a three-stage diurnal rollout across 50,000 machines at
    >= 2,500 machines per wall-clock second — an order of magnitude beyond
    what exact mode sustains — while still completing every stage.
    """
    cores = os.cpu_count() or 1
    committed = _read_committed()

    spec = fleet_hyperscale(machines=HYPERSCALE_MACHINES)
    runner = ExperimentRunner(max_workers=cores, cache=ResultCache())
    start = time.perf_counter()
    result = FleetSimulation(spec, runner=runner).run()
    wall_seconds = time.perf_counter() - start

    assert result.status == "completed"
    assert result.stages_completed == result.stages_total
    machines_per_s = HYPERSCALE_MACHINES / wall_seconds
    assert machines_per_s >= HYPERSCALE_MIN_MACHINES_PER_S, (
        f"hyperscale throughput {machines_per_s:.0f} machines/s is below the "
        f"{HYPERSCALE_MIN_MACHINES_PER_S:.0f} floor"
    )

    record = _write_record(
        {
            "hyperscale_machines": HYPERSCALE_MACHINES,
            "hyperscale_sample_fraction": spec.sample_fraction,
            "hyperscale_cpu_count": cores,
            "hyperscale_wall_s": round(wall_seconds, 3),
            "hyperscale_machines_per_s": round(machines_per_s, 1),
            "hyperscale_machine_buckets": result.machine_buckets,
            "hyperscale_reclaimed_core_hours": round(result.reclaimed_core_hours, 1),
        }
    )
    print(f"\nBENCH_fleet (hyperscale): {json.dumps(record, indent=2)}")

    _guard(committed, "hyperscale_machines_per_s", machines_per_s)
