#!/usr/bin/env python3
"""Quickstart: protect a latency-sensitive service while running batch work.

This example reproduces the paper's core story on one simulated machine:

1. Run the IndexServe-like primary alone and measure its tail latency.
2. Colocate a 48-thread CPU-bound batch job with **no isolation** and watch
   the 99th percentile collapse.
3. Colocate the same job under **PerfIso's CPU blind isolation** (8 buffer
   cores) and watch the tail return to the standalone level while the machine
   runs at several times the utilisation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import scenarios
from repro.experiments.reporting import print_figure
from repro.experiments.single_machine import SingleMachineExperiment

QPS = 2000.0          # the paper's "average load" approximation
DURATION = 4.0        # simulated seconds of measured traffic
WARMUP = 0.5
SEED = 1


def run(spec, label):
    print(f"running {label} ...")
    return SingleMachineExperiment(spec, label).run()


def main() -> None:
    standalone = run(scenarios.standalone(qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
                     "standalone")
    unmanaged = run(scenarios.no_isolation(48, qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
                    "no isolation")
    blind = run(scenarios.blind_isolation(8, qps=QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
                "blind isolation (8 buffer cores)")

    rows = []
    for label, result in (("standalone", standalone),
                          ("no isolation", unmanaged),
                          ("blind isolation", blind)):
        summary = result.summary()
        rows.append(
            {
                "configuration": label,
                "p50_ms": summary["p50_ms"],
                "p99_ms": summary["p99_ms"],
                "dropped_pct": summary["drop_rate_pct"],
                "machine_busy_pct": 100.0 - summary["idle_cpu_pct"],
                "secondary_cpu_pct": summary["secondary_cpu_pct"],
            }
        )
    print_figure(
        "Colocating a CPU-bound batch job with a latency-sensitive service",
        rows,
        notes=[
            "no isolation: the batch job inflates P99 by an order of magnitude",
            "blind isolation: P99 back to the standalone level, machine busy instead of idle",
        ],
    )

    degradation_ms = (blind.latency.p99 - standalone.latency.p99) * 1000.0
    print(f"\nP99 degradation under blind isolation: {degradation_ms:.2f} ms "
          f"(paper: < 1 ms with 8 buffer cores)")
    print(f"controller: {blind.controller_polls} idle-mask polls, "
          f"{blind.controller_updates} affinity updates "
          f"(poll continuously, update only on change)")


if __name__ == "__main__":
    main()
