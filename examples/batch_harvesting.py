#!/usr/bin/env python3
"""Harvesting idle cycles for big-data work — the paper's motivating scenario.

Latency-sensitive clusters are provisioned for peak load plus disaster
head-room, so their average utilisation is very low.  This example colocates
the two batch workloads the paper discusses — a machine-learning training job
and the HDFS machinery big-data frameworks rely on — with the IndexServe-like
primary, all under one PerfIso controller:

* CPU blind isolation keeps 8 idle buffer cores for the primary's bursts.
* The HDFS DataNode/client traffic is capped (20 / 60 MB/s, as in the paper's
  cluster configuration) on the shared HDD volume.
* The memory guard and egress throttle protect RAM and the NIC.

It also demonstrates two operational features: the kill switch (instantly
lifting every restriction for debugging) and crash recovery through the
Autopilot substrate.

Run:  python examples/batch_harvesting.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.autopilot import Autopilot, ManagedService
from repro.config.schema import (
    BlindIsolationSpec,
    ExperimentSpec,
    HdfsSpec,
    MlTrainingSpec,
    PerfIsoSpec,
    WorkloadSpec,
)
from repro.experiments.reporting import print_figure
from repro.experiments.single_machine import SingleMachineExperiment

QPS = 2000.0
DURATION = 4.0
WARMUP = 0.5


def build_spec() -> ExperimentSpec:
    perfiso = PerfIsoSpec(
        cpu_policy="blind",
        blind=BlindIsolationSpec(buffer_cores=8),
    )
    return ExperimentSpec(
        workload=WorkloadSpec(qps=QPS, duration=DURATION, warmup=WARMUP),
        perfiso=perfiso,
        ml_training=MlTrainingSpec(threads=40),
        hdfs=HdfsSpec(),
        seed=7,
    )


def main() -> None:
    baseline = SingleMachineExperiment(
        ExperimentSpec(workload=WorkloadSpec(qps=QPS, duration=DURATION, warmup=WARMUP), seed=7),
        "standalone",
    ).run()

    print("running colocated ML-training + HDFS under PerfIso ...")
    experiment = SingleMachineExperiment(build_spec(), "ml-harvesting")
    result = experiment.run()

    rows = [
        {
            "configuration": "standalone",
            "p99_ms": baseline.summary()["p99_ms"],
            "machine_busy_pct": 100 - baseline.summary()["idle_cpu_pct"],
            "minibatches_done": 0,
        },
        {
            "configuration": "ML training + HDFS under PerfIso",
            "p99_ms": result.summary()["p99_ms"],
            "machine_busy_pct": 100 - result.summary()["idle_cpu_pct"],
            "minibatches_done": result.secondary_progress,
        },
    ]
    print_figure(
        "Harvesting idle cycles for a machine-learning training job",
        rows,
        notes=[
            f"P99 degradation: {(result.latency.p99 - baseline.latency.p99) * 1000:.2f} ms",
            "the training job's mini-batches are work the cluster would otherwise not do",
        ],
    )

    # ------------------------------------------------------------ kill switch
    controller = experiment.controller
    controller.disable()
    print("\nkill switch engaged: secondary affinity =", controller.secondary_affinity,
          "(None = unrestricted, as for live-site debugging)")
    controller.enable()
    print("re-enabled: secondary restricted to",
          len(controller.secondary_affinity), "cores")

    # --------------------------------------------------------- crash recovery
    autopilot = Autopilot()
    autopilot.config.publish("perfiso.json", build_spec().perfiso)
    service = ManagedService(
        name="perfiso",
        machine="node-0",
        start=lambda: None,          # the controller object already exists
        stop=controller.stop,
        save_state=controller.state_dict,
        restore_state=controller.restore_state,
    )
    autopilot.register(service)
    autopilot.start("node-0", "perfiso")
    autopilot.checkpoint("node-0", "perfiso")
    autopilot.crash_and_recover("node-0", "perfiso")
    print(f"autopilot restarted PerfIso {service.restarts} time(s); "
          f"restored allocation of {controller.secondary_core_count} cores from its checkpoint")


if __name__ == "__main__":
    main()
