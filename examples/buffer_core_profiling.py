#!/usr/bin/env python3
"""Choosing the number of buffer cores for a new primary service.

PerfIso needs exactly one piece of information about the primary: how many
idle cores to keep in reserve.  The paper derives it from a one-off profiling
run of the primary at peak load (how many threads become ready within a few
microseconds), then validates the choice experimentally (Figure 5).

This example does both with the library:

1. Profile the synthetic IndexServe workload at peak load and print the
   ready-burst distribution and the recommended buffer size.
2. Sweep the buffer size in a colocation experiment and show how tail-latency
   protection and batch throughput trade off — too few buffer cores hurts the
   tail, too many wastes the machine.

Run:  python examples/buffer_core_profiling.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config.schema import IndexServeSpec
from repro.core.profiling import BufferCoreProfiler
from repro.experiments import scenarios
from repro.experiments.reporting import print_figure
from repro.experiments.single_machine import SingleMachineExperiment

PEAK_QPS = 4000.0
DURATION = 3.0
WARMUP = 0.5
SEED = 3


def main() -> None:
    # ---------------------------------------------------------- 1. profiling
    profiler = BufferCoreProfiler(IndexServeSpec(), seed=SEED)
    profile = profiler.profile(peak_qps=PEAK_QPS, duration=4.0)
    print("== Offline profiling of the primary at peak load ==")
    print(f"window                    : {profile.window * 1e6:.0f} us")
    print(f"max threads ready/window  : {profile.max_burst}")
    print(f"p99 threads ready/window  : {profile.p99_burst:.1f}")
    print(f"recommended buffer cores  : {profile.recommended_buffer_cores}")
    print("(the paper measures up to 15 ready threads in 5 us and deploys 8 buffer cores)\n")

    # ------------------------------------------------------ 2. validation sweep
    baseline = SingleMachineExperiment(
        scenarios.standalone(qps=PEAK_QPS, duration=DURATION, warmup=WARMUP, seed=SEED),
        "standalone",
    ).run()

    rows = []
    for buffer_cores in (0, 2, 4, 8, 12):
        result = SingleMachineExperiment(
            scenarios.blind_isolation(buffer_cores, qps=PEAK_QPS, duration=DURATION,
                                      warmup=WARMUP, seed=SEED),
            f"blind-{buffer_cores}",
        ).run()
        rows.append(
            {
                "buffer_cores": buffer_cores,
                "p99_ms": result.summary()["p99_ms"],
                "p99_degradation_ms": (result.latency.p99 - baseline.latency.p99) * 1000.0,
                "secondary_cpu_pct": result.summary()["secondary_cpu_pct"],
                "idle_cpu_pct": result.summary()["idle_cpu_pct"],
            }
        )
    print_figure(
        f"Buffer-core sweep at peak load ({PEAK_QPS:.0f} QPS, 48-thread CPU bully)",
        rows,
        notes=[
            f"standalone P99 = {baseline.summary()['p99_ms']:.2f} ms",
            "small buffers leave the tail exposed to bursts; large buffers give back idle CPU",
        ],
    )


if __name__ == "__main__":
    main()
