#!/usr/bin/env python3
"""Multi-layer cluster serving: local, MLA and TLA latency under colocation.

The paper's cluster experiment (Figure 9) measures query latency at three
levels of the aggregation tree — the local IndexServe machines, the mid-level
aggregators running *on* those machines, and the dedicated top-level
aggregators — with and without colocated batch work.  Because responses are
aggregated with a max over all partitions of a row, one slow machine drags
the whole cluster: this is why per-machine isolation matters.

This example runs a scaled-down event-driven cluster (per-machine load is the
same as the paper's: every machine of a row serves every request routed to
that row) in two configurations, then uses the sampled tail-at-scale model to
show how the fan-out width amplifies the local tail.

Run:  python examples/cluster_serving.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.sampled import SampledClusterModel
from repro.cluster.simulated import ClusterScenario, SimulatedCluster
from repro.config.schema import ClusterSpec, CpuBullySpec, HdfsSpec, PerfIsoSpec
from repro.experiments import scenarios
from repro.experiments.reporting import print_figure

PARTITIONS = 3
ROWS = 2
TOTAL_QPS = 8000.0  # 4,000 QPS per row, as in the paper
DURATION = 1.5
WARMUP = 0.3


def run_cluster(label: str, **kwargs):
    scenario = ClusterScenario(
        cluster=ClusterSpec(partitions=PARTITIONS, rows=ROWS, tla_machines=2),
        node=scenarios.base_spec(qps=TOTAL_QPS / ROWS, duration=DURATION, warmup=WARMUP),
        total_qps=TOTAL_QPS,
        duration=DURATION,
        warmup=WARMUP,
        seed=11,
        hdfs=HdfsSpec(),
        **kwargs,
    )
    print(f"running cluster scenario: {label} ...")
    return SimulatedCluster(scenario, name=label).run()


def main() -> None:
    standalone = run_cluster("standalone")
    colocated = run_cluster(
        "cpu-bound secondary + PerfIso",
        cpu_bully=CpuBullySpec(threads=48),
        perfiso=PerfIsoSpec(cpu_policy="blind"),
    )

    rows = []
    for result in (standalone, colocated):
        summary = result.summary()
        rows.append(
            {
                "scenario": result.scenario,
                "local_p99_ms": summary["local_p99_ms"],
                "mla_p99_ms": summary["mla_p99_ms"],
                "tla_p99_ms": summary["tla_p99_ms"],
                "fleet_busy_pct": 100 - summary["idle_cpu_pct"],
            }
        )
    print_figure(
        "Per-layer P99 latency on the serving cluster",
        rows,
        notes=["with PerfIso the colocated cluster's per-layer P99 stays close to standalone"],
    )

    # Tail-at-scale: how the fan-out width amplifies the local latency tail.
    # The sampled model only needs a per-machine latency distribution, which a
    # single-machine run provides cheaply.
    from repro.experiments.single_machine import SingleMachineExperiment

    single = SingleMachineExperiment(
        scenarios.standalone(qps=4000, duration=2.0, warmup=0.3, seed=12), "sample-source"
    )
    single.run()
    local_samples = single.primary.collector.samples()
    model = SampledClusterModel(ClusterSpec(), local_samples, seed=12)
    curve = model.tail_at_scale_curve([1, 2, 4, 8, 22], num_requests=20000)
    print_figure(
        "Tail-at-scale: MLA P99 vs fan-out width (sampled model, 75-node layout)",
        [{"partitions": k, "mla_p99_ms": v * 1000.0} for k, v in sorted(curve.items())],
        notes=["the slowest of N machines dictates row latency — why per-machine isolation matters"],
    )


if __name__ == "__main__":
    main()
