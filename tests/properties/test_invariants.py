"""Property-based tests (hypothesis) for core data structures and invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import BlindIsolationSpec
from repro.core.policies import BlindIsolationPolicy
from repro.hardware.memory import MemorySubsystem
from repro.hardware.topology import CpuTopology
from repro.metrics.latency import LatencyCollector
from repro.simulation.events import EventQueue
from repro.simulation.randomness import RandomStreams


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_events_pop_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=100),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancellation_never_loses_live_events(self, times, data):
        queue = EventQueue()
        events = [queue.push(time, lambda: None) for time in times]
        to_cancel = data.draw(st.sets(st.integers(min_value=0, max_value=len(events) - 1)))
        for index in to_cancel:
            if not events[index].cancelled:
                events[index].cancel()
                queue.notify_cancel()
        live = len(times) - len(to_cancel)
        popped = 0
        while queue.pop() is not None:
            popped += 1
        assert popped == live


class TestBlindIsolationProperties:
    @given(
        buffer_cores=st.integers(min_value=0, max_value=16),
        idle=st.integers(min_value=0, max_value=48),
        current=st.integers(min_value=0, max_value=48),
    )
    @settings(max_examples=200, deadline=None)
    def test_allocation_always_within_bounds(self, buffer_cores, idle, current):
        """S stays in [min_secondary, total - buffer] for any observation."""
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=buffer_cores))
        decision = policy.poll_decision(total_cores=48, idle_cores=idle, current_core_count=current)
        if decision is not None:
            assert 0 <= decision.core_count <= 48 - buffer_cores

    @given(
        idle=st.integers(min_value=0, max_value=48),
        current=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_adjustment_direction_matches_paper_rule(self, idle, current):
        """If I < B the allocation never grows; if I > B it never shrinks."""
        buffer_cores = 8
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=buffer_cores))
        decision = policy.poll_decision(48, idle, current)
        if decision is None:
            return
        if idle < buffer_cores:
            assert decision.core_count <= current
        elif idle > buffer_cores:
            assert decision.core_count >= current

    @given(idle=st.integers(min_value=0, max_value=48))
    @settings(max_examples=100, deadline=None)
    def test_fixed_point_reached_within_machine_size_steps(self, idle):
        """Repeatedly applying the rule with a constant observation converges."""
        policy = BlindIsolationPolicy(BlindIsolationSpec(buffer_cores=8))
        current = 40
        for _ in range(60):
            decision = policy.poll_decision(48, idle, current)
            if decision is None:
                break
            current = decision.core_count
        else:
            raise AssertionError("policy did not converge")


class TestTopologyProperties:
    @given(
        sockets=st.integers(min_value=1, max_value=4),
        cores=st.integers(min_value=1, max_value=16),
        smt=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_sibling_groups_partition_the_machine(self, sockets, cores, smt):
        topology = CpuTopology(sockets, cores, smt)
        seen = set()
        for core_id in range(topology.logical_core_count):
            group = topology.siblings(core_id)
            assert core_id in group
            assert len(group) == smt
            seen.update(group)
        assert seen == set(range(topology.logical_core_count))

    @given(
        sockets=st.integers(min_value=1, max_value=2),
        cores=st.integers(min_value=1, max_value=8),
        smt=st.integers(min_value=1, max_value=2),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_mask_round_trip(self, sockets, cores, smt, data):
        topology = CpuTopology(sockets, cores, smt)
        ids = data.draw(
            st.sets(st.integers(min_value=0, max_value=topology.logical_core_count - 1))
        )
        assert topology.ids_from_mask(topology.mask_from_ids(sorted(ids))) == frozenset(ids)

    @given(
        sockets=st.integers(min_value=1, max_value=2),
        cores=st.integers(min_value=1, max_value=8),
        smt=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=50, deadline=None)
    def test_secondary_allocation_order_is_a_permutation(self, sockets, cores, smt):
        topology = CpuTopology(sockets, cores, smt)
        order = topology.secondary_allocation_order()
        assert sorted(order) == list(range(topology.logical_core_count))


class TestMemoryProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(min_value=1, max_value=1000)),
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_used_plus_free_equals_capacity(self, operations):
        memory = MemorySubsystem(1_000_000)
        for owner, size in operations:
            if memory.free_bytes >= size:
                memory.allocate(owner, size)
        assert memory.used_bytes + memory.free_bytes == memory.capacity_bytes
        assert memory.used_bytes == sum(memory.owners().values())


class TestLatencyCollectorProperties:
    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0, allow_nan=False), min_size=1,
                    max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_percentiles_are_monotone_and_bounded(self, samples):
        collector = LatencyCollector()
        collector.extend(samples)
        stats = collector.stats()
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.p999 <= stats.maximum
        assert min(samples) <= stats.p50
        assert stats.maximum == max(samples)
        assert stats.count == len(samples)

    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_random_streams_reproducible(self, seed, name):
        a = RandomStreams(seed).stream(name).random(3)
        b = RandomStreams(seed).stream(name).random(3)
        assert list(a) == list(b)
