"""Property-based tests (hypothesis) for the CPU isolation policies.

The invariants PerfIso's safety story rests on (Section 3.1):

* the secondary's core allocation never exceeds ``total_cores - buffer_cores``
  (the buffer is inviolable), as long as the floor fits under the ceiling;
* allocations are never negative and rate decisions stay inside ``(0, 1]``;
* blind isolation is *monotone* in the observed idle-core count — seeing more
  idle cores can never shrink the secondary, seeing fewer can never grow it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import BlindIsolationSpec, CpuCycleSpec, StaticCoreSpec
from repro.core.policies import (
    BlindIsolationPolicy,
    CpuCyclesPolicy,
    NoIsolationPolicy,
    StaticCoresPolicy,
)


@st.composite
def blind_cases(draw):
    """A consistent (spec, total, idle, current) tuple for blind isolation."""
    total = draw(st.integers(min_value=2, max_value=128))
    buffer_cores = draw(st.integers(min_value=0, max_value=total - 1))
    min_secondary = draw(st.integers(min_value=0, max_value=total - buffer_cores))
    max_step = draw(st.integers(min_value=0, max_value=8))
    spec = BlindIsolationSpec(
        buffer_cores=buffer_cores,
        min_secondary_cores=min_secondary,
        max_step=max_step,
    )
    idle = draw(st.integers(min_value=0, max_value=total))
    current = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=total))
    )
    return spec, total, idle, current


def resolved_target(policy, total, idle, current):
    """The core count in effect after one poll (``None`` decision = no change)."""
    if current is None:
        current = policy.max_secondary(total)
    decision = policy.poll_decision(total, idle, current)
    return current if decision is None else decision.core_count


class TestBlindIsolationProperties:
    @given(blind_cases())
    @settings(max_examples=300, deadline=None)
    def test_allocation_never_exceeds_total_minus_buffer(self, case):
        spec, total, idle, current = case
        policy = BlindIsolationPolicy(spec)
        ceiling = max(spec.min_secondary_cores, total - spec.buffer_cores)

        initial = policy.initial_decision(total)
        assert initial.core_count is not None
        assert 0 <= initial.core_count <= ceiling

        decision = policy.poll_decision(total, idle, current)
        if decision is not None:
            assert decision.core_count is not None
            assert 0 <= decision.core_count <= ceiling

    @given(blind_cases())
    @settings(max_examples=300, deadline=None)
    def test_buffer_is_inviolable_when_floor_fits(self, case):
        spec, total, idle, current = case
        if spec.min_secondary_cores > total - spec.buffer_cores:
            return  # floor overrides the buffer by construction
        policy = BlindIsolationPolicy(spec)
        decision = policy.poll_decision(total, idle, current)
        if decision is not None:
            assert decision.core_count <= total - spec.buffer_cores

    @given(blind_cases(), st.data())
    @settings(max_examples=300, deadline=None)
    def test_monotone_in_idle_cores(self, case, data):
        """More idle cores never shrink the secondary, fewer never grow it.

        Stated over the states the controller can actually reach: ``current``
        inside ``[min_secondary_cores, max_secondary]`` (the initial decision
        starts there and every decision stays there, per the band properties
        above) or ``None``.
        """
        spec, total, idle, current = case
        policy = BlindIsolationPolicy(spec)
        if current is not None and not (
            spec.min_secondary_cores <= current <= policy.max_secondary(total)
        ):
            current = policy.max_secondary(total)
        other_idle = data.draw(
            st.integers(min_value=0, max_value=total), label="other_idle"
        )
        low, high = sorted((idle, other_idle))
        assert resolved_target(policy, total, low, current) <= resolved_target(
            policy, total, high, current
        )

    @given(blind_cases())
    @settings(max_examples=200, deadline=None)
    def test_no_change_when_idle_equals_buffer(self, case):
        spec, total, _, current = case
        policy = BlindIsolationPolicy(spec)
        assert policy.poll_decision(total, spec.buffer_cores, current) is None

    @given(blind_cases())
    @settings(max_examples=200, deadline=None)
    def test_step_bound_respected_inside_feasible_band(self, case):
        spec, total, idle, current = case
        policy = BlindIsolationPolicy(spec)
        ceiling = policy.max_secondary(total)
        if spec.max_step == 0 or current is None:
            return
        if not spec.min_secondary_cores <= current <= ceiling:
            return  # covered by test_out_of_band_current_moves_back_toward_band
        decision = policy.poll_decision(total, idle, current)
        if decision is not None:
            assert abs(decision.core_count - current) <= spec.max_step

    @given(blind_cases())
    @settings(max_examples=200, deadline=None)
    def test_out_of_band_current_moves_back_toward_band(self, case):
        """Safety beats smoothing: an infeasible allocation is pulled back to
        the band even when that exceeds ``max_step``."""
        spec, total, idle, current = case
        policy = BlindIsolationPolicy(spec)
        ceiling = policy.max_secondary(total)
        if current is None or spec.min_secondary_cores <= current <= ceiling:
            return
        target = resolved_target(policy, total, idle, current)
        if target != current:  # any move must land inside the band
            assert spec.min_secondary_cores <= target <= ceiling


class TestStaticPolicies:
    @given(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=0, max_value=256),
        st.integers(min_value=0, max_value=128),
    )
    @settings(max_examples=200, deadline=None)
    def test_static_cores_clamped_and_inert(self, total, cores, idle):
        policy = StaticCoresPolicy(StaticCoreSpec(secondary_cores=cores))
        initial = policy.initial_decision(total)
        assert 0 <= initial.core_count <= total
        assert policy.poll_decision(total, idle, initial.core_count) is None

    @given(
        st.integers(min_value=1, max_value=128),
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=128),
    )
    @settings(max_examples=200, deadline=None)
    def test_cpu_cycles_rate_in_unit_interval_and_inert(self, total, fraction, idle):
        policy = CpuCyclesPolicy(CpuCycleSpec(cpu_fraction=fraction))
        initial = policy.initial_decision(total)
        assert initial.cpu_rate is not None
        assert 0.0 < initial.cpu_rate <= 1.0
        assert policy.poll_decision(total, idle, None) is None

    @given(st.integers(min_value=1, max_value=128), st.integers(min_value=0, max_value=128))
    @settings(max_examples=100, deadline=None)
    def test_no_isolation_always_unrestricted(self, total, idle):
        policy = NoIsolationPolicy()
        assert policy.initial_decision(total).unrestricted
        assert policy.poll_decision(total, idle, None) is None
