"""Property-based tests (hypothesis) for the challenger controllers.

The dynamic controllers added next to blind isolation (PID, MPC,
utilisation-target, oracle) must obey the same safety envelope:

* every core-count decision stays inside ``[min_secondary_cores,
  max_secondary(total)]`` — a controller may never allocate the secondary
  more than the machine minus its reserve/headroom, nor go below the floor;
* controllers are deterministic — two fresh instances fed the identical
  observation stream emit the identical decision sequence;
* the utilisation controller never churns inside its deadband.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import (
    MpcControlSpec,
    OracleControlSpec,
    PidControlSpec,
    UtilizationTargetSpec,
)
from repro.core.policies import (
    ControllerObservation,
    ModelPredictivePolicy,
    OraclePolicy,
    PidPolicy,
    UtilizationTargetPolicy,
)


@st.composite
def observations(draw, with_latency=False, with_forecast=False):
    """A single internally-consistent controller observation."""
    total = draw(st.integers(min_value=2, max_value=128))
    idle = draw(st.integers(min_value=0, max_value=total))
    current = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=total)))
    p99 = None
    if with_latency:
        p99 = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
            )
        )
    peak = None
    if with_forecast:
        peak = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=0.0, max_value=100_000.0, allow_nan=False),
            )
        )
    return ControllerObservation(
        now=draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
        total_cores=total,
        idle_cores=idle,
        current_core_count=current,
        poll_interval=draw(st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)),
        windowed_p99=p99,
        forecast_peak_qps=peak,
    )


@st.composite
def pid_specs(draw):
    return PidControlSpec(
        kp=draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False)),
        ki=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
        kd=draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
        max_step=draw(st.integers(min_value=0, max_value=16)),
        min_secondary_cores=draw(st.integers(min_value=0, max_value=8)),
        reserve_cores=draw(st.integers(min_value=0, max_value=8)),
    )


@st.composite
def capacity_specs(draw, cls):
    kwargs = dict(
        qps_per_core=draw(st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)),
        headroom_cores=draw(st.integers(min_value=0, max_value=8)),
        min_secondary_cores=draw(st.integers(min_value=0, max_value=8)),
    )
    return cls(**kwargs)


@st.composite
def utilization_specs(draw):
    target = draw(st.floats(min_value=0.2, max_value=0.8))
    deadband = draw(st.floats(min_value=0.0, max_value=min(target, 1.0 - target) - 0.01))
    return UtilizationTargetSpec(
        target_utilization=target,
        deadband=max(0.0, deadband),
        step_cores=draw(st.integers(min_value=1, max_value=8)),
        min_secondary_cores=draw(st.integers(min_value=0, max_value=8)),
        reserve_cores=draw(st.integers(min_value=0, max_value=8)),
    )


def assert_within_envelope(policy, decision, total):
    """Core-count decisions stay inside [floor, max_secondary]."""
    if decision is None:
        return
    assert decision.core_count is not None
    floor = policy._spec.min_secondary_cores
    assert floor <= decision.core_count <= policy.max_secondary(total)


class TestDecisionBounds:
    @given(spec=pid_specs(), obs=observations(with_latency=True))
    @settings(max_examples=300, deadline=None)
    def test_pid_decisions_bounded(self, spec, obs):
        policy = PidPolicy(spec)
        assert policy.initial_decision(obs.total_cores).core_count == policy.max_secondary(
            obs.total_cores
        )
        assert_within_envelope(policy, policy.decide(obs), obs.total_cores)

    @given(spec=capacity_specs(MpcControlSpec), obs=observations(with_forecast=True))
    @settings(max_examples=300, deadline=None)
    def test_mpc_decisions_bounded(self, spec, obs):
        policy = ModelPredictivePolicy(spec)
        assert_within_envelope(policy, policy.decide(obs), obs.total_cores)

    @given(spec=capacity_specs(OracleControlSpec), obs=observations(with_forecast=True))
    @settings(max_examples=300, deadline=None)
    def test_oracle_decisions_bounded(self, spec, obs):
        policy = OraclePolicy(spec)
        assert_within_envelope(policy, policy.decide(obs), obs.total_cores)

    @given(spec=utilization_specs(), obs=observations())
    @settings(max_examples=300, deadline=None)
    def test_utilization_decisions_bounded(self, spec, obs):
        policy = UtilizationTargetPolicy(spec)
        assert_within_envelope(policy, policy.decide(obs), obs.total_cores)

    @given(obs=observations(with_latency=True, with_forecast=True))
    @settings(max_examples=200, deadline=None)
    def test_missing_telemetry_holds_the_allocation(self, obs):
        """No latency sample / no forecast -> no change, never a crash."""
        blind_obs = ControllerObservation(
            now=obs.now,
            total_cores=obs.total_cores,
            idle_cores=obs.idle_cores,
            current_core_count=obs.current_core_count,
            poll_interval=obs.poll_interval,
        )
        assert PidPolicy(PidControlSpec()).decide(blind_obs) is None
        assert ModelPredictivePolicy(MpcControlSpec()).decide(blind_obs) is None
        assert OraclePolicy(OracleControlSpec()).decide(blind_obs) is None


class TestDeterminism:
    @given(
        spec=pid_specs(),
        stream=st.lists(observations(with_latency=True), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_pid_deterministic_over_observation_streams(self, spec, stream):
        """PID is stateful, but the state is a pure function of the stream."""
        a, b = PidPolicy(spec), PidPolicy(spec)
        assert [a.decide(obs) for obs in stream] == [b.decide(obs) for obs in stream]

    @given(
        spec=utilization_specs(),
        stream=st.lists(observations(), min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_utilization_deterministic_over_observation_streams(self, spec, stream):
        a, b = UtilizationTargetPolicy(spec), UtilizationTargetPolicy(spec)
        assert [a.decide(obs) for obs in stream] == [b.decide(obs) for obs in stream]

    @given(
        spec=capacity_specs(MpcControlSpec),
        obs=observations(with_forecast=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_controllers_are_stateless(self, spec, obs):
        """The same observation always yields the same MPC decision."""
        policy = ModelPredictivePolicy(spec)
        assert policy.decide(obs) == policy.decide(obs)


class TestUtilizationDeadband:
    @given(spec=utilization_specs(), obs=observations())
    @settings(max_examples=300, deadline=None)
    def test_no_churn_inside_the_deadband(self, spec, obs):
        policy = UtilizationTargetPolicy(spec)
        low = spec.target_utilization - spec.deadband
        high = spec.target_utilization + spec.deadband
        if low <= obs.utilization <= high:
            assert policy.decide(obs) is None
