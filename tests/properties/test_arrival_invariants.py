"""Property-based tests (hypothesis) for the arrival models and trace files."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import BurstySpec, DiurnalSpec, FlashCrowdSpec, TraceSpec
from repro.config.traces import dump_trace_text, parse_trace_text
from repro.workloads.arrival_models import (
    BurstyArrival,
    DiurnalArrival,
    FlashCrowdArrival,
    TraceArrival,
    synthesize_trace,
)

#: Simulated timestamps to probe rate functions at (non-negative, finite).
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)

rates = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)


@st.composite
def diurnal_specs(draw):
    trough = draw(st.floats(min_value=1.0, max_value=1e4))
    peak = trough + draw(st.floats(min_value=1.0, max_value=1e4))
    return DiurnalSpec(
        peak_qps=peak,
        trough_qps=trough,
        period=draw(st.floats(min_value=0.1, max_value=1e5)),
        phase_offset=draw(st.floats(min_value=0.0, max_value=0.999)),
    )


@st.composite
def flash_crowd_specs(draw):
    base = draw(st.floats(min_value=1.0, max_value=1e4))
    spike = base + draw(st.floats(min_value=1.0, max_value=1e4))
    phase = st.floats(min_value=0.0, max_value=100.0)
    return FlashCrowdSpec(
        base_qps=base,
        spike_qps=spike,
        start=draw(phase),
        ramp=draw(phase),
        # A non-zero hold keeps ramp + hold + decay > 0 (validated).
        hold=draw(st.floats(min_value=1e-3, max_value=100.0)),
        decay=draw(phase),
    )


@st.composite
def trace_specs(draw, min_buckets=1):
    # Buckets are either idle (0) or a realistic rate: subnormal-tiny rates
    # would underflow to 0.0 under the scaling property's multiplication.
    bucket_rate = st.one_of(
        st.just(0.0), st.floats(min_value=1e-3, max_value=1e5, allow_nan=False)
    )
    qps = draw(st.lists(bucket_rate, min_size=min_buckets, max_size=40))
    if not any(value > 0.0 for value in qps):
        qps[0] = 1.0
    return TraceSpec(
        bucket_seconds=draw(st.floats(min_value=1e-3, max_value=1e3)),
        qps=tuple(qps),
    )


class TestRateBounds:
    @given(spec=diurnal_specs(), t=times)
    @settings(max_examples=100, deadline=None)
    def test_diurnal_rate_stays_within_its_band(self, spec, t):
        rate = DiurnalArrival(spec).rate_at(t)
        low = min(spec.trough_qps, spec.floor_qps)
        assert low * (1.0 - 1e-9) <= rate <= spec.peak_qps * (1.0 + 1e-9)

    @given(spec=flash_crowd_specs(), t=times)
    @settings(max_examples=100, deadline=None)
    def test_flash_crowd_rate_stays_within_its_band(self, spec, t):
        rate = FlashCrowdArrival(spec).rate_at(t)
        assert spec.base_qps * (1.0 - 1e-9) <= rate <= spec.spike_qps * (1.0 + 1e-9)

    @given(spec=trace_specs(), t=times)
    @settings(max_examples=100, deadline=None)
    def test_trace_rate_is_always_one_of_the_buckets(self, spec, t):
        assert TraceArrival(spec).rate_at(t) in spec.qps

    @given(
        base=rates,
        lift=rates,
        seed=st.integers(min_value=0, max_value=2**31),
        t=times,
    )
    @settings(max_examples=100, deadline=None)
    def test_bursty_rate_is_one_of_the_two_levels(self, base, lift, seed, t):
        spec = BurstySpec(base_qps=base, burst_qps=base + lift)
        model = BurstyArrival(spec, horizon=60.0, rng=np.random.default_rng(seed))
        assert model.rate_at(t) in (spec.base_qps, spec.burst_qps)


class TestArrivalStructure:
    @given(spec=diurnal_specs(), seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_gaps_are_non_negative_and_timestamps_monotone(self, spec, seed):
        """An arrival sequence derived from any rate model is a valid one."""
        model = DiurnalArrival(spec)
        rng = np.random.default_rng(seed)
        now, arrivals = 0.0, []
        for _ in range(50):
            gap = float(rng.standard_exponential()) / max(1.0, model.rate_at(now))
            assert gap >= 0.0
            now += gap
            arrivals.append(now)
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))

    @given(
        spec=trace_specs(),
        factor=st.floats(min_value=0.125, max_value=8.0),
        t=times,
    )
    @settings(max_examples=100, deadline=None)
    def test_trace_rate_scaling_is_exact(self, spec, factor, t):
        """Scaling every bucket scales the instantaneous rate identically."""
        scaled = TraceSpec(
            bucket_seconds=spec.bucket_seconds,
            qps=tuple(value * factor for value in spec.qps),
        )
        assert TraceArrival(scaled).rate_at(t) == TraceArrival(spec).rate_at(t) * factor


class TestTraceFileRoundTrip:
    @given(spec=trace_specs())
    @settings(max_examples=100, deadline=None)
    def test_jsonl_text_round_trip_is_bit_identical(self, spec):
        assert parse_trace_text(dump_trace_text(spec, "jsonl"), "jsonl") == spec

    @given(spec=trace_specs(min_buckets=2))
    @settings(max_examples=100, deadline=None)
    def test_csv_text_round_trip_is_bit_identical(self, spec):
        # CSV has no header, so single-bucket traces are JSONL-only.
        loaded = parse_trace_text(dump_trace_text(spec, "csv"), "csv")
        assert loaded.bucket_seconds == spec.bucket_seconds
        assert loaded.qps == spec.qps

    @given(
        spec=diurnal_specs(),
        buckets=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_synthesize_write_load_replay_round_trip(self, spec, buckets):
        """The full pipeline: model -> trace -> file -> trace -> same rates."""
        model = DiurnalArrival(spec)
        duration = min(spec.period, 1e4)
        trace = synthesize_trace(model, duration=duration, bucket_seconds=duration / buckets)
        loaded = parse_trace_text(dump_trace_text(trace, "jsonl"), "jsonl")
        assert loaded == trace
        replay, original = TraceArrival(loaded), TraceArrival(trace)
        for index in range(len(trace.qps)):
            midpoint = (index + 0.5) * trace.bucket_seconds
            assert replay.rate_at(midpoint) == original.rate_at(midpoint)
