"""Property-based tests for the exactly-mergeable latency digest.

The vectorised fleet shard bins sample blocks itself (one batched
``searchsorted``/``bincount`` pass) and feeds the result through
``LatencyDigest.add_counts``; these properties pin that fast path to the
reference ``add`` path for arbitrary sample sets and chunkings.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.latency import LatencyDigest

latency_lists = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


def binned(values: np.ndarray, digest: LatencyDigest) -> np.ndarray:
    indices = np.searchsorted(digest.edges, values, side="right")
    return np.bincount(indices, minlength=digest.counts_size)


class TestAddCountsProperties:
    @given(latency_lists)
    @settings(max_examples=100, deadline=None)
    def test_add_counts_is_count_identical_to_add(self, latencies):
        values = np.asarray(latencies, dtype=np.float64)
        via_add = LatencyDigest()
        via_add.add(values)
        via_counts = LatencyDigest()
        via_counts.add_counts(
            binned(values, via_counts), float(values.sum()), float(values.max())
        )
        assert np.array_equal(via_counts._counts, via_add._counts)
        assert via_counts.count == via_add.count
        assert via_counts.maximum == via_add.maximum
        for q in (50.0, 95.0, 99.0, 100.0):
            assert via_counts.percentile(q) == via_add.percentile(q)

    @given(latency_lists, st.integers(min_value=1, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_chunked_add_counts_merges_exactly(self, latencies, chunks):
        """Feeding counts per chunk (how every per-bucket shard digest is
        built) equals one add of the union — the digest's merge contract."""
        values = np.asarray(latencies, dtype=np.float64)
        whole = LatencyDigest()
        whole.add(values)
        chunked = LatencyDigest()
        for part in np.array_split(values, chunks):
            if part.size == 0:
                continue
            chunked.add_counts(
                binned(part, chunked), float(part.sum()), float(part.max())
            )
        assert np.array_equal(chunked._counts, whole._counts)
        assert chunked.maximum == whole.maximum
        assert chunked.stats().p99 == whole.stats().p99
